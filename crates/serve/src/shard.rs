//! Epoch-based reclamation and sharded copy-on-write maps: the lock-free
//! substrate under [`crate::SnapshotStore`].
//!
//! The serving read path must scale linearly with reader threads, which
//! rules out *any* shared lock — and also rules out a naive `Arc` clone
//! per query, because bumping one shared refcount is a contended
//! read-modify-write on the same cache line from every reader. What this
//! module provides instead is the classic RCU shape:
//!
//! * **Readers pin an epoch** ([`EpochGc::pin`]): one store to a
//!   thread-private slot, after which raw pointers published through
//!   [`Swap`] or [`ShardedMap`] may be dereferenced for the lifetime of the
//!   pin guard. No lock, no shared-line RMW, no refcount traffic.
//! * **Publishers swap and retire**: installing a new value atomically
//!   swaps a pointer; the old value is *retired* — tagged with the next GC
//!   epoch and queued — rather than dropped. A retired value is freed only
//!   once every reader slot is either idle or pinned at an epoch at least
//!   as new as the retirement tag, at which point no pin can still reach
//!   the old pointer. Publishers never block readers; readers never wait
//!   on publishers.
//!
//! ## Why a reader can never observe a torn or freed value
//!
//! The pin protocol is three `SeqCst` operations: load the GC epoch, store
//! it into the thread's slot, then load the shared pointer. Retirement is
//! the mirror image: swap the pointer (`SeqCst`), `fetch_add` the GC epoch
//! (`SeqCst`), tag the retired value with the *new* epoch, and free it only
//! after scanning every slot (`SeqCst` loads) and finding each one idle or
//! pinned at ≥ the tag. In the single total order `SeqCst` gives us, a
//! reader whose slot scan appeared idle must have stored its pin *after*
//! the scan — which is after the epoch bump, which is after the pointer
//! swap — so its subsequent pointer load can only see the *new* pointer.
//! Conversely a reader pinned at an epoch `< tag` pinned before the bump,
//! and the scan observes its pin and defers the free. Either way no
//! dereference of a freed pointer is possible. Values themselves are
//! immutable after publication (they are `Arc`ed snapshots or frozen map
//! nodes), so there is nothing to tear: the pointer swap is the only
//! mutation, and it is atomic.
//!
//! The pure Acquire/Release pairing that remains load-bearing: the
//! publisher's pointer *swap* is a Release of everything written while
//! building the value, and the reader's pointer *load* is an Acquire — a
//! reader that observes the new pointer observes the fully built value
//! behind it. `SeqCst` is only needed where a store must not be reordered
//! after a later load (the pin-slot store vs. the pointer load, and the
//! swap vs. the slot scan); everything else is the ordinary
//! publish/subscribe pairing.
//!
//! ## Cost model
//!
//! Pin/unpin is two uncontended atomic stores on a cache line owned by the
//! pinning thread (slots are padded to 128 bytes). Retirement scans are
//! O(threads) and run only at publish time — deploys are orders of
//! magnitude rarer than queries, exactly the asymmetry the serving
//! workload has. Memory overhead is bounded by "values retired since the
//! oldest in-flight pin", i.e. a handful of superseded snapshots for at
//! most microseconds at a time.
//!
//! This is the one module in the crate that needs `unsafe` (dereferencing
//! the published pointers and reconstituting `Arc`s from raw): the crate
//! is `deny(unsafe_code)` with a scoped allow here, and every unsafe block
//! carries its invariant.

#![allow(unsafe_code)]

use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of shards region keys hash across. A power of two so the shard
/// pick is a mask, sized so that even a many-core reader fleet rarely has
/// two regions contend for the same shard's (publish-time-only) lock.
pub(crate) const SHARDS: usize = 16;

/// One reader's pin slot, padded to two cache lines so pin/unpin traffic
/// from different threads never false-shares.
#[repr(align(128))]
struct ReaderSlot {
    /// 0 = idle; otherwise the GC epoch this thread pinned.
    pinned: AtomicU64,
    /// Reentrancy depth. Only the owning thread writes it; `Relaxed` is
    /// enough because it is never read by another thread for ordering.
    depth: AtomicUsize,
}

impl ReaderSlot {
    fn new() -> ReaderSlot {
        ReaderSlot {
            pinned: AtomicU64::new(0),
            depth: AtomicUsize::new(0),
        }
    }
}

/// What a publisher hands the GC for deferred destruction.
type Retired = Box<dyn Send + Sync>;

/// Deferred-reclamation state shared by every lock-free structure of one
/// store: a global epoch, the registered reader slots, and the retire
/// queue.
pub(crate) struct EpochGc {
    /// Monotonic GC epoch; starts at 1 so a pinned slot is never 0.
    epoch: AtomicU64,
    /// Every reader slot ever registered (slots are per `(thread, store)`
    /// and live as long as the store; an exited thread's slot stays idle).
    readers: Mutex<Vec<Arc<ReaderSlot>>>,
    /// Retired values, tagged with the epoch after which they are
    /// unreachable. Publisher-side only.
    retired: Mutex<Vec<(u64, Retired)>>,
    /// Unique id used by the thread-local slot cache.
    id: u64,
    /// Values handed to the GC so far (monotonic).
    retired_total: AtomicU64,
    /// Values actually freed so far (monotonic, wall-timing dependent).
    freed_total: AtomicU64,
}

/// Global source of `EpochGc` ids (never recycled, so a thread-local cache
/// entry can never alias a new GC).
static GC_IDS: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's reader slots, one per `EpochGc` it has pinned. Small
    /// linear map: a process talks to a handful of stores at most.
    static SLOTS: RefCell<Vec<(u64, Arc<ReaderSlot>)>> = const { RefCell::new(Vec::new()) };
}

impl EpochGc {
    pub(crate) fn new() -> Arc<EpochGc> {
        Arc::new(EpochGc {
            epoch: AtomicU64::new(1),
            readers: Mutex::new(Vec::new()),
            retired: Mutex::new(Vec::new()),
            id: GC_IDS.fetch_add(1, Ordering::Relaxed),
            retired_total: AtomicU64::new(0),
            freed_total: AtomicU64::new(0),
        })
    }

    /// This thread's slot for this GC, registering one on first use (the
    /// only time a reader ever takes a lock, and only the registration
    /// lock — never one shared with the publish path's retire queue).
    fn slot(&self) -> Arc<ReaderSlot> {
        SLOTS.with(|slots| {
            let mut slots = slots.borrow_mut();
            if let Some((_, slot)) = slots.iter().find(|(id, _)| *id == self.id) {
                return Arc::clone(slot);
            }
            let slot = Arc::new(ReaderSlot::new());
            self.readers.lock().push(Arc::clone(&slot));
            slots.push((self.id, Arc::clone(&slot)));
            slot
        })
    }

    /// Pins the current epoch, licensing raw-pointer reads until the guard
    /// drops. Reentrant: a nested pin keeps the outer (older) epoch, which
    /// is conservative and therefore safe.
    pub(crate) fn pin(self: &Arc<Self>) -> PinGuard {
        let slot = self.slot();
        if slot.depth.load(Ordering::Relaxed) == 0 {
            // SeqCst store: must not be reordered after the pointer loads
            // that follow under this pin (see module docs).
            let epoch = self.epoch.load(Ordering::SeqCst);
            slot.pinned.store(epoch, Ordering::SeqCst);
        }
        slot.depth.fetch_add(1, Ordering::Relaxed);
        PinGuard { slot }
    }

    /// Retires a value that was just swapped out of a published pointer.
    /// The caller must guarantee no *new* reader can reach it (its pointer
    /// has been replaced); in-flight pins are what the epoch tag defends.
    pub(crate) fn retire(&self, value: Retired) {
        let tag = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        self.retired_total.fetch_add(1, Ordering::Relaxed);
        self.retired.lock().push((tag, value));
        self.collect();
    }

    /// Frees every retired value whose tag no in-flight pin predates.
    /// Called from publish paths; cheap when nothing is reclaimable.
    pub(crate) fn collect(&self) {
        let min_pinned = {
            let readers = self.readers.lock();
            readers
                .iter()
                .map(|slot| slot.pinned.load(Ordering::SeqCst))
                .filter(|&pin| pin != 0)
                .min()
                .unwrap_or(u64::MAX)
        };
        let mut retired = self.retired.lock();
        let before = retired.len();
        // An entry tagged `t` is unreachable once every active pin is at
        // an epoch >= t (a pin at epoch e can hold values retired at tags
        // > e only if it pinned before the tag's bump — impossible).
        retired.retain(|(tag, _)| *tag > min_pinned);
        let freed = (before - retired.len()) as u64;
        if freed > 0 {
            self.freed_total.fetch_add(freed, Ordering::Relaxed);
        }
    }

    /// Values handed to the GC so far (deterministic per publish/insert
    /// schedule).
    pub(crate) fn retired_total(&self) -> u64 {
        self.retired_total.load(Ordering::Relaxed)
    }

    /// Values actually freed so far (depends on reader timing: volatile).
    pub(crate) fn freed_total(&self) -> u64 {
        self.freed_total.load(Ordering::Relaxed)
    }

    /// Reader slots registered so far (one per thread that ever pinned).
    pub(crate) fn reader_slots(&self) -> usize {
        self.readers.lock().len()
    }
}

impl Drop for EpochGc {
    fn drop(&mut self) {
        // The store is gone: no pin can be created anymore, and a live pin
        // would imply a live `Arc<EpochGc>` — so the queue is safe to
        // drain. (`Retired` boxes drop here; `Arc` contents this GC
        // protected drop their refcount, freeing unless a caller still
        // holds a clone.)
        self.retired.get_mut().clear();
    }
}

/// RAII pin: readers hold it across every raw-pointer dereference.
pub(crate) struct PinGuard {
    slot: Arc<ReaderSlot>,
}

impl Drop for PinGuard {
    fn drop(&mut self) {
        if self.slot.depth.fetch_sub(1, Ordering::Relaxed) == 1 {
            // Release: everything read under the pin happens-before the
            // unpin a collecting publisher observes.
            self.slot.pinned.store(0, Ordering::Release);
        }
    }
}

/// An epoch-protected `Arc<T>` cell: lock-free reads, swap-and-retire
/// writes. The serving store's per-region snapshot pointer.
pub(crate) struct Swap<T: Send + Sync + 'static> {
    /// Raw pointer from `Arc::into_raw`; null = nothing published.
    ptr: AtomicU64,
    _marker: std::marker::PhantomData<Arc<T>>,
}

impl<T: Send + Sync + 'static> Swap<T> {
    pub(crate) fn empty() -> Swap<T> {
        Swap {
            ptr: AtomicU64::new(0),
            _marker: std::marker::PhantomData,
        }
    }

    /// Publishes `value`, retiring the previous one through `gc`.
    pub(crate) fn store(&self, value: Arc<T>, gc: &EpochGc) {
        let raw = Arc::into_raw(value) as u64;
        // Release side of the publish pairing: the swap makes the fully
        // built value visible to any reader that Acquire-loads the new
        // pointer. SeqCst additionally orders it before the epoch bump and
        // slot scan inside `retire` (see module docs).
        let old = self.ptr.swap(raw, Ordering::SeqCst);
        if old != 0 {
            // SAFETY: `old` came from `Arc::into_raw` in a previous
            // `store` and has not been reconstituted since (the swap is
            // the unique handoff). Wrapping it back into an `Arc` moves
            // ownership of that strong count into the retire queue.
            let arc = unsafe { Arc::from_raw(old as *const T) };
            gc.retire(Box::new(arc));
        }
    }

    /// Borrows the current value under `pin`. The reference lives as long
    /// as the pin, not the cell — the GC defers any free past the unpin.
    pub(crate) fn read<'p>(&self, _pin: &'p PinGuard) -> Option<&'p T> {
        let raw = self.ptr.load(Ordering::SeqCst);
        if raw == 0 {
            return None;
        }
        // SAFETY: `raw` was published by `store` and is either current or
        // retired-but-not-freed: the caller's pin predates any retirement
        // tag that could free it (module-level protocol), so the pointee
        // is alive for at least the pin's lifetime.
        Some(unsafe { &*(raw as *const T) })
    }

    /// Clones the current `Arc` under a pin, for callers that need to
    /// outlive it. One refcount RMW — keep off per-query hot paths.
    pub(crate) fn load(&self, pin: &PinGuard) -> Option<Arc<T>> {
        let raw = self.read(pin)? as *const T;
        // SAFETY: the pin keeps the strong count >= 1 throughout (no free
        // can retire past an in-flight pin), so incrementing then
        // reconstituting yields a valid owned clone.
        unsafe {
            Arc::increment_strong_count(raw);
            Some(Arc::from_raw(raw))
        }
    }
}

impl<T: Send + Sync + 'static> Drop for Swap<T> {
    fn drop(&mut self) {
        let raw = *self.ptr.get_mut();
        if raw != 0 {
            // SAFETY: exclusive access (drop); the pointer is the uniquely
            // owned product of `Arc::into_raw`.
            drop(unsafe { Arc::from_raw(raw as *const T) });
        }
    }
}

/// FNV-1a over the region name — the shard pick and the map probe share it.
pub(crate) fn fnv1a(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A frozen sorted-by-key map node: readers binary-search it in place.
type MapNode<V> = Vec<(String, V)>;

/// A string-keyed map sharded by key hash, with lock-free reads and
/// copy-on-write inserts: the region → slot index of the serving store.
///
/// Reads bin the key into a shard, load that shard's frozen node under a
/// pin, and binary-search it — no lock, no refcount. Inserts (first deploy
/// or first query of a region — rare) take the shard's write mutex, build
/// a new node, swap it in, and retire the old node through the shared GC.
pub(crate) struct ShardedMap<V: Clone + Send + Sync + 'static> {
    shards: Box<[MapShard<V>]>,
}

struct MapShard<V: Clone + Send + Sync + 'static> {
    node: Swap<MapNode<V>>,
    write: Mutex<()>,
}

impl<V: Clone + Send + Sync + 'static> ShardedMap<V> {
    pub(crate) fn new() -> ShardedMap<V> {
        ShardedMap {
            shards: (0..SHARDS)
                .map(|_| MapShard {
                    node: Swap::empty(),
                    write: Mutex::new(()),
                })
                .collect(),
        }
    }

    fn shard(&self, key: &str) -> &MapShard<V> {
        &self.shards[(fnv1a(key) as usize) & (SHARDS - 1)]
    }

    /// The shard index a key bins into (for per-shard metrics).
    pub(crate) fn shard_index(key: &str) -> usize {
        (fnv1a(key) as usize) & (SHARDS - 1)
    }

    /// Lock-free lookup under a pin.
    pub(crate) fn get<'p>(&self, key: &str, pin: &'p PinGuard) -> Option<&'p V> {
        let node = self.shard(key).node.read(pin)?;
        node.binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| &node[i].1)
    }

    /// Returns the value for `key`, inserting `make()`'s value if absent.
    /// Takes the shard write lock; meant for publish/first-query paths.
    pub(crate) fn get_or_insert(
        &self,
        key: &str,
        gc: &EpochGc,
        pin: &PinGuard,
        make: impl FnOnce() -> V,
    ) -> V {
        let shard = self.shard(key);
        let _write = shard.write.lock();
        // Re-check under the lock: a racing inserter may have won.
        if let Some(node) = shard.node.read(pin) {
            if let Ok(i) = node.binary_search_by(|(k, _)| k.as_str().cmp(key)) {
                return node[i].1.clone();
            }
        }
        let value = make();
        let mut next: MapNode<V> = shard.node.read(pin).map(|n| n.to_vec()).unwrap_or_default();
        let at = next
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .unwrap_err();
        next.insert(at, (key.to_string(), value.clone()));
        shard.node.store(Arc::new(next), gc);
        value
    }

    /// Every key across all shards, ascending. (Production callers track
    /// published regions separately; this is a test-side invariant check.)
    #[cfg(test)]
    pub(crate) fn keys(&self, pin: &PinGuard) -> Vec<String> {
        let mut keys: Vec<String> = self
            .shards
            .iter()
            .filter_map(|s| s.node.read(pin))
            .flat_map(|node| node.iter().map(|(k, _)| k.clone()))
            .collect();
        keys.sort();
        keys
    }

    /// Number of keys binned into each shard (for per-shard metrics).
    pub(crate) fn shard_sizes(&self, pin: &PinGuard) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.node.read(pin).map_or(0, |n| n.len()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn swap_reads_latest_and_retires_old() {
        let gc = EpochGc::new();
        let cell: Swap<u64> = Swap::empty();
        {
            let pin = gc.pin();
            assert!(cell.read(&pin).is_none());
        }
        cell.store(Arc::new(1), &gc);
        cell.store(Arc::new(2), &gc);
        let pin = gc.pin();
        assert_eq!(cell.read(&pin), Some(&2));
        assert_eq!(cell.load(&pin), Some(Arc::new(2)));
        assert_eq!(gc.retired_total(), 1, "first value retired");
    }

    #[test]
    fn gc_defers_frees_past_inflight_pins() {
        let gc = EpochGc::new();
        let cell: Swap<u64> = Swap::empty();
        cell.store(Arc::new(1), &gc);
        let pin = gc.pin();
        let held = cell.read(&pin).unwrap();
        cell.store(Arc::new(2), &gc);
        // The old value is retired but must not be freed while we pin.
        assert_eq!(*held, 1);
        assert_eq!(gc.freed_total(), 0, "pin blocks reclamation");
        drop(pin);
        cell.store(Arc::new(3), &gc);
        assert_eq!(gc.freed_total(), 2, "both old values reclaimed");
    }

    #[test]
    fn nested_pins_keep_the_outer_epoch() {
        let gc = EpochGc::new();
        let cell: Swap<u64> = Swap::empty();
        cell.store(Arc::new(1), &gc);
        let outer = gc.pin();
        let held = cell.read(&outer).unwrap();
        {
            let inner = gc.pin();
            cell.store(Arc::new(2), &gc);
            assert_eq!(cell.read(&inner), Some(&2));
            drop(inner);
            // Inner unpin must not unpin the outer guard.
            assert_eq!(*held, 1);
            assert_eq!(gc.freed_total(), 0);
        }
        drop(outer);
        gc.collect();
        assert_eq!(gc.freed_total(), 1);
    }

    #[test]
    fn sharded_map_inserts_and_reads_across_shards() {
        let gc = EpochGc::new();
        let map: ShardedMap<Arc<String>> = ShardedMap::new();
        let keys: Vec<String> = (0..100).map(|i| format!("region-{i:03}")).collect();
        {
            let pin = gc.pin();
            for k in &keys {
                assert!(map.get(k, &pin).is_none());
                map.get_or_insert(k, &gc, &pin, || Arc::new(k.to_uppercase()));
            }
            for k in &keys {
                assert_eq!(map.get(k, &pin).unwrap().as_str(), k.to_uppercase());
            }
            assert_eq!(map.keys(&pin), {
                let mut sorted = keys.clone();
                sorted.sort();
                sorted
            });
            let sizes = map.shard_sizes(&pin);
            assert_eq!(sizes.iter().sum::<usize>(), keys.len());
            assert!(
                sizes.iter().filter(|s| **s > 0).count() > 1,
                "keys spread across shards: {sizes:?}"
            );
        }
    }

    #[test]
    fn get_or_insert_returns_existing_value() {
        let gc = EpochGc::new();
        let map: ShardedMap<Arc<u64>> = ShardedMap::new();
        let pin = gc.pin();
        let first = map.get_or_insert("west", &gc, &pin, || Arc::new(1));
        let second = map.get_or_insert("west", &gc, &pin, || Arc::new(2));
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(*second, 1);
    }

    #[test]
    fn concurrent_readers_vs_swap_storm() {
        let gc = EpochGc::new();
        let cell: Arc<Swap<(u64, u64)>> = Arc::new(Swap::empty());
        cell.store(Arc::new((1, 1)), &gc);
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let gc_w = Arc::clone(&gc);
            let cell_w = Arc::clone(&cell);
            let stop_ref = &stop;
            scope.spawn(move || {
                for v in 2..=2_000u64 {
                    cell_w.store(Arc::new((v, v)), &gc_w);
                }
                stop_ref.store(true, Ordering::Release);
            });
            for _ in 0..4 {
                let gc_r = Arc::clone(&gc);
                let cell_r = Arc::clone(&cell);
                let stop_ref = &stop;
                scope.spawn(move || {
                    while !stop_ref.load(Ordering::Acquire) {
                        let pin = gc_r.pin();
                        let (a, b) = cell_r.read(&pin).copied().unwrap();
                        assert_eq!(a, b, "torn value observed");
                    }
                });
            }
        });
        gc.collect();
        let pin = gc.pin();
        assert_eq!(cell.read(&pin), Some(&(2_000, 2_000)));
        assert_eq!(gc.retired_total(), 1_999);
    }
}
