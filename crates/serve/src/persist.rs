//! Durable deploys and restart recovery for the serving layer.
//!
//! The in-memory [`SnapshotStore`](crate::SnapshotStore) loses everything
//! when the process dies. This module makes deployments crash-safe:
//!
//! 1. **Persisted snapshots** — at publish time every [`ModelSnapshot`] is
//!    serialized (the `SGSS` codec: checksummed, versioned, length-prefixed)
//!    and written to a [`BlobStore`] under a per-region sequence number.
//! 2. **Deploy journal** — after the snapshot blob lands, a [`DeployRecord`]
//!    is appended to the deploy journal (`SGJL` framing, one checksummed
//!    record per successful deploy). Only then is the snapshot published in
//!    memory, so the durable state never runs ahead of what a restart could
//!    recover and the in-memory state never runs ahead of the journal by
//!    more than the in-flight deploy.
//! 3. **Recovery** — [`DurableServeSink::recover`] replays the journal
//!    (truncating a torn tail to the longest valid prefix), walks each
//!    region's records newest-first, and republishes the first snapshot
//!    blob that passes both the journal's recorded checksum and the codec's
//!    own checksum. A torn or missing newest snapshot therefore falls back
//!    to the previous journaled epoch — never a torn read.
//!
//! Write ordering is the crux: snapshot blob → journal record → in-memory
//! publish. A crash between any two steps leaves at most one orphaned blob
//! (overwritten when the region re-deploys under the same sequence number)
//! and the journal never references a snapshot that was not fully written
//! first — modulo torn writes, which the checksums catch on replay.
//!
//! ## Why one segment blob per record
//!
//! [`BlobStore`] has no append, so an "append" must be a `put` somewhere. A
//! whole-journal rewrite on every append is the obvious encoding, but it is
//! not crash-safe: tearing the rewrite mid-blob destroys *committed*
//! records, not just the in-flight one — and other subsystems (the fleet
//! runner's completion markers) may already hold durable references to those
//! deploys. The crash-injection sweep caught exactly that: a torn journal
//! rewrite during week N's last deploy erased earlier week-N records whose
//! checkpoint markers were intact, so the restart skipped their regions and
//! served week N−1. The journal is therefore stored as numbered *segments*
//! ([`journal_segment_key`]), one per append, walked in order on recovery
//! until the first missing or torn segment. The blast radius of a torn
//! append is exactly the record being appended, never history — and each
//! append writes O(record) bytes, not O(journal).

use crate::service::ServeService;
use crate::snapshot::ModelSnapshot;
use bytes::Bytes;
use parking_lot::Mutex;
use seagull_core::pipeline::{DeployEvent, DeploySink, PredictionDoc};
use seagull_telemetry::blobstore::{BlobKey, BlobStore};
use seagull_telemetry::columnar::checksum64;
use seagull_telemetry::journal::{replay, Journal};
use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::sync::Arc;

/// Magic bytes opening every serialized snapshot blob.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"SGSS";

/// Current snapshot-codec format version.
pub const SNAPSHOT_VERSION: u16 = 1;

/// Blob kind under which serialized snapshots are stored (the key's week
/// slot carries the per-region deploy sequence number).
pub const SNAPSHOT_KIND: &str = "snapshot";

/// Blob kind of the deploy journal.
pub const JOURNAL_KIND: &str = "journal";

/// The blob key of one persisted snapshot: per-region, sequence-numbered.
pub fn snapshot_key(region: &str, seq: u64) -> BlobKey {
    BlobKey {
        kind: SNAPSHOT_KIND.into(),
        region: region.into(),
        week: seq as i64,
    }
}

/// The blob key of one deploy-journal segment. Segment `seg` holds the
/// `seg`-th appended record (see the module docs for why the journal is
/// segmented instead of rewritten whole).
pub fn journal_segment_key(seg: u64) -> BlobKey {
    BlobKey {
        kind: JOURNAL_KIND.into(),
        region: "deploys".into(),
        week: seg as i64,
    }
}

/// Why a persisted blob could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The blob is shorter than its fixed framing requires.
    Truncated,
    /// The blob does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The blob's format version is newer than this build understands.
    UnsupportedVersion(
        /// The version the blob claims.
        u16,
    ),
    /// The blob's checksum footer does not match its contents (torn or
    /// corrupted write).
    ChecksumMismatch,
    /// The checksum passed but the structure is inconsistent (an encoder
    /// bug or a deliberate forgery, not a torn write).
    Malformed(
        /// What was inconsistent.
        String,
    ),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Truncated => write!(f, "blob truncated below minimum framing"),
            PersistError::BadMagic => write!(f, "not a snapshot blob (bad magic)"),
            PersistError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot format version {v}")
            }
            PersistError::ChecksumMismatch => write!(f, "checksum mismatch (torn or corrupt)"),
            PersistError::Malformed(why) => write!(f, "malformed blob: {why}"),
        }
    }
}

impl std::error::Error for PersistError {}

// ---------------------------------------------------------------------------
// Little-endian cursor helpers
// ---------------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| PersistError::Malformed("field overruns blob".into()))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u16(&mut self) -> Result<u16, PersistError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, PersistError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, PersistError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| PersistError::Malformed("string not utf-8".into()))
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

// ---------------------------------------------------------------------------
// Snapshot codec (SGSS)
// ---------------------------------------------------------------------------

/// Serializes a snapshot's durable half: header (magic, format version,
/// registry version, week, region, model name), one block per server
/// (id, materialized day, backup duration, grid step, values), and a
/// [`checksum64`] footer over everything before it.
///
/// Attached fitted models are *not* serialized — after recovery, servers
/// answer from their materialized prediction only, exactly like a deploy
/// run with the warm cache off.
pub fn encode_snapshot(snapshot: &ModelSnapshot) -> Bytes {
    let mut out = Vec::with_capacity(64 + snapshot.len() * 64);
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes()); // reserved
    out.extend_from_slice(&snapshot.version().to_le_bytes());
    out.extend_from_slice(&snapshot.week_start_day().to_le_bytes());
    put_string(&mut out, snapshot.region());
    put_string(&mut out, snapshot.model_name());
    out.extend_from_slice(&(snapshot.len() as u32).to_le_bytes());
    for id in snapshot.server_ids() {
        let server = snapshot.server(id).expect("id came from the snapshot");
        let prediction = server.prediction();
        out.extend_from_slice(&id.to_le_bytes());
        out.extend_from_slice(&server.materialized_day().to_le_bytes());
        out.extend_from_slice(&server.duration_min().to_le_bytes());
        out.extend_from_slice(&prediction.step_min().to_le_bytes());
        out.extend_from_slice(&(prediction.len() as u32).to_le_bytes());
        for &v in prediction.values() {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    let checksum = checksum64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    Bytes::from(out)
}

/// Decodes a blob written by [`encode_snapshot`], verifying the checksum
/// footer *before* trusting any structure — a torn write fails here with
/// [`PersistError::ChecksumMismatch`], never a partially-built snapshot.
pub fn decode_snapshot(blob: &[u8]) -> Result<ModelSnapshot, PersistError> {
    if blob.len() < SNAPSHOT_MAGIC.len() + 4 + 8 {
        return Err(PersistError::Truncated);
    }
    let (body, footer) = blob.split_at(blob.len() - 8);
    let recorded = u64::from_le_bytes(footer.try_into().unwrap());
    if checksum64(body) != recorded {
        return Err(PersistError::ChecksumMismatch);
    }
    let mut r = Reader::new(body);
    if r.take(4)? != SNAPSHOT_MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = r.u16()?;
    if version != SNAPSHOT_VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }
    let _reserved = r.u16()?;
    let model_version = r.u64()?;
    let week_start_day = r.i64()?;
    let region = r.string()?;
    let model_name = r.string()?;
    let servers = r.u32()? as usize;
    let mut docs = Vec::with_capacity(servers);
    for _ in 0..servers {
        let server_id = r.u64()?;
        let day = r.i64()?;
        let duration_min = r.i64()?;
        let step_min = r.u32()?;
        let len = r.u32()? as usize;
        let mut values = Vec::with_capacity(len);
        for _ in 0..len {
            values.push(f64::from_le_bytes(r.take(8)?.try_into().unwrap()));
        }
        docs.push(PredictionDoc {
            region: region.clone(),
            server_id,
            day,
            step_min,
            values,
            duration_min,
        });
    }
    if !r.done() {
        return Err(PersistError::Malformed(
            "trailing bytes after servers".into(),
        ));
    }
    Ok(ModelSnapshot::from_predictions(
        &region,
        model_version,
        week_start_day,
        &model_name,
        &docs,
    ))
}

// ---------------------------------------------------------------------------
// Deploy journal records
// ---------------------------------------------------------------------------

/// One successful deployment, as journaled. The journal's `SGJL` framing
/// already checksums every record, so the payload needs no checksum of its
/// own — but it does carry the checksum of the snapshot blob it references,
/// so recovery can detect a snapshot that was overwritten or torn after the
/// journal record landed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeployRecord {
    /// Region the deployment belongs to.
    pub region: String,
    /// Per-region deploy sequence number (the snapshot blob's key slot).
    pub seq: u64,
    /// Model-registry version that started serving.
    pub version: u64,
    /// First day of the training week.
    pub week_start_day: i64,
    /// Name of the deployed forecaster.
    pub model_name: String,
    /// [`checksum64`] of the entire persisted snapshot blob.
    pub snapshot_checksum: u64,
    /// Servers carried by the snapshot.
    pub servers: u32,
}

impl DeployRecord {
    /// Serializes the record as a journal payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(48 + self.region.len() + self.model_name.len());
        put_string(&mut out, &self.region);
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&self.week_start_day.to_le_bytes());
        put_string(&mut out, &self.model_name);
        out.extend_from_slice(&self.snapshot_checksum.to_le_bytes());
        out.extend_from_slice(&self.servers.to_le_bytes());
        out
    }

    /// Deserializes a journal payload written by [`DeployRecord::encode`].
    pub fn decode(payload: &[u8]) -> Result<DeployRecord, PersistError> {
        let mut r = Reader::new(payload);
        let record = DeployRecord {
            region: r.string()?,
            seq: r.u64()?,
            version: r.u64()?,
            week_start_day: r.i64()?,
            model_name: r.string()?,
            snapshot_checksum: r.u64()?,
            servers: r.u32()?,
        };
        if !r.done() {
            return Err(PersistError::Malformed(
                "trailing bytes after record".into(),
            ));
        }
        Ok(record)
    }
}

// ---------------------------------------------------------------------------
// The durable sink
// ---------------------------------------------------------------------------

/// What a [`DurableServeSink::recover`] pass found and restored.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Journal records that replayed cleanly.
    pub journal_records: usize,
    /// Bytes discarded from the journal's torn tail (0 for a clean tail).
    pub truncated_bytes: usize,
    /// Regions whose snapshot was restored and republished.
    pub snapshots_restored: usize,
    /// Journaled epochs skipped because their snapshot blob was missing,
    /// torn, or did not match the journaled checksum (each skip falls back
    /// one epoch).
    pub snapshot_fallbacks: usize,
    /// Regions with journal records but no recoverable snapshot at all.
    pub regions_unrecovered: Vec<String>,
    /// Total bytes read during recovery (journal + every snapshot blob
    /// examined) — the numerator of a replay-throughput measurement.
    pub bytes_replayed: u64,
}

impl RecoveryReport {
    /// Whether the journal had a torn tail that was truncated.
    pub fn torn_tail(&self) -> bool {
        self.truncated_bytes > 0
    }
}

struct SinkState {
    /// Encoded journal segments, in append order. Each is a complete
    /// single-record `SGJL` blob (recovery of a legacy multi-record segment
    /// keeps it whole, so a segment may hold more).
    segments: Vec<Bytes>,
    /// Total records across all segments.
    records: usize,
    /// How many leading segments are known durable. Segments at or past
    /// this index failed their `put` (or were torn on disk at recovery) and
    /// are rewritten, oldest first, on the next deploy.
    durable_upto: usize,
    /// Next deploy sequence number per region (starts at 1).
    next_seq: BTreeMap<String, u64>,
}

/// A [`DeploySink`] that makes every deployment durable before it becomes
/// visible: snapshot blob first, journal record second, in-memory publish
/// last (see the module docs for why that order).
///
/// Register it with
/// [`AmlPipeline::with_deploy_sink`](seagull_core::pipeline::AmlPipeline::with_deploy_sink)
/// in place of the bare [`ServeService`]. On restart, build the replacement
/// with [`DurableServeSink::recover`], which republishes each region's
/// last-known-good snapshot from the blob store.
///
/// Durability failures never block serving: if the snapshot or journal put
/// returns an error, the deploy still publishes in memory and a counter
/// records the miss (availability over durability). The in-memory journal
/// keeps the record, so the next successful put self-heals the durable
/// copy.
pub struct DurableServeSink {
    serve: ServeService,
    store: Arc<dyn BlobStore>,
    state: Mutex<SinkState>,
}

impl DurableServeSink {
    /// Wraps a serving handle and a blob store with an empty journal (a
    /// fresh deployment history). Use [`DurableServeSink::recover`] when
    /// the store may already hold state from a previous process.
    pub fn new(serve: ServeService, store: Arc<dyn BlobStore>) -> DurableServeSink {
        DurableServeSink {
            serve,
            store,
            state: Mutex::new(SinkState {
                segments: Vec::new(),
                records: 0,
                durable_upto: 0,
                next_seq: BTreeMap::new(),
            }),
        }
    }

    /// Replays the deploy journal from `store` and republishes each
    /// region's newest recoverable snapshot into `serve`, returning the
    /// sink (primed to continue the journal where it left off) and a
    /// [`RecoveryReport`].
    ///
    /// Per region, records are walked newest-first and the first snapshot
    /// blob that matches both the journaled checksum and its own internal
    /// checksum is published — so a torn newest snapshot falls back to the
    /// previous journaled epoch. A missing journal blob is a fresh start,
    /// not an error; a journal blob that is not ours (wrong magic) is.
    ///
    /// Recovery progress lands in `serve`'s metrics registry as stable
    /// counters (`seagull_recovery_*`), so `stable_export()` stays
    /// deterministic for identical recoveries.
    pub fn recover(
        serve: ServeService,
        store: Arc<dyn BlobStore>,
    ) -> io::Result<(DurableServeSink, RecoveryReport)> {
        let mut report = RecoveryReport::default();
        // Walk journal segments in order. The first missing segment is the
        // clean end of the journal; a torn segment is the in-flight append
        // the crash interrupted and likewise ends the walk (appends are
        // sequential, so nothing valid can exist past it — the next deploy
        // overwrites it).
        let mut segments: Vec<Bytes> = Vec::new();
        let mut payloads: Vec<Vec<u8>> = Vec::new();
        let mut durable_upto = 0usize;
        loop {
            let blob = match store.get(&journal_segment_key(segments.len() as u64)) {
                Ok(blob) => blob,
                Err(e) if e.kind() == io::ErrorKind::NotFound => break,
                Err(e) => return Err(e),
            };
            report.bytes_replayed += blob.len() as u64;
            let replayed = replay(&blob)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            report.truncated_bytes += replayed.truncated_bytes;
            let intact = !replayed.torn() && !replayed.records.is_empty();
            if intact {
                durable_upto = segments.len() + 1;
            }
            if !replayed.records.is_empty() {
                // A torn segment's valid prefix is kept in memory but not
                // counted durable, so the next deploy rewrites (heals) it.
                payloads.extend(replayed.records);
                segments.push(replayed.journal.encoded());
            }
            if !intact {
                break;
            }
        }

        // Group records per region, preserving append (= sequence) order.
        // A record that fails to decode despite its frame checksum ends the
        // usable journal, like a torn tail would.
        let mut by_region: BTreeMap<String, Vec<DeployRecord>> = BTreeMap::new();
        let mut next_seq: BTreeMap<String, u64> = BTreeMap::new();
        for payload in &payloads {
            let Ok(record) = DeployRecord::decode(payload) else {
                break;
            };
            report.journal_records += 1;
            let next = next_seq.entry(record.region.clone()).or_insert(1);
            *next = (*next).max(record.seq + 1);
            by_region
                .entry(record.region.clone())
                .or_default()
                .push(record);
        }

        for (region, records) in &by_region {
            let mut restored = false;
            for record in records.iter().rev() {
                match store.get(&snapshot_key(region, record.seq)) {
                    Ok(blob) => {
                        report.bytes_replayed += blob.len() as u64;
                        if checksum64(&blob) == record.snapshot_checksum {
                            if let Ok(snapshot) = decode_snapshot(&blob) {
                                serve.publish(snapshot);
                                report.snapshots_restored += 1;
                                restored = true;
                                break;
                            }
                        }
                        report.snapshot_fallbacks += 1;
                    }
                    Err(_) => report.snapshot_fallbacks += 1,
                }
            }
            if !restored {
                report.regions_unrecovered.push(region.clone());
            }
        }

        let registry = serve.obs().registry();
        registry
            .counter("seagull_recovery_journal_records_replayed_total", &[])
            .add(report.journal_records as u64);
        registry
            .counter("seagull_recovery_snapshots_restored_total", &[])
            .add(report.snapshots_restored as u64);
        registry
            .counter("seagull_recovery_snapshot_fallbacks_total", &[])
            .add(report.snapshot_fallbacks as u64);
        registry
            .counter("seagull_recovery_torn_tails_truncated_total", &[])
            .add(u64::from(report.torn_tail()));

        let records = payloads.len();
        let sink = DurableServeSink {
            serve,
            store,
            state: Mutex::new(SinkState {
                segments,
                records,
                durable_upto,
                next_seq,
            }),
        };
        Ok((sink, report))
    }

    /// The serving handle deployments publish into.
    pub fn serve(&self) -> &ServeService {
        &self.serve
    }

    /// Records currently held by the in-memory journal.
    pub fn journal_records(&self) -> usize {
        self.state.lock().records
    }

    /// The next deploy sequence number for a region (1 before any deploy).
    pub fn next_seq(&self, region: &str) -> u64 {
        self.state.lock().next_seq.get(region).copied().unwrap_or(1)
    }
}

impl DeploySink for DurableServeSink {
    /// Persist-then-publish: snapshot blob, journal record, in-memory swap.
    ///
    /// A crash (panic) inside either put propagates out before the publish,
    /// so a killed deploy is never visible in memory and at worst leaves a
    /// torn trailing blob for recovery's checksums to reject.
    fn on_deploy(&self, event: &DeployEvent<'_>) {
        let snapshot = ModelSnapshot::from_deploy(event);
        let blob = encode_snapshot(&snapshot);
        let snapshot_checksum = checksum64(&blob);
        let registry = self.serve.obs().registry();
        {
            let mut st = self.state.lock();
            let seq = st.next_seq.get(event.region).copied().unwrap_or(1);
            match self.store.put(&snapshot_key(event.region, seq), blob) {
                Ok(()) => {
                    let record = DeployRecord {
                        region: event.region.to_string(),
                        seq,
                        version: event.version,
                        week_start_day: event.week_start_day,
                        model_name: event.model_name.to_string(),
                        snapshot_checksum,
                        servers: snapshot.len() as u32,
                    };
                    let mut segment = Journal::new();
                    segment.append(&record.encode());
                    st.segments.push(segment.encoded());
                    st.records += 1;
                    st.next_seq.insert(event.region.to_string(), seq + 1);
                    // Flush unpersisted segments oldest-first: appending
                    // never rewrites committed segments, so a torn put can
                    // only lose the record it carries. The in-memory copy
                    // is the source of truth — a segment whose put failed
                    // is retried here ahead of the new one, healing the
                    // gap before anything newer lands.
                    while st.durable_upto < st.segments.len() {
                        let i = st.durable_upto;
                        let blob = st.segments[i].clone();
                        if self.store.put(&journal_segment_key(i as u64), blob).is_ok() {
                            st.durable_upto = i + 1;
                        } else {
                            registry
                                .counter("seagull_durable_journal_put_failures_total", &[])
                                .inc();
                            break;
                        }
                    }
                }
                Err(_) => {
                    registry
                        .counter("seagull_durable_snapshot_put_failures_total", &[])
                        .inc();
                }
            }
        }
        self.serve.publish(snapshot);
    }

    /// Failed deployment: nothing is journaled (the journal records only
    /// successful deploys) and the serving layer keeps last-known-good.
    fn on_fallback(&self, region: &str, week_start_day: i64) {
        DeploySink::on_fallback(&self.serve, region, week_start_day);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seagull_telemetry::blobstore::MemoryBlobStore;

    fn doc(server_id: u64, day: i64, values: Vec<f64>) -> PredictionDoc {
        PredictionDoc {
            region: "west".into(),
            server_id,
            day,
            step_min: 30,
            values,
            duration_min: 60,
        }
    }

    fn snap(version: u64) -> ModelSnapshot {
        ModelSnapshot::from_predictions(
            "west",
            version,
            7,
            "persistent-prev-day",
            &[
                doc(7, 14, (0..48).map(|i| i as f64).collect()),
                doc(9, 15, vec![2.5; 48]),
            ],
        )
    }

    fn deploy(sink: &DurableServeSink, version: u64, predictions: &[PredictionDoc]) {
        sink.on_deploy(&DeployEvent {
            region: "west",
            version,
            week_start_day: 7,
            model_name: "persistent-prev-day",
            predictions,
            cache: None,
        });
    }

    #[test]
    fn snapshot_codec_round_trips() {
        let original = snap(3);
        let blob = encode_snapshot(&original);
        let decoded = decode_snapshot(&blob).unwrap();
        assert_eq!(decoded.region(), "west");
        assert_eq!(decoded.version(), 3);
        assert_eq!(decoded.week_start_day(), 7);
        assert_eq!(decoded.model_name(), "persistent-prev-day");
        assert_eq!(decoded.len(), 2);
        for id in original.server_ids() {
            let a = original.server(id).unwrap();
            let b = decoded.server(id).unwrap();
            assert_eq!(a.prediction().values(), b.prediction().values());
            assert_eq!(a.materialized_day(), b.materialized_day());
            assert_eq!(a.duration_min(), b.duration_min());
        }
    }

    #[test]
    fn torn_snapshot_blob_fails_checksum_first() {
        let blob = encode_snapshot(&snap(1));
        for cut in [1, 8, 20, blob.len() - 1] {
            let torn = &blob[..cut];
            let err = decode_snapshot(torn).unwrap_err();
            assert!(
                matches!(
                    err,
                    PersistError::ChecksumMismatch | PersistError::Truncated
                ),
                "cut {cut}: {err}"
            );
        }
        // Bit-flip anywhere in the body is also caught by the footer.
        let mut flipped = blob.to_vec();
        flipped[10] ^= 0x40;
        assert_eq!(
            decode_snapshot(&flipped).unwrap_err(),
            PersistError::ChecksumMismatch
        );
    }

    #[test]
    fn deploy_record_round_trips() {
        let record = DeployRecord {
            region: "west".into(),
            seq: 4,
            version: 9,
            week_start_day: 21,
            model_name: "m".into(),
            snapshot_checksum: 0xDEAD_BEEF,
            servers: 12,
        };
        assert_eq!(DeployRecord::decode(&record.encode()).unwrap(), record);
        assert!(DeployRecord::decode(&record.encode()[..5]).is_err());
    }

    #[test]
    fn deploys_persist_and_recover() {
        let store: Arc<dyn BlobStore> = Arc::new(MemoryBlobStore::new());
        let sink = DurableServeSink::new(ServeService::with_defaults(), Arc::clone(&store));
        deploy(&sink, 1, &[doc(7, 14, vec![1.0; 48])]);
        deploy(&sink, 2, &[doc(7, 14, vec![2.0; 48])]);
        assert_eq!(sink.journal_records(), 2);
        assert_eq!(sink.next_seq("west"), 3);
        assert_eq!(sink.serve().snapshot("west").unwrap().version(), 2);

        // "Restart": fresh service, recover from the same store.
        let (recovered, report) =
            DurableServeSink::recover(ServeService::with_defaults(), store).unwrap();
        assert_eq!(report.journal_records, 2);
        assert_eq!(report.snapshots_restored, 1);
        assert_eq!(report.snapshot_fallbacks, 0);
        assert!(!report.torn_tail());
        assert!(report.regions_unrecovered.is_empty());
        let snapshot = recovered.serve().snapshot("west").unwrap();
        assert_eq!(snapshot.version(), 2);
        assert_eq!(
            snapshot.server(7).unwrap().prediction().values(),
            &[2.0; 48][..]
        );
        assert_eq!(recovered.next_seq("west"), 3);
        let export = recovered.serve().obs().stable_export();
        assert!(export.contains("seagull_recovery_journal_records_replayed_total"));
    }

    #[test]
    fn torn_newest_snapshot_falls_back_to_previous_epoch() {
        let store: Arc<dyn BlobStore> = Arc::new(MemoryBlobStore::new());
        let sink = DurableServeSink::new(ServeService::with_defaults(), Arc::clone(&store));
        deploy(&sink, 1, &[doc(7, 14, vec![1.0; 48])]);
        deploy(&sink, 2, &[doc(7, 14, vec![2.0; 48])]);
        // Tear the newest snapshot blob (seq 2) mid-write.
        let key = snapshot_key("west", 2);
        let whole = store.get(&key).unwrap();
        store.put(&key, whole.slice(0..whole.len() / 2)).unwrap();

        let (recovered, report) =
            DurableServeSink::recover(ServeService::with_defaults(), store).unwrap();
        assert_eq!(report.snapshot_fallbacks, 1);
        assert_eq!(report.snapshots_restored, 1);
        let snapshot = recovered.serve().snapshot("west").unwrap();
        assert_eq!(snapshot.version(), 1, "fell back to last-known-good");
        assert_eq!(
            snapshot.server(7).unwrap().prediction().values(),
            &[1.0; 48][..]
        );
    }

    #[test]
    fn torn_journal_tail_truncates_to_last_good_record() {
        let store: Arc<dyn BlobStore> = Arc::new(MemoryBlobStore::new());
        let sink = DurableServeSink::new(ServeService::with_defaults(), Arc::clone(&store));
        deploy(&sink, 1, &[doc(7, 14, vec![1.0; 48])]);
        deploy(&sink, 2, &[doc(7, 14, vec![2.0; 48])]);
        // Tear the second append's segment mid-record.
        let key = journal_segment_key(1);
        let whole = store.get(&key).unwrap();
        store.put(&key, whole.slice(0..whole.len() - 4)).unwrap();

        let (recovered, report) =
            DurableServeSink::recover(ServeService::with_defaults(), Arc::clone(&store)).unwrap();
        assert_eq!(report.journal_records, 1);
        assert!(report.torn_tail());
        // Only the journaled epoch is recovered, even though the seq-2 blob
        // is intact: the journal is the authority.
        assert_eq!(recovered.serve().snapshot("west").unwrap().version(), 1);
        // The healed journal continues from the truncated prefix,
        // overwriting the torn segment.
        assert_eq!(recovered.next_seq("west"), 2);
        deploy(&recovered, 5, &[doc(7, 14, vec![5.0; 48])]);
        assert_eq!(recovered.journal_records(), 2);
        let (again, report2) =
            DurableServeSink::recover(ServeService::with_defaults(), store).unwrap();
        assert_eq!(report2.journal_records, 2);
        assert!(!report2.torn_tail());
        assert_eq!(again.serve().snapshot("west").unwrap().version(), 5);
    }

    /// The regression the crash sweep caught: when the journal was a single
    /// blob rewritten on every append, tearing the rewrite destroyed
    /// *committed* records, so a crash during deploy N un-journaled deploys
    /// < N whose completion markers were already durable. With segmented
    /// appends, a torn append loses exactly the in-flight record.
    #[test]
    fn torn_journal_append_never_destroys_committed_records() {
        let store: Arc<dyn BlobStore> = Arc::new(MemoryBlobStore::new());
        let sink = DurableServeSink::new(ServeService::with_defaults(), Arc::clone(&store));
        deploy(&sink, 1, &[doc(7, 14, vec![1.0; 48])]);
        deploy(&sink, 2, &[doc(7, 14, vec![2.0; 48])]);
        deploy(&sink, 3, &[doc(7, 14, vec![3.0; 48])]);
        // Crash-tear the third append at every prefix length, including the
        // zero-byte prefix a crash at the very start of the put leaves.
        let key = journal_segment_key(2);
        let whole = store.get(&key).unwrap();
        for cut in 0..whole.len() {
            store.put(&key, whole.slice(0..cut)).unwrap();
            let (recovered, report) =
                DurableServeSink::recover(ServeService::with_defaults(), Arc::clone(&store))
                    .unwrap();
            assert_eq!(report.journal_records, 2, "cut at {cut}");
            assert_eq!(
                recovered.serve().snapshot("west").unwrap().version(),
                2,
                "cut at {cut}: both committed deploys must survive"
            );
        }
    }

    #[test]
    fn missing_journal_is_a_fresh_start() {
        let store: Arc<dyn BlobStore> = Arc::new(MemoryBlobStore::new());
        let (sink, report) =
            DurableServeSink::recover(ServeService::with_defaults(), store).unwrap();
        assert_eq!(report, RecoveryReport::default());
        assert_eq!(sink.journal_records(), 0);
        assert!(sink.serve().regions().is_empty());
    }
}
