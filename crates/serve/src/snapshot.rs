//! Immutable per-region model snapshots — the unit the serving layer swaps.
//!
//! A [`ModelSnapshot`] is everything the read path needs to answer queries
//! for one region: the materialized backup-day prediction per server, the
//! backup duration the window search should use, and (when available) the
//! fitted model extracted from the warm cache for horizons the materialized
//! prediction does not cover. Snapshots are built once at deploy time and
//! never mutated afterwards — readers share them through `Arc`, so a reader
//! holding an old epoch keeps a fully coherent prediction set no matter how
//! many deploys happen after it.

use seagull_core::pipeline::{DeployEvent, PredictionDoc};
use seagull_forecast::{FittedModel, ModelCache};
use seagull_timeseries::TimeSeries;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Cache-dense server index: ids sorted ascending in one contiguous array,
/// server payloads in a parallel array. Lookups binary-search the id
/// column only — ~3 cache lines for a thousand-server region versus a
/// pointer chase per `BTreeMap` level — and batch queries walking sorted
/// ids scan both columns linearly.
struct ServerTable {
    ids: Vec<u64>,
    servers: Vec<ServedServer>,
}

impl ServerTable {
    fn from_sorted(sorted: BTreeMap<u64, ServedServer>) -> ServerTable {
        let mut ids = Vec::with_capacity(sorted.len());
        let mut servers = Vec::with_capacity(sorted.len());
        for (id, server) in sorted {
            ids.push(id);
            servers.push(server);
        }
        ServerTable { ids, servers }
    }

    fn index_of(&self, server_id: u64) -> Option<usize> {
        self.ids.binary_search(&server_id).ok()
    }
}

/// One server's share of a [`ModelSnapshot`].
pub struct ServedServer {
    prediction: TimeSeries,
    duration_min: i64,
    model: Option<Arc<dyn FittedModel>>,
}

/// Fitted models carry no state worth printing; Debug shows whether one is
/// cached, which is what recovery tests assert about.
impl fmt::Debug for ServedServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServedServer")
            .field("prediction", &self.prediction)
            .field("duration_min", &self.duration_min)
            .field("has_model", &self.model.is_some())
            .finish()
    }
}

impl ServedServer {
    /// The materialized prediction: one full day, anchored at the server's
    /// next backup day.
    pub fn prediction(&self) -> &TimeSeries {
        &self.prediction
    }

    /// The day index the materialized prediction covers.
    pub fn materialized_day(&self) -> i64 {
        self.prediction.start().day_index()
    }

    /// Backup duration the low-load window search should use, minutes.
    pub fn duration_min(&self) -> i64 {
        self.duration_min
    }

    /// The fitted model extracted from the warm cache, if one was attached.
    pub fn model(&self) -> Option<&Arc<dyn FittedModel>> {
        self.model.as_ref()
    }

    /// Whether an extended-horizon model is available for this server.
    pub fn has_model(&self) -> bool {
        self.model.is_some()
    }
}

/// An immutable, versioned prediction set for one region.
///
/// Built by the deployment stage (see
/// [`seagull_core::pipeline::DeploySink`]) and published through
/// [`crate::SnapshotStore`], which stamps the epoch. All accessors are
/// read-only; the snapshot never changes after publication.
pub struct ModelSnapshot {
    region: String,
    version: u64,
    week_start_day: i64,
    model_name: String,
    epoch: u64,
    table: ServerTable,
}

impl fmt::Debug for ModelSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let servers: BTreeMap<u64, &ServedServer> = self
            .table
            .ids
            .iter()
            .copied()
            .zip(self.table.servers.iter())
            .collect();
        f.debug_struct("ModelSnapshot")
            .field("region", &self.region)
            .field("version", &self.version)
            .field("week_start_day", &self.week_start_day)
            .field("model_name", &self.model_name)
            .field("epoch", &self.epoch)
            .field("servers", &servers)
            .finish()
    }
}

impl ModelSnapshot {
    /// Builds a snapshot from the prediction documents one pipeline run
    /// materialized. Documents whose values do not form a day-aligned
    /// series are skipped (the pipeline only writes day-aligned docs).
    pub fn from_predictions(
        region: &str,
        version: u64,
        week_start_day: i64,
        model_name: &str,
        predictions: &[PredictionDoc],
    ) -> ModelSnapshot {
        let mut servers = BTreeMap::new();
        for doc in predictions {
            servers.insert(
                doc.server_id,
                ServedServer {
                    prediction: doc.series(),
                    duration_min: doc.duration_min,
                    model: None,
                },
            );
        }
        ModelSnapshot {
            region: region.to_string(),
            version,
            week_start_day,
            model_name: model_name.to_string(),
            epoch: 0,
            table: ServerTable::from_sorted(servers),
        }
    }

    /// Builds a snapshot straight from a pipeline [`DeployEvent`],
    /// attaching cached fitted models when the event carries a warm-cache
    /// handle.
    pub fn from_deploy(event: &DeployEvent<'_>) -> ModelSnapshot {
        let mut snapshot = ModelSnapshot::from_predictions(
            event.region,
            event.version,
            event.week_start_day,
            event.model_name,
            event.predictions,
        );
        if let Some(cache) = event.cache {
            snapshot.attach_cached_models(cache);
        }
        snapshot
    }

    /// Extracts each server's fitted model from the warm cache (keys are
    /// `region/server_id`, the pipeline's cache-key scheme) and attaches it
    /// for extended-horizon queries. Servers without a cached fit simply
    /// stay materialized-only.
    pub fn attach_cached_models(&mut self, cache: &ModelCache) {
        for (id, server) in self.table.ids.iter().zip(self.table.servers.iter_mut()) {
            server.model = cache.fitted(&format!("{}/{id}", self.region));
        }
    }

    /// Attaches (or replaces) one server's extended-horizon model.
    pub fn attach_model(&mut self, server_id: u64, model: Arc<dyn FittedModel>) {
        if let Some(i) = self.table.index_of(server_id) {
            self.table.servers[i].model = Some(model);
        }
    }

    /// The region this snapshot serves.
    pub fn region(&self) -> &str {
        &self.region
    }

    /// The model-registry version this snapshot corresponds to.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// First day of the week whose data trained this snapshot's model.
    pub fn week_start_day(&self) -> i64 {
        self.week_start_day
    }

    /// Name of the deployed forecaster.
    pub fn model_name(&self) -> &str {
        &self.model_name
    }

    /// The swap epoch stamped at publication (0 before publication).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub(crate) fn stamp_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Number of servers with a materialized prediction.
    pub fn len(&self) -> usize {
        self.table.ids.len()
    }

    /// Whether the snapshot holds no servers at all.
    pub fn is_empty(&self) -> bool {
        self.table.ids.is_empty()
    }

    /// The served server ids, ascending.
    pub fn server_ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.table.ids.iter().copied()
    }

    /// One server's served state, if present. Binary search over the
    /// dense sorted id column.
    pub fn server(&self, server_id: u64) -> Option<&ServedServer> {
        self.table
            .index_of(server_id)
            .map(|i| &self.table.servers[i])
    }

    /// Every `(id, server)` pair in ascending id order — the vectorized
    /// batch path walks this instead of point-probing per id.
    pub fn servers(&self) -> impl Iterator<Item = (u64, &ServedServer)> + '_ {
        self.table
            .ids
            .iter()
            .copied()
            .zip(self.table.servers.iter())
    }

    /// How many servers carry an extended-horizon model.
    pub fn models_attached(&self) -> usize {
        self.table.servers.iter().filter(|s| s.has_model()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(server_id: u64, day: i64, value: f64) -> PredictionDoc {
        PredictionDoc {
            region: "west".into(),
            server_id,
            day,
            step_min: 30,
            values: vec![value; 48],
            duration_min: 60,
        }
    }

    #[test]
    fn snapshot_indexes_servers_by_id() {
        let snap = ModelSnapshot::from_predictions(
            "west",
            3,
            7,
            "persistent-prev-day",
            &[doc(9, 14, 1.0), doc(4, 15, 2.0)],
        );
        assert_eq!(snap.len(), 2);
        assert_eq!(snap.server_ids().collect::<Vec<_>>(), vec![4, 9]);
        assert_eq!(snap.version(), 3);
        assert_eq!(snap.week_start_day(), 7);
        let s = snap.server(9).unwrap();
        assert_eq!(s.materialized_day(), 14);
        assert_eq!(s.duration_min(), 60);
        assert!(!s.has_model());
        assert!(snap.server(999).is_none());
    }

    #[test]
    fn empty_snapshot_is_empty() {
        let snap = ModelSnapshot::from_predictions("west", 1, 0, "m", &[]);
        assert!(snap.is_empty());
        assert_eq!(snap.models_attached(), 0);
    }
}
