//! Sharded, lock-free snapshot storage: epoch-GC reads, serialized
//! publishes.
//!
//! Regions hash across `crate::shard`'s 16-way `ShardedMap`; each
//! region owns a `RegionSlot` whose snapshot is a single atomic pointer
//! (`Swap`). A read is: pin the GC epoch, load the shard's frozen map
//! node, binary-search the region, load the snapshot pointer — four
//! uncontended atomic operations and **no lock of any kind**, which is
//! what lets throughput scale linearly with reader threads. A publish
//! builds the new snapshot off to the side, swaps the pointer in one
//! atomic store, and *retires* the old snapshot to the epoch GC, which
//! frees it only after every in-flight pin has drained. Readers never
//! wait on a deploy; deploys never wait on readers.
//!
//! The asymmetry is deliberate and matches the serving workload (queries
//! outnumber deploys by orders of magnitude): publishers pay the epoch
//! bump, the reader-slot scan, and a per-region mutex that serializes
//! deploys; readers pay two thread-private atomic stores (pin/unpin) that
//! no other thread contends.
//!
//! Coherence comes from swapping the whole snapshot pointer: a reader
//! either sees the entire old snapshot or the entire new one, never a
//! mixture, and a reader that clones the `Arc` before the swap keeps a
//! fully consistent prediction set until it drops the handle — the GC
//! never frees a snapshot whose `Arc` is still held. The full
//! memory-ordering argument lives in `crate::shard`'s module docs and
//! `DESIGN.md` §16.

use crate::shard::{EpochGc, PinGuard, ShardedMap, Swap, SHARDS};
use crate::snapshot::ModelSnapshot;
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-region state: one epoch-GC-protected snapshot pointer plus the
/// publish-side serialization.
pub(crate) struct RegionSlot {
    snap: Swap<ModelSnapshot>,
    /// 0 before the first publish, then one increment per deploy.
    epoch: AtomicU64,
    publish_lock: Mutex<()>,
}

impl RegionSlot {
    fn new() -> RegionSlot {
        RegionSlot {
            snap: Swap::empty(),
            epoch: AtomicU64::new(0),
            publish_lock: Mutex::new(()),
        }
    }

    /// Borrows the current snapshot under `pin` — the zero-refcount hot
    /// path.
    pub(crate) fn read<'p>(&self, pin: &'p PinGuard) -> Option<&'p ModelSnapshot> {
        self.snap.read(pin)
    }

    /// Clones the current snapshot `Arc` under `pin`, for callers that
    /// outlive the pin.
    pub(crate) fn load(&self, pin: &PinGuard) -> Option<Arc<ModelSnapshot>> {
        self.snap.load(pin)
    }

    /// The region's deploy epoch (0 = nothing published).
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    fn publish(&self, mut snapshot: ModelSnapshot, gc: &EpochGc) -> u64 {
        let _serialize = self.publish_lock.lock();
        let next = self.epoch.load(Ordering::Relaxed) + 1;
        snapshot.stamp_epoch(next);
        self.snap.store(Arc::new(snapshot), gc);
        self.epoch.store(next, Ordering::Release);
        next
    }
}

/// Deterministic store statistics: stable across thread counts for a
/// fixed publish schedule (exported as `Stability::Stable` metrics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreStats {
    /// Publishes accepted per shard (regions hash to a fixed shard).
    pub publishes_per_shard: Vec<u64>,
    /// Regions registered per shard.
    pub regions_per_shard: Vec<usize>,
    /// Snapshots handed to the GC so far (= publishes − live regions).
    pub snapshots_retired: u64,
}

/// Timing-dependent store statistics (exported as `Stability::Volatile`
/// metrics): reclamation progress depends on reader scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GcStats {
    /// Retired values (snapshots and map nodes) actually freed so far.
    pub freed_total: u64,
    /// Retired values (snapshots and map nodes) handed to the GC so far.
    pub retired_total: u64,
    /// Reader slots registered (one per thread that ever read).
    pub reader_slots: usize,
}

/// The serving layer's snapshot registry: regions sharded 16 ways, each
/// holding one epoch-GC-swapped snapshot pointer.
///
/// `SnapshotStore` is `Clone`-free by design — share it through `Arc` (as
/// [`crate::ServeService`] does). Reads take no lock at any level; the
/// per-shard write mutex is touched only the first time a region is seen,
/// and the per-region publish mutex only by deploys.
pub struct SnapshotStore {
    gc: Arc<EpochGc>,
    regions: ShardedMap<Arc<RegionSlot>>,
    /// Regions that have seen a publish — kept separately because slots
    /// may also be registered by first queries (the service's region
    /// contexts) before anything is published.
    published: Mutex<BTreeSet<String>>,
    publishes: [AtomicU64; SHARDS],
    snapshots_retired: AtomicU64,
}

impl SnapshotStore {
    /// Creates an empty store with no regions.
    pub fn new() -> SnapshotStore {
        SnapshotStore {
            gc: EpochGc::new(),
            regions: ShardedMap::new(),
            published: Mutex::new(BTreeSet::new()),
            publishes: std::array::from_fn(|_| AtomicU64::new(0)),
            snapshots_retired: AtomicU64::new(0),
        }
    }

    /// The store's epoch GC — shared with anything layered on the same
    /// read path (e.g. the service's region-context map) so one pin
    /// covers both.
    pub(crate) fn gc(&self) -> &Arc<EpochGc> {
        &self.gc
    }

    /// Lock-free region-slot lookup under a pin.
    pub(crate) fn slot<'p>(&self, region: &str, pin: &'p PinGuard) -> Option<&'p Arc<RegionSlot>> {
        self.regions.get(region, pin)
    }

    /// The region's slot, registering an empty one if absent — used by
    /// publishes and by the service's region-context map (a context may
    /// exist before the first publish; its slot simply reads `None`).
    pub(crate) fn slot_or_insert(&self, region: &str, pin: &PinGuard) -> Arc<RegionSlot> {
        if let Some(slot) = self.regions.get(region, pin) {
            return Arc::clone(slot);
        }
        self.regions
            .get_or_insert(region, &self.gc, pin, || Arc::new(RegionSlot::new()))
    }

    /// Publishes a snapshot for its region, stamping and returning the new
    /// epoch. Publishes for the same region are serialized; readers are
    /// never blocked by a publish.
    pub fn publish(&self, snapshot: ModelSnapshot) -> u64 {
        let pin = self.gc.pin();
        let region = snapshot.region().to_string();
        let slot = self.slot_or_insert(&region, &pin);
        let prior = slot.epoch();
        let epoch = slot.publish(snapshot, &self.gc);
        self.publishes[ShardedMap::<Arc<RegionSlot>>::shard_index(&region)]
            .fetch_add(1, Ordering::Relaxed);
        if prior > 0 {
            self.snapshots_retired.fetch_add(1, Ordering::Relaxed);
        } else {
            self.published.lock().insert(region);
        }
        epoch
    }

    /// The current snapshot for a region, or `None` if nothing has been
    /// published yet. The returned `Arc` stays coherent even if a deploy
    /// swaps the region while the caller holds it.
    pub fn load(&self, region: &str) -> Option<Arc<ModelSnapshot>> {
        let pin = self.gc.pin();
        self.slot(region, &pin).and_then(|slot| slot.load(&pin))
    }

    /// The region's current epoch: 0 before the first publish, then one
    /// increment per successful deploy.
    pub fn epoch(&self, region: &str) -> u64 {
        let pin = self.gc.pin();
        self.slot(region, &pin).map_or(0, |slot| slot.epoch())
    }

    /// Regions that have seen at least one publish, ascending.
    pub fn regions(&self) -> Vec<String> {
        self.published.lock().iter().cloned().collect()
    }

    /// Deterministic per-shard statistics (see [`StoreStats`]).
    pub fn stats(&self) -> StoreStats {
        let pin = self.gc.pin();
        StoreStats {
            publishes_per_shard: self
                .publishes
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            regions_per_shard: self.regions.shard_sizes(&pin),
            snapshots_retired: self.snapshots_retired.load(Ordering::Relaxed),
        }
    }

    /// Timing-dependent reclamation statistics (see [`GcStats`]).
    pub fn gc_stats(&self) -> GcStats {
        GcStats {
            freed_total: self.gc.freed_total(),
            retired_total: self.gc.retired_total(),
            reader_slots: self.gc.reader_slots(),
        }
    }

    /// Runs a GC collection cycle, freeing anything no pin still guards.
    /// Publishes collect automatically; this is for quiescent callers
    /// (tests, shutdown paths) that want reclamation to converge.
    pub fn collect(&self) {
        self.gc.collect();
    }
}

impl Default for SnapshotStore {
    fn default() -> SnapshotStore {
        SnapshotStore::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seagull_core::pipeline::PredictionDoc;

    fn snap(region: &str, version: u64) -> ModelSnapshot {
        let doc = PredictionDoc {
            region: region.into(),
            server_id: 1,
            day: 14,
            step_min: 30,
            values: vec![version as f64; 48],
            duration_min: 60,
        };
        ModelSnapshot::from_predictions(region, version, 7, "m", &[doc])
    }

    #[test]
    fn empty_store_loads_nothing() {
        let store = SnapshotStore::new();
        assert!(store.load("west").is_none());
        assert_eq!(store.epoch("west"), 0);
        assert!(store.regions().is_empty());
    }

    #[test]
    fn publish_bumps_epoch_and_swaps() {
        let store = SnapshotStore::new();
        assert_eq!(store.publish(snap("west", 1)), 1);
        let first = store.load("west").unwrap();
        assert_eq!(first.version(), 1);
        assert_eq!(first.epoch(), 1);

        assert_eq!(store.publish(snap("west", 2)), 2);
        let second = store.load("west").unwrap();
        assert_eq!(second.version(), 2);
        assert_eq!(store.epoch("west"), 2);
        // The old Arc is still fully coherent.
        assert_eq!(first.version(), 1);
        assert_eq!(first.server(1).unwrap().prediction().values()[0], 1.0);
    }

    #[test]
    fn regions_are_independent() {
        let store = SnapshotStore::new();
        store.publish(snap("west", 1));
        store.publish(snap("east", 1));
        store.publish(snap("west", 2));
        assert_eq!(store.epoch("west"), 2);
        assert_eq!(store.epoch("east"), 1);
        assert_eq!(
            store.regions(),
            vec!["east".to_string(), "west".to_string()]
        );
    }

    #[test]
    fn stats_track_publishes_and_retirement() {
        let store = SnapshotStore::new();
        store.publish(snap("west", 1));
        store.publish(snap("west", 2));
        store.publish(snap("east", 1));
        let stats = store.stats();
        assert_eq!(stats.publishes_per_shard.iter().sum::<u64>(), 3);
        assert_eq!(stats.regions_per_shard.iter().sum::<usize>(), 2);
        assert_eq!(stats.snapshots_retired, 1, "west's first snapshot retired");
        // Nothing pinned: retirement converges once a collection runs.
        store.collect();
        let gc = store.gc_stats();
        assert!(gc.retired_total >= 1);
        assert_eq!(gc.freed_total, gc.retired_total);
    }

    #[test]
    fn held_snapshot_survives_deploy_storm() {
        let store = SnapshotStore::new();
        store.publish(snap("west", 1));
        let held = store.load("west").unwrap();
        for v in 2..200 {
            store.publish(snap("west", v));
        }
        assert_eq!(held.version(), 1);
        assert_eq!(held.server(1).unwrap().prediction().values()[0], 1.0);
        assert_eq!(store.load("west").unwrap().version(), 199);
    }
}
