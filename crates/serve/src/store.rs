//! Epoch-swapped snapshot storage: wait-free reads, serialized publishes.
//!
//! Each region owns a private `RegionSlot`: two snapshot slots plus an atomic
//! epoch counter. The active slot is `epoch & 1`. Readers load the epoch
//! with `Acquire` ordering, take a read lock on the *active* slot, and
//! clone the `Arc` — because a publish only ever writes the *standby*
//! slot before flipping the epoch with `Release` ordering, the read lock
//! is uncontended in steady state: readers never wait on a deploy.
//!
//! The asymmetry is deliberate and matches the serving workload (queries
//! outnumber deploys by orders of magnitude): a *publisher* may block,
//! first on the per-region publish mutex (deploys are serialized), then
//! on the standby slot's write lock if a straggling reader still holds a
//! read guard from two epochs back. Readers clone the `Arc` and drop the
//! guard immediately, so that window is a few instructions wide.
//!
//! Coherence comes from swapping the whole `Arc<ModelSnapshot>`: a reader
//! either sees the entire old snapshot or the entire new one, never a
//! mixture, and a reader that holds an old `Arc` across a deploy keeps a
//! fully consistent prediction set until it drops the handle.

use crate::snapshot::ModelSnapshot;
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-region double-slot state. Epoch 0 means "nothing published yet";
/// the first publish moves the region to epoch 1 with slot 1 active.
struct RegionSlot {
    epoch: AtomicU64,
    slots: [RwLock<Option<Arc<ModelSnapshot>>>; 2],
    publish_lock: Mutex<()>,
}

impl RegionSlot {
    fn new() -> RegionSlot {
        RegionSlot {
            epoch: AtomicU64::new(0),
            slots: [RwLock::new(None), RwLock::new(None)],
            publish_lock: Mutex::new(()),
        }
    }

    fn load(&self) -> Option<Arc<ModelSnapshot>> {
        let epoch = self.epoch.load(Ordering::Acquire);
        if epoch == 0 {
            return None;
        }
        let guard = self.slots[(epoch & 1) as usize].read();
        guard.as_ref().map(Arc::clone)
    }

    fn publish(&self, mut snapshot: ModelSnapshot) -> u64 {
        let _serialize = self.publish_lock.lock();
        let epoch = self.epoch.load(Ordering::Relaxed);
        let next = epoch + 1;
        snapshot.stamp_epoch(next);
        {
            // Standby slot: no reader targets it under the current epoch.
            // The write lock only contends with stragglers from epoch-2.
            let mut standby = self.slots[(next & 1) as usize].write();
            *standby = Some(Arc::new(snapshot));
        }
        self.epoch.store(next, Ordering::Release);
        next
    }
}

/// The serving layer's snapshot registry: one epoch-swapped slot pair per
/// region.
///
/// `SnapshotStore` is `Clone`-free by design — share it through `Arc` (as
/// [`crate::ServeService`] does). The outer region map takes a write lock
/// only the first time a region is seen; steady-state reads and publishes
/// touch it with a read lock.
pub struct SnapshotStore {
    regions: RwLock<BTreeMap<String, Arc<RegionSlot>>>,
}

impl SnapshotStore {
    /// Creates an empty store with no regions.
    pub fn new() -> SnapshotStore {
        SnapshotStore {
            regions: RwLock::new(BTreeMap::new()),
        }
    }

    fn slot(&self, region: &str) -> Option<Arc<RegionSlot>> {
        self.regions.read().get(region).map(Arc::clone)
    }

    fn slot_or_insert(&self, region: &str) -> Arc<RegionSlot> {
        if let Some(slot) = self.slot(region) {
            return slot;
        }
        let mut map = self.regions.write();
        Arc::clone(
            map.entry(region.to_string())
                .or_insert_with(|| Arc::new(RegionSlot::new())),
        )
    }

    /// Publishes a snapshot for its region, stamping and returning the new
    /// epoch. Publishes for the same region are serialized; readers are
    /// never blocked by a publish.
    pub fn publish(&self, snapshot: ModelSnapshot) -> u64 {
        let slot = self.slot_or_insert(snapshot.region());
        slot.publish(snapshot)
    }

    /// The current snapshot for a region, or `None` if nothing has been
    /// published yet. The returned `Arc` stays coherent even if a deploy
    /// swaps the region while the caller holds it.
    pub fn load(&self, region: &str) -> Option<Arc<ModelSnapshot>> {
        self.slot(region).and_then(|slot| slot.load())
    }

    /// The region's current epoch: 0 before the first publish, then one
    /// increment per successful deploy.
    pub fn epoch(&self, region: &str) -> u64 {
        self.slot(region)
            .map(|slot| slot.epoch.load(Ordering::Acquire))
            .unwrap_or(0)
    }

    /// Regions that have seen at least one publish attempt, ascending.
    pub fn regions(&self) -> Vec<String> {
        self.regions.read().keys().cloned().collect()
    }
}

impl Default for SnapshotStore {
    fn default() -> SnapshotStore {
        SnapshotStore::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seagull_core::pipeline::PredictionDoc;

    fn snap(region: &str, version: u64) -> ModelSnapshot {
        let doc = PredictionDoc {
            region: region.into(),
            server_id: 1,
            day: 14,
            step_min: 30,
            values: vec![version as f64; 48],
            duration_min: 60,
        };
        ModelSnapshot::from_predictions(region, version, 7, "m", &[doc])
    }

    #[test]
    fn empty_store_loads_nothing() {
        let store = SnapshotStore::new();
        assert!(store.load("west").is_none());
        assert_eq!(store.epoch("west"), 0);
        assert!(store.regions().is_empty());
    }

    #[test]
    fn publish_bumps_epoch_and_swaps() {
        let store = SnapshotStore::new();
        assert_eq!(store.publish(snap("west", 1)), 1);
        let first = store.load("west").unwrap();
        assert_eq!(first.version(), 1);
        assert_eq!(first.epoch(), 1);

        assert_eq!(store.publish(snap("west", 2)), 2);
        let second = store.load("west").unwrap();
        assert_eq!(second.version(), 2);
        assert_eq!(store.epoch("west"), 2);
        // The old Arc is still fully coherent.
        assert_eq!(first.version(), 1);
        assert_eq!(first.server(1).unwrap().prediction().values()[0], 1.0);
    }

    #[test]
    fn regions_are_independent() {
        let store = SnapshotStore::new();
        store.publish(snap("west", 1));
        store.publish(snap("east", 1));
        store.publish(snap("west", 2));
        assert_eq!(store.epoch("west"), 2);
        assert_eq!(store.epoch("east"), 1);
        assert_eq!(
            store.regions(),
            vec!["east".to_string(), "west".to_string()]
        );
    }
}
