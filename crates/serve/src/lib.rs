//! # seagull-serve: the prediction-serving layer
//!
//! Seagull's pipeline (Section 4 of the paper) trains models and
//! materializes next-backup-day predictions into the document store. This
//! crate is the other half of the story: an **in-process prediction
//! service** that answers per-server load queries — `predict(region,
//! server, horizon)`, low-load-window lookups, batched multi-server
//! queries — from an immutable **model snapshot** the pipeline publishes
//! at deployment time.
//!
//! ## Snapshot lifecycle
//!
//! 1. The deployment stage of
//!    [`AmlPipeline`](seagull_core::pipeline::AmlPipeline) fires its
//!    [`DeploySink`](seagull_core::pipeline::DeploySink). [`ServeService`]
//!    implements that trait: it builds a [`ModelSnapshot`] from the
//!    deployed [`PredictionDoc`](seagull_core::pipeline::PredictionDoc)s,
//!    attaching fitted models from the warm cache when available.
//! 2. The snapshot is published into the [`SnapshotStore`] via an atomic
//!    **epoch swap**: the store writes the region's *standby* slot, then
//!    flips the epoch. Readers never lock against a deploy.
//! 3. When deployment *fails*, the sink's fallback hook leaves the store
//!    untouched: the **last-known-good** snapshot keeps serving, mirroring
//!    the model registry's fallback rule.
//!
//! ## Read path
//!
//! Admission control consults the shared per-region
//! [`CircuitBreaker`](seagull_core::resilience::CircuitBreaker)
//! (read-only — the service never consumes the pipeline's half-open
//! probes). Admitted queries clone one `Arc<ModelSnapshot>` and answer
//! from it: horizons inside the materialized day are zero-copy slices;
//! longer horizons and other days run the cached fitted model. Batched
//! queries acquire the snapshot once, so every response in a batch comes
//! from the same epoch.
//!
//! Every request lands in a [`seagull_obs`] registry: stable
//! request/outcome counters and staleness histograms (deterministic across
//! runs), volatile wall-clock latency histograms.
//!
//! ## Durability
//!
//! Snapshots live in memory; a process restart would lose them. The
//! [`persist`] module adds the crash-safe path: [`DurableServeSink`] writes
//! every deployed snapshot to a blob store and appends a checksummed record
//! to an append-only deploy journal *before* the in-memory publish, and
//! [`DurableServeSink::recover`] replays that journal on startup to
//! republish each region's last-known-good snapshot — falling back one
//! journaled epoch when the newest snapshot blob is torn. See `DESIGN.md`
//! §12.
//!
//! See `DESIGN.md` §11 for the memory-ordering argument and the staleness
//! model.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod persist;
pub mod service;
pub mod snapshot;
pub mod store;

pub use persist::{
    decode_snapshot, encode_snapshot, journal_segment_key, snapshot_key, DeployRecord,
    DurableServeSink, PersistError, RecoveryReport,
};
pub use service::{ServeError, ServeService};
pub use snapshot::{ModelSnapshot, ServedServer};
pub use store::SnapshotStore;
