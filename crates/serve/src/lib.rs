//! # seagull-serve: the prediction-serving layer
//!
//! Seagull's pipeline (Section 4 of the paper) trains models and
//! materializes next-backup-day predictions into the document store. This
//! crate is the other half of the story: an **in-process prediction
//! service** that answers per-server load queries — `predict(region,
//! server, horizon)`, low-load-window lookups, batched multi-server
//! queries — from an immutable **model snapshot** the pipeline publishes
//! at deployment time.
//!
//! ## Snapshot lifecycle
//!
//! 1. The deployment stage of
//!    [`AmlPipeline`](seagull_core::pipeline::AmlPipeline) fires its
//!    [`DeploySink`](seagull_core::pipeline::DeploySink). [`ServeService`]
//!    implements that trait: it builds a [`ModelSnapshot`] from the
//!    deployed [`PredictionDoc`](seagull_core::pipeline::PredictionDoc)s,
//!    attaching fitted models from the warm cache when available.
//! 2. The snapshot is published into the [`SnapshotStore`] via an atomic
//!    **pointer swap**: the store installs the new snapshot in one atomic
//!    store and retires the old one to an epoch GC that frees it only
//!    after every in-flight reader pin has drained. Readers never lock
//!    against a deploy — or against anything else.
//! 3. When deployment *fails*, the sink's fallback hook leaves the store
//!    untouched: the **last-known-good** snapshot keeps serving, mirroring
//!    the model registry's fallback rule.
//!
//! ## Read path
//!
//! The hot path is **lock-free end to end**: a query pins the store's GC
//! epoch (two thread-private atomic stores), resolves its region through
//! a 16-way sharded copy-on-write map, borrows the snapshot straight off
//! an atomic pointer — no `RwLock`, no `Arc` refcount traffic — and
//! checks admission against a lock-free
//! [`BreakerProbe`](seagull_core::resilience::BreakerProbe) mirror of the
//! shared per-region
//! [`CircuitBreaker`](seagull_core::resilience::CircuitBreaker)
//! (read-only — the service never consumes the pipeline's half-open
//! probes). Horizons inside the materialized day are zero-copy slices;
//! longer horizons and other days run the cached fitted model. Batched
//! queries resolve the snapshot once, so every response in a batch comes
//! from the same epoch, and identical in-flight `(server, horizon)`
//! queries can be coalesced so one computation fans out to all waiters.
//!
//! Every request lands in a [`seagull_obs`] registry: stable
//! request/outcome counters and staleness histograms (deterministic across
//! runs), volatile wall-clock latency histograms.
//!
//! ## Durability
//!
//! Snapshots live in memory; a process restart would lose them. The
//! [`persist`] module adds the crash-safe path: [`DurableServeSink`] writes
//! every deployed snapshot to a blob store and appends a checksummed record
//! to an append-only deploy journal *before* the in-memory publish, and
//! [`DurableServeSink::recover`] replays that journal on startup to
//! republish each region's last-known-good snapshot — falling back one
//! journaled epoch when the newest snapshot blob is torn. See `DESIGN.md`
//! §12.
//!
//! See `DESIGN.md` §11 for the staleness model and §16 for the lock-free
//! read path's memory-ordering argument.

#![warn(missing_docs)]
// `unsafe` is denied crate-wide; the one exception is the `shard` module,
// whose epoch-GC read path needs raw-pointer derefs and carries a safety
// argument on every unsafe block (see its module docs and DESIGN.md §16).
#![deny(unsafe_code)]

mod coalesce;
pub mod persist;
pub mod service;
mod shard;
pub mod snapshot;
pub mod store;

pub use persist::{
    decode_snapshot, encode_snapshot, journal_segment_key, snapshot_key, DeployRecord,
    DurableServeSink, PersistError, RecoveryReport,
};
pub use service::{ServeError, ServeService};
pub use snapshot::{ModelSnapshot, ServedServer};
pub use store::{GcStats, SnapshotStore, StoreStats};
