//! In-flight request coalescing: identical `(region, epoch, server,
//! horizon)` predictions share one computation.
//!
//! When many readers ask the same question at the same instant — the
//! thundering-herd shape right after a deploy, or hot servers under fan-in
//! — only the first (*leader*) computes; the rest (*followers*) park on
//! the leader's cell and receive a clone of its result. Because the key
//! includes the snapshot epoch, a follower can never be handed a result
//! computed from a different snapshot than the one it resolved: the
//! coalesced answer is byte-identical to what the follower would have
//! computed itself.
//!
//! ## Cell lifecycle
//!
//! 1. Leader takes the key's shard lock, finds no cell, inserts one, and
//!    releases the lock before computing (the map lock is never held
//!    across a prediction).
//! 2. Followers that arrive while the cell is in the map clone its `Arc`,
//!    release the shard lock, and wait on the cell's condvar.
//! 3. The leader fills the cell, notifies all waiters, then removes the
//!    key — late arrivals after removal simply become leaders of a new
//!    cell, which is correct (the result was already broadcast and the
//!    computation is idempotent).
//!
//! The leader fills the cell through a drop guard, so even a panicking
//! computation releases followers (with an error) instead of stranding
//! them.
//!
//! Coalescing only pays when the computation is expensive relative to a
//! map probe (model-backed horizons, large slices); the service gates it
//! behind [`crate::ServeService::set_coalescing`].

use crate::service::ServeError;
use seagull_timeseries::TimeSeries;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
// std sync primitives, not parking_lot: the condvar-wait shape is the
// whole point here, and these mutexes are held for nanoseconds.
use std::sync::{Arc, Condvar, Mutex};

/// Shards for the in-flight map; power of two, mask-indexed.
const COALESCE_SHARDS: usize = 16;

/// Identity of one in-flight prediction. `region` is the address of the
/// region context's interned name (stable for the context's lifetime), so
/// key construction allocates nothing.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct CoalesceKey {
    /// Address of the region's interned name (`Arc<str>` data pointer).
    pub region: usize,
    /// Snapshot epoch the query resolved — results never cross epochs.
    pub epoch: u64,
    /// Queried server id.
    pub server: u64,
    /// Queried horizon, steps.
    pub horizon: u64,
}

impl CoalesceKey {
    fn shard(&self) -> usize {
        // Cheap avalanche over the fields; only shard balance matters.
        let mut h = self.region as u64 ^ self.epoch.rotate_left(17);
        h ^= self.server.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h ^= self.horizon.rotate_left(33);
        h = (h ^ (h >> 29)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        (h >> 32) as usize & (COALESCE_SHARDS - 1)
    }
}

type CoalesceResult = Result<TimeSeries, ServeError>;

/// Poisoning-tolerant lock: a leader panicking inside `compute` must not
/// wedge every later query on a poisoned map/cell.
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

struct Cell {
    done: Mutex<Option<CoalesceResult>>,
    cv: Condvar,
}

/// One shard of the in-flight map: keys currently being computed, each
/// pointing at the cell its followers wait on.
type CoalesceShard = Mutex<HashMap<CoalesceKey, Arc<Cell>>>;

/// The in-flight map: one mutexed hash map per shard plus a hit counter.
pub(crate) struct Coalescer {
    shards: Box<[CoalesceShard]>,
    hits: AtomicU64,
}

/// Fills the cell on drop if the computation never did (panic in the
/// leader's closure), so followers wake with an error instead of hanging.
struct FillOnDrop<'c> {
    cell: &'c Cell,
    filled: bool,
}

impl Drop for FillOnDrop<'_> {
    fn drop(&mut self) {
        if !self.filled {
            let mut done = lock(&self.cell.done);
            if done.is_none() {
                *done = Some(Err(ServeError::BadRequest(
                    "coalesced computation aborted".into(),
                )));
            }
            drop(done);
            self.cell.cv.notify_all();
        }
    }
}

impl Coalescer {
    pub(crate) fn new() -> Coalescer {
        Coalescer {
            shards: (0..COALESCE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            hits: AtomicU64::new(0),
        }
    }

    /// Requests coalesced into another computation so far (volatile: the
    /// count depends entirely on arrival timing).
    pub(crate) fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Runs `compute` as the leader for `key`, or waits for an in-flight
    /// leader and returns a clone of its result. The bool is `true` when
    /// this call was coalesced into another (a follower).
    pub(crate) fn run(
        &self,
        key: CoalesceKey,
        compute: impl FnOnce() -> CoalesceResult,
    ) -> (CoalesceResult, bool) {
        let shard = &self.shards[key.shard()];
        let cell = {
            let mut map = lock(shard);
            match map.entry(key) {
                Entry::Occupied(occupied) => {
                    let cell = Arc::clone(occupied.get());
                    drop(map);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    let mut done = lock(&cell.done);
                    while done.is_none() {
                        done = cell
                            .cv
                            .wait(done)
                            .unwrap_or_else(|poisoned| poisoned.into_inner());
                    }
                    return (done.clone().expect("filled"), true);
                }
                Entry::Vacant(vacant) => {
                    let cell = Arc::new(Cell {
                        done: Mutex::new(None),
                        cv: Condvar::new(),
                    });
                    vacant.insert(Arc::clone(&cell));
                    cell
                }
            }
        };
        let mut guard = FillOnDrop {
            cell: &cell,
            filled: false,
        };
        let result = compute();
        {
            let mut done = lock(&cell.done);
            *done = Some(result.clone());
        }
        guard.filled = true;
        cell.cv.notify_all();
        lock(shard).remove(&key);
        (result, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seagull_timeseries::Timestamp;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    fn key(server: u64) -> CoalesceKey {
        CoalesceKey {
            region: 0x1000,
            epoch: 1,
            server,
            horizon: 4,
        }
    }

    fn series(value: f64) -> TimeSeries {
        TimeSeries::new(Timestamp::from_days(0), 30, vec![value; 4]).unwrap()
    }

    #[test]
    fn solo_caller_leads_and_cleans_up() {
        let co = Coalescer::new();
        let (result, coalesced) = co.run(key(7), || Ok(series(1.0)));
        assert!(!coalesced);
        assert_eq!(result.unwrap().values(), &[1.0; 4]);
        assert_eq!(co.hits(), 0);
        // The cell was removed: a second run leads again.
        let (_, coalesced) = co.run(key(7), || Ok(series(2.0)));
        assert!(!coalesced);
    }

    #[test]
    fn concurrent_identical_queries_compute_once() {
        let co = Arc::new(Coalescer::new());
        let computed = AtomicUsize::new(0);
        let barrier = Barrier::new(8);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let co = Arc::clone(&co);
                    let computed = &computed;
                    let barrier = &barrier;
                    scope.spawn(move || {
                        barrier.wait();
                        co.run(key(7), || {
                            computed.fetch_add(1, Ordering::Relaxed);
                            // Widen the in-flight window so followers pile up.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            Ok(series(9.0))
                        })
                    })
                })
                .collect();
            let mut followers = 0;
            for handle in handles {
                let (result, coalesced) = handle.join().unwrap();
                assert_eq!(result.unwrap().values(), &[9.0; 4]);
                followers += usize::from(coalesced);
            }
            // Every thread got the answer; at most a handful recomputed
            // (a late arrival after cleanup legitimately leads again).
            let leads = computed.load(Ordering::Relaxed);
            assert_eq!(followers as u64, co.hits());
            assert_eq!(leads + followers, 8);
        });
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let co = Coalescer::new();
        let (_, c1) = co.run(key(1), || Ok(series(1.0)));
        let (_, c2) = co.run(key(2), || Ok(series(2.0)));
        assert!(!c1 && !c2);
        assert_eq!(co.hits(), 0);
    }

    #[test]
    fn panicking_leader_releases_followers() {
        let co = Arc::new(Coalescer::new());
        let barrier = Arc::new(Barrier::new(2));
        let co_leader = Arc::clone(&co);
        let barrier_leader = Arc::clone(&barrier);
        let leader = std::thread::spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                co_leader.run(key(7), || {
                    barrier_leader.wait();
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    panic!("leader died");
                })
            }));
            assert!(result.is_err());
        });
        barrier.wait();
        // Arrive while the leader is inside compute(): either coalesce
        // into the doomed cell (and get the abort error) or lead a fresh
        // cell after cleanup (and succeed) — both are live outcomes.
        let (result, coalesced) = co.run(key(7), || Ok(series(1.0)));
        if coalesced {
            assert!(matches!(result, Err(ServeError::BadRequest(_))));
        } else {
            assert!(result.is_ok());
        }
        leader.join().unwrap();
    }
}
