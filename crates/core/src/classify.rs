//! Server classification — Definitions 3–6 and the Figure 3 breakdown.
//!
//! "We classify the servers with respect to their lifetime and typical
//! customer activity patterns. ... The classification provides us valuable
//! insights about load predictability per class of servers" (Section 3.2).

use crate::metrics::{bucket_ratio, AccuracyConfig};
use seagull_telemetry::fleet::ServerTelemetry;
use seagull_telemetry::server::ServerId;
use seagull_timeseries::TimeSeries;
use serde::{Deserialize, Serialize};

/// The class Seagull assigns to a server from its load alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServerClass {
    /// Existed three weeks or less (Definition 3); excluded from prediction.
    ShortLived,
    /// Long-lived, load accurately predicted by its average (Definition 4).
    Stable,
    /// Long-lived, unstable, each day predicted by the previous day
    /// (Definition 5).
    DailyPattern,
    /// Long-lived, unstable, no daily pattern, each day predicted by the
    /// previous equivalent day (Definition 6).
    WeeklyPattern,
    /// Long-lived, unstable, conforms to no pattern.
    NoPattern,
}

impl ServerClass {
    /// Short label for experiment output.
    pub fn label(self) -> &'static str {
        match self {
            ServerClass::ShortLived => "short-lived",
            ServerClass::Stable => "stable",
            ServerClass::DailyPattern => "daily-pattern",
            ServerClass::WeeklyPattern => "weekly-pattern",
            ServerClass::NoPattern => "no-pattern",
        }
    }
}

/// Classification parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassifyConfig {
    /// Accuracy thresholds shared with the low-load metrics.
    pub accuracy: AccuracyConfig,
    /// Lifespan above which a server counts as long-lived, in days
    /// (Definition 3: "more than three weeks").
    pub long_lived_days: i64,
}

impl Default for ClassifyConfig {
    fn default() -> Self {
        ClassifyConfig {
            accuracy: AccuracyConfig::default(),
            long_lived_days: 21,
        }
    }
}

/// Definition 4: is the load over the series accurately predicted by the
/// series' own average?
pub fn is_stable(series: &TimeSeries, config: &ClassifyConfig) -> bool {
    if series.is_empty() {
        return false;
    }
    let present: Vec<f64> = series
        .values()
        .iter()
        .copied()
        .filter(|v| !v.is_nan())
        .collect();
    if present.is_empty() {
        return false;
    }
    let avg = seagull_timeseries::mean(&present);
    let constant = vec![avg; series.len()];
    bucket_ratio(&constant, series.values(), &config.accuracy.bound)
        .is_some_and(|r| r >= config.accuracy.bucket_ratio_threshold)
}

/// Definition 5: does every day in the series conform to a daily pattern
/// (day `d` accurately predicted by day `d−1`)? Requires at least two full
/// days; returns `false` otherwise.
pub fn has_daily_pattern(series: &TimeSeries, config: &ClassifyConfig) -> bool {
    conforms_with_lag(series, 1, config)
}

/// Definition 6 (pattern part): does every day conform to a weekly pattern
/// (day `d` accurately predicted by day `d−7`)? Requires at least eight full
/// days; returns `false` otherwise. Note Definition 6 additionally requires
/// *not* having a daily pattern — [`classify_series`] applies that ordering.
pub fn has_weekly_pattern(series: &TimeSeries, config: &ClassifyConfig) -> bool {
    conforms_with_lag(series, 7, config)
}

/// True if every full day `d` with a full day `d − lag_days` available is
/// accurately predicted by that earlier day, and at least one such pair
/// exists.
fn conforms_with_lag(series: &TimeSeries, lag_days: i64, config: &ClassifyConfig) -> bool {
    let mut pairs = 0usize;
    let Some(first) = series.first_full_day() else {
        return false;
    };
    let Some(last) = series.last_full_day() else {
        return false;
    };
    for d in (first + lag_days)..=last {
        let (Some(today), Some(earlier)) = (series.day_values(d), series.day_values(d - lag_days))
        else {
            continue;
        };
        pairs += 1;
        let ratio = bucket_ratio(earlier, today, &config.accuracy.bound);
        if !ratio.is_some_and(|r| r >= config.accuracy.bucket_ratio_threshold) {
            return false;
        }
    }
    pairs > 0
}

/// Classifies one long-lived load series (lifespan is checked by the caller,
/// which knows the metadata).
pub fn classify_series(series: &TimeSeries, config: &ClassifyConfig) -> ServerClass {
    if is_stable(series, config) {
        ServerClass::Stable
    } else if has_daily_pattern(series, config) {
        ServerClass::DailyPattern
    } else if has_weekly_pattern(series, config) {
        ServerClass::WeeklyPattern
    } else {
        ServerClass::NoPattern
    }
}

/// Classifies a server: lifespan first (Definition 3), then the pattern
/// hierarchy. `as_of_day` is "today" for the lifespan rule (usually the end
/// of the observation window).
pub fn classify_server(
    server: &ServerTelemetry,
    as_of_day: i64,
    config: &ClassifyConfig,
) -> ServerClass {
    if server.meta.lifespan_days(as_of_day) <= config.long_lived_days {
        return ServerClass::ShortLived;
    }
    classify_series(&server.series, config)
}

/// The Figure 3 breakdown of a fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassificationReport {
    /// Servers per class, in [`ServerClass`] declaration order.
    pub counts: Vec<(ServerClass, usize)>,
    /// Per-server assignments, in input order.
    pub assignments: Vec<(ServerId, ServerClass)>,
}

impl ClassificationReport {
    /// Total servers classified.
    pub fn total(&self) -> usize {
        self.counts.iter().map(|(_, n)| n).sum()
    }

    /// Count for a class.
    pub fn count(&self, class: ServerClass) -> usize {
        self.counts
            .iter()
            .find(|(c, _)| *c == class)
            .map_or(0, |(_, n)| *n)
    }

    /// Percentage (0–100) for a class.
    pub fn percentage(&self, class: ServerClass) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        100.0 * self.count(class) as f64 / total as f64
    }

    /// Long-lived percentage (everything except short-lived).
    pub fn long_lived_percentage(&self) -> f64 {
        100.0 - self.percentage(ServerClass::ShortLived)
    }
}

/// Classifies a whole fleet as of the end of its observation window.
pub fn classify_fleet_with(
    fleet: &[ServerTelemetry],
    as_of_day: i64,
    config: &ClassifyConfig,
) -> ClassificationReport {
    let mut assignments = Vec::with_capacity(fleet.len());
    let mut counts: Vec<(ServerClass, usize)> = [
        ServerClass::ShortLived,
        ServerClass::Stable,
        ServerClass::DailyPattern,
        ServerClass::WeeklyPattern,
        ServerClass::NoPattern,
    ]
    .iter()
    .map(|c| (*c, 0usize))
    .collect();
    for server in fleet {
        let class = classify_server(server, as_of_day, config);
        assignments.push((server.meta.id, class));
        if let Some(entry) = counts.iter_mut().find(|(c, _)| *c == class) {
            entry.1 += 1;
        }
    }
    ClassificationReport {
        counts,
        assignments,
    }
}

/// Convenience: classify with default config, inferring `as_of_day` from the
/// latest series end in the fleet.
pub fn classify_fleet(
    fleet: &[ServerTelemetry],
    bound: &crate::metrics::ErrorBound,
) -> ClassificationReport {
    let as_of_day = fleet
        .iter()
        .map(|s| s.series.end().day_index())
        .max()
        .unwrap_or(0);
    let config = ClassifyConfig {
        accuracy: AccuracyConfig {
            bound: *bound,
            ..AccuracyConfig::default()
        },
        ..ClassifyConfig::default()
    };
    classify_fleet_with(fleet, as_of_day, &config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seagull_timeseries::{TimeSeries, Timestamp};

    fn cfg() -> ClassifyConfig {
        ClassifyConfig::default()
    }

    fn series_of_days(days: usize, f: impl Fn(Timestamp) -> f64) -> TimeSeries {
        TimeSeries::from_fn(Timestamp::from_days(1000), 5, days * 288, f).unwrap()
    }

    #[test]
    fn constant_series_is_stable() {
        let s = series_of_days(7, |_| 25.0);
        assert!(is_stable(&s, &cfg()));
        assert_eq!(classify_series(&s, &cfg()), ServerClass::Stable);
    }

    #[test]
    fn high_amplitude_daily_is_not_stable_but_daily() {
        let s = series_of_days(7, |t| {
            30.0 + 30.0 * (2.0 * std::f64::consts::PI * t.minute_of_day() as f64 / 1440.0).sin()
        });
        assert!(!is_stable(&s, &cfg()));
        assert!(has_daily_pattern(&s, &cfg()));
        assert_eq!(classify_series(&s, &cfg()), ServerClass::DailyPattern);
    }

    #[test]
    fn weekend_structure_is_weekly() {
        // Needs >= 8 full days so a (d, d-7) pair exists.
        let s = series_of_days(15, |t| {
            let base = if t.day_of_week().is_weekend() {
                5.0
            } else {
                65.0
            };
            base + 20.0
                * (2.0 * std::f64::consts::PI * t.minute_of_day() as f64 / 1440.0)
                    .sin()
                    .max(0.0)
                * if t.day_of_week().is_weekend() {
                    0.0
                } else {
                    1.0
                }
        });
        assert!(!is_stable(&s, &cfg()));
        assert!(
            !has_daily_pattern(&s, &cfg()),
            "weekend boundary breaks daily"
        );
        assert!(has_weekly_pattern(&s, &cfg()));
        assert_eq!(classify_series(&s, &cfg()), ServerClass::WeeklyPattern);
    }

    #[test]
    fn chaos_is_no_pattern() {
        // Deterministic but aperiodic: large swings keyed to a hash of the
        // absolute 3-hour block index.
        let s = series_of_days(15, |t| {
            let block = t.minutes() / 180;
            ((block.wrapping_mul(2654435761) % 97) as f64).abs()
        });
        assert_eq!(classify_series(&s, &cfg()), ServerClass::NoPattern);
    }

    #[test]
    fn too_short_series_has_no_pattern() {
        let one_day = series_of_days(1, |_| {
            // Varying enough to not be stable.
            0.0
        });
        // One flat day IS stable; make it unstable but too short for daily.
        let swingy = TimeSeries::from_fn(Timestamp::from_days(1000), 5, 288, |t| {
            (t.minute_of_day() % 100) as f64
        })
        .unwrap();
        assert!(!has_daily_pattern(&swingy, &cfg()));
        assert!(!has_weekly_pattern(&swingy, &cfg()));
        assert!(is_stable(&one_day, &cfg()));
    }

    #[test]
    fn empty_series_is_nothing() {
        let empty = TimeSeries::empty(Timestamp::EPOCH, 5).unwrap();
        assert!(!is_stable(&empty, &cfg()));
        assert_eq!(classify_series(&empty, &cfg()), ServerClass::NoPattern);
    }

    #[test]
    fn fleet_report_percentages() {
        use seagull_telemetry::fleet::{FleetGenerator, FleetSpec};
        let mut spec = FleetSpec::small_region(31);
        spec.regions[0].servers = 400;
        let start = spec.start_day;
        let fleet = FleetGenerator::new(spec).generate_weeks(4);
        let report = classify_fleet_with(&fleet, start + 28, &cfg());
        assert_eq!(report.total(), 400);
        // The generated mix should be recovered approximately (Figure 3).
        let short = report.percentage(ServerClass::ShortLived);
        assert!((short - 42.1).abs() < 8.0, "short-lived {short}%");
        let stable = report.percentage(ServerClass::Stable);
        assert!((stable - 53.5).abs() < 8.0, "stable {stable}%");
        let total_pct: f64 = [
            ServerClass::ShortLived,
            ServerClass::Stable,
            ServerClass::DailyPattern,
            ServerClass::WeeklyPattern,
            ServerClass::NoPattern,
        ]
        .iter()
        .map(|c| report.percentage(*c))
        .sum();
        assert!((total_pct - 100.0).abs() < 1e-9, "partition sums to 100");
        assert!((report.long_lived_percentage() - (100.0 - short)).abs() < 1e-9);
    }

    #[test]
    fn labels() {
        assert_eq!(ServerClass::NoPattern.label(), "no-pattern");
        assert_eq!(ServerClass::ShortLived.label(), "short-lived");
    }
}
