//! The Data Validation module.
//!
//! "Since data validation is a well-studied topic, we implemented existing
//! rules such as detection of schema and bound anomalies" (Section 2.2), and
//! from Section 2.4: "we automatically deduce schema and other data
//! properties (e.g., min and max values of numeric attribute values) from the
//! input data. The schema and data properties are stored in a file. After the
//! file has been verified by a domain expert, it is used to detect schema and
//! bound anomalies."
//!
//! [`DataProfile::deduce`] is that deduction step; [`validate_batch`] applies
//! a (verified) profile to fresh input and reports anomalies, which the
//! pipeline converts into incidents.

use seagull_telemetry::columnar::ColumnarBatch;
use seagull_telemetry::extract::{ExtractedServer, RegionWeekBatch};
use seagull_telemetry::record::RecordBatch;
use serde::{Deserialize, Serialize};

/// Deduced (and expert-verified) data properties.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataProfile {
    /// Inclusive load bounds; CPU percentages are `[0, 100]` but the profile
    /// is deduced, not assumed.
    pub min_load: f64,
    /// Upper inclusive load bound.
    pub max_load: f64,
    /// Expected grid step in minutes.
    pub grid_min: u32,
    /// Maximum tolerated fraction of missing buckets per server before an
    /// anomaly fires.
    pub max_missing_fraction: f64,
    /// Slack added to deduced bounds when validating fresh data, as a
    /// fraction of the deduced range (new weeks legitimately exceed old
    /// extremes slightly).
    pub bound_slack: f64,
}

impl DataProfile {
    /// Deduces a profile from a reference batch (Section 2.4's "automatically
    /// deduce ... from the input data"). The result is meant to be reviewed
    /// before use; [`DataProfile::standard`] is the reviewed production
    /// profile.
    pub fn deduce(batch: &RecordBatch, grid_min: u32) -> DataProfile {
        let mut min_load = f64::INFINITY;
        let mut max_load = f64::NEG_INFINITY;
        for r in &batch.records {
            if r.avg_cpu.is_finite() {
                min_load = min_load.min(r.avg_cpu);
                max_load = max_load.max(r.avg_cpu);
            }
        }
        if !min_load.is_finite() {
            min_load = 0.0;
            max_load = 100.0;
        }
        DataProfile {
            min_load,
            max_load,
            grid_min,
            max_missing_fraction: 0.25,
            bound_slack: 0.05,
        }
    }

    /// The expert-verified profile used in production: loads are CPU
    /// percentages.
    pub fn standard(grid_min: u32) -> DataProfile {
        DataProfile {
            min_load: 0.0,
            max_load: 100.0,
            grid_min,
            max_missing_fraction: 0.25,
            bound_slack: 0.0,
        }
    }

    fn lower(&self) -> f64 {
        self.min_load - self.bound_slack * (self.max_load - self.min_load)
    }

    fn upper(&self) -> f64 {
        self.max_load + self.bound_slack * (self.max_load - self.min_load)
    }
}

/// One detected anomaly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Anomaly {
    /// The batch contained no rows at all.
    EmptyInput,
    /// A load value outside the (slack-widened) deduced bounds.
    BoundViolation {
        /// Offending server.
        server_id: u64,
        /// Offending row's timestamp, minutes.
        timestamp_min: i64,
        /// The out-of-bounds load value.
        value: f64,
    },
    /// A non-finite load value.
    NonFiniteValue {
        /// Offending server.
        server_id: u64,
        /// Offending row's timestamp, minutes.
        timestamp_min: i64,
    },
    /// A row off the expected grid.
    OffGridTimestamp {
        /// Offending server.
        server_id: u64,
        /// Offending row's timestamp, minutes.
        timestamp_min: i64,
    },
    /// Two rows for the same (server, timestamp).
    DuplicateRow {
        /// Offending server.
        server_id: u64,
        /// Duplicated timestamp, minutes.
        timestamp_min: i64,
    },
    /// A default backup window with non-positive length.
    InvalidBackupWindow {
        /// Offending server.
        server_id: u64,
    },
    /// A server whose missing-bucket fraction exceeds the profile threshold.
    ExcessiveMissingData {
        /// Offending server.
        server_id: u64,
        /// Observed missing-bucket fraction.
        fraction: f64,
    },
}

impl Anomaly {
    /// True for anomalies that should block the pipeline rather than just
    /// alert (empty input means nothing downstream can run).
    pub fn is_blocking(&self) -> bool {
        matches!(self, Anomaly::EmptyInput)
    }
}

/// Validation output.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ValidationReport {
    /// Every anomaly detected in the batch.
    pub anomalies: Vec<Anomaly>,
    /// Rows inspected.
    pub rows: usize,
    /// Distinct servers seen.
    pub servers: usize,
}

impl ValidationReport {
    /// True when no anomaly at all was found.
    pub fn is_clean(&self) -> bool {
        self.anomalies.is_empty()
    }

    /// True when a blocking anomaly was found.
    pub fn is_blocked(&self) -> bool {
        self.anomalies.iter().any(Anomaly::is_blocking)
    }
}

/// Validates a raw batch against a profile: bounds, grid, duplicates, backup
/// windows. Reported anomalies are capped at `max_reports` per kind so a
/// systematically broken file cannot flood the incident store.
pub fn validate_batch(
    batch: &RecordBatch,
    profile: &DataProfile,
    max_reports: usize,
) -> ValidationReport {
    let mut report = ValidationReport {
        rows: batch.len(),
        ..ValidationReport::default()
    };
    if batch.is_empty() {
        report.anomalies.push(Anomaly::EmptyInput);
        return report;
    }
    let mut bound_hits = 0usize;
    let mut grid_hits = 0usize;
    let mut dup_hits = 0usize;
    let mut window_hits = 0usize;
    let mut nonfinite_hits = 0usize;
    let mut seen: std::collections::HashSet<(u64, i64)> = std::collections::HashSet::new();
    let mut servers: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let (lo, hi) = (profile.lower(), profile.upper());
    for r in &batch.records {
        servers.insert(r.server_id.0);
        if !r.avg_cpu.is_finite() {
            nonfinite_hits += 1;
            if nonfinite_hits <= max_reports {
                report.anomalies.push(Anomaly::NonFiniteValue {
                    server_id: r.server_id.0,
                    timestamp_min: r.timestamp_min,
                });
            }
        } else if r.avg_cpu < lo || r.avg_cpu > hi {
            bound_hits += 1;
            if bound_hits <= max_reports {
                report.anomalies.push(Anomaly::BoundViolation {
                    server_id: r.server_id.0,
                    timestamp_min: r.timestamp_min,
                    value: r.avg_cpu,
                });
            }
        }
        if r.timestamp_min.rem_euclid(profile.grid_min as i64) != 0 {
            grid_hits += 1;
            if grid_hits <= max_reports {
                report.anomalies.push(Anomaly::OffGridTimestamp {
                    server_id: r.server_id.0,
                    timestamp_min: r.timestamp_min,
                });
            }
        }
        if !seen.insert((r.server_id.0, r.timestamp_min)) {
            dup_hits += 1;
            if dup_hits <= max_reports {
                report.anomalies.push(Anomaly::DuplicateRow {
                    server_id: r.server_id.0,
                    timestamp_min: r.timestamp_min,
                });
            }
        }
        if r.default_backup_end <= r.default_backup_start {
            window_hits += 1;
            if window_hits <= max_reports {
                report.anomalies.push(Anomaly::InvalidBackupWindow {
                    server_id: r.server_id.0,
                });
            }
        }
    }
    report.servers = servers.len();
    report
}

/// Validates a decoded columnar batch against a profile.
///
/// Semantically the twin of [`validate_batch`]: every present (non-NaN)
/// sample is one "row" and gets the same bound and finiteness checks, so a
/// clean region-week produces an identical report whichever format it was
/// stored in. Structural properties the columnar decoder already enforces
/// (grid alignment, no duplicate buckets) need no re-check; NaN buckets are
/// *missing* — counted by [`validate_servers`] downstream — not anomalies.
/// One difference on dirty data: an invalid default backup window is reported
/// once per server block, not once per row, because columnar stores the
/// window per server.
pub fn validate_columnar(
    batch: &ColumnarBatch,
    profile: &DataProfile,
    max_reports: usize,
) -> ValidationReport {
    let mut report = ValidationReport::default();
    if batch.blocks().is_empty() {
        report.anomalies.push(Anomaly::EmptyInput);
        return report;
    }
    let mut bound_hits = 0usize;
    let mut window_hits = 0usize;
    let mut nonfinite_hits = 0usize;
    let mut servers: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let (lo, hi) = (profile.lower(), profile.upper());
    for block in batch.blocks() {
        servers.insert(block.server_id.0);
        if block.default_backup_end <= block.default_backup_start {
            window_hits += 1;
            if window_hits <= max_reports {
                report.anomalies.push(Anomaly::InvalidBackupWindow {
                    server_id: block.server_id.0,
                });
            }
        }
        for (i, &v) in batch.block_values(block).iter().enumerate() {
            if v.is_nan() {
                continue;
            }
            report.rows += 1;
            if !v.is_finite() {
                nonfinite_hits += 1;
                if nonfinite_hits <= max_reports {
                    report.anomalies.push(Anomaly::NonFiniteValue {
                        server_id: block.server_id.0,
                        timestamp_min: block.timestamp_at(i),
                    });
                }
            } else if v < lo || v > hi {
                bound_hits += 1;
                if bound_hits <= max_reports {
                    report.anomalies.push(Anomaly::BoundViolation {
                        server_id: block.server_id.0,
                        timestamp_min: block.timestamp_at(i),
                        value: v,
                    });
                }
            }
        }
    }
    report.servers = servers.len();
    report
}

/// Validates a region-week batch in whichever representation it was decoded
/// as, dispatching to [`validate_batch`] or [`validate_columnar`].
pub fn validate_region_week(
    batch: &RegionWeekBatch,
    profile: &DataProfile,
    max_reports: usize,
) -> ValidationReport {
    match batch {
        RegionWeekBatch::Csv(b) => validate_batch(b, profile, max_reports),
        RegionWeekBatch::Columnar(b) => validate_columnar(b, profile, max_reports),
    }
}

/// Validates one reassembled server series for missing-data density: the
/// per-server half of [`validate_servers`], called directly by the dataflow
/// pipeline's fused operators (the batch-level `EmptyInput` check stays a
/// serial pre-fan-out concern because blocking must be decided before any
/// server starts flowing).
pub fn validate_server(s: &ExtractedServer, profile: &DataProfile) -> Option<Anomaly> {
    if s.series.is_empty() {
        return None;
    }
    let fraction = s.series.missing_count() as f64 / s.series.len() as f64;
    (fraction > profile.max_missing_fraction).then_some(Anomaly::ExcessiveMissingData {
        server_id: s.id.0,
        fraction,
    })
}

/// Validates reassembled per-server series for missing-data density.
pub fn validate_servers(servers: &[ExtractedServer], profile: &DataProfile) -> ValidationReport {
    let mut report = ValidationReport {
        servers: servers.len(),
        ..ValidationReport::default()
    };
    if servers.is_empty() {
        report.anomalies.push(Anomaly::EmptyInput);
        return report;
    }
    for s in servers {
        report.rows += s.series.len();
        report.anomalies.extend(validate_server(s, profile));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use seagull_telemetry::record::LoadRecord;
    use seagull_telemetry::server::ServerId;
    use seagull_timeseries::{TimeSeries, Timestamp};

    fn rec(server: u64, ts: i64, cpu: f64) -> LoadRecord {
        LoadRecord {
            server_id: ServerId(server),
            timestamp_min: ts,
            avg_cpu: cpu,
            default_backup_start: 0,
            default_backup_end: 60,
        }
    }

    #[test]
    fn clean_batch_passes() {
        let batch = RecordBatch::new(vec![rec(1, 0, 10.0), rec(1, 5, 20.0), rec(2, 0, 30.0)]);
        let report = validate_batch(&batch, &DataProfile::standard(5), 10);
        assert!(report.is_clean());
        assert_eq!(report.rows, 3);
        assert_eq!(report.servers, 2);
    }

    #[test]
    fn empty_input_blocks() {
        let report = validate_batch(&RecordBatch::default(), &DataProfile::standard(5), 10);
        assert!(report.is_blocked());
        assert_eq!(report.anomalies, vec![Anomaly::EmptyInput]);
    }

    #[test]
    fn bound_violations_detected() {
        let batch = RecordBatch::new(vec![rec(1, 0, 120.0), rec(1, 5, -3.0)]);
        let report = validate_batch(&batch, &DataProfile::standard(5), 10);
        assert_eq!(
            report
                .anomalies
                .iter()
                .filter(|a| matches!(a, Anomaly::BoundViolation { .. }))
                .count(),
            2
        );
        assert!(!report.is_blocked());
    }

    #[test]
    fn nonfinite_detected_separately() {
        let batch = RecordBatch::new(vec![rec(1, 0, f64::NAN)]);
        let report = validate_batch(&batch, &DataProfile::standard(5), 10);
        assert!(matches!(
            report.anomalies[0],
            Anomaly::NonFiniteValue { server_id: 1, .. }
        ));
    }

    #[test]
    fn grid_duplicates_and_windows() {
        let mut bad_window = rec(3, 10, 1.0);
        bad_window.default_backup_end = bad_window.default_backup_start;
        let batch = RecordBatch::new(vec![
            rec(1, 3, 10.0), // off grid
            rec(2, 5, 10.0),
            rec(2, 5, 11.0), // duplicate
            bad_window,
        ]);
        let report = validate_batch(&batch, &DataProfile::standard(5), 10);
        assert!(report
            .anomalies
            .iter()
            .any(|a| matches!(a, Anomaly::OffGridTimestamp { server_id: 1, .. })));
        assert!(report
            .anomalies
            .iter()
            .any(|a| matches!(a, Anomaly::DuplicateRow { server_id: 2, .. })));
        assert!(report
            .anomalies
            .iter()
            .any(|a| matches!(a, Anomaly::InvalidBackupWindow { server_id: 3 })));
    }

    #[test]
    fn report_flood_is_capped() {
        let records: Vec<LoadRecord> = (0..100).map(|i| rec(1, i * 5, 500.0)).collect();
        let report = validate_batch(&RecordBatch::new(records), &DataProfile::standard(5), 3);
        assert_eq!(report.anomalies.len(), 3);
    }

    #[test]
    fn deduced_profile_brackets_data() {
        let batch = RecordBatch::new(vec![rec(1, 0, 5.0), rec(1, 5, 95.0)]);
        let p = DataProfile::deduce(&batch, 5);
        assert_eq!(p.min_load, 5.0);
        assert_eq!(p.max_load, 95.0);
        // Slack admits slightly-out-of-range fresh data.
        let fresh = RecordBatch::new(vec![rec(1, 0, 97.0)]);
        assert!(validate_batch(&fresh, &p, 10).is_clean());
        let way_out = RecordBatch::new(vec![rec(1, 0, 120.0)]);
        assert!(!validate_batch(&way_out, &p, 10).is_clean());
    }

    #[test]
    fn deduce_from_empty_defaults() {
        let p = DataProfile::deduce(&RecordBatch::default(), 5);
        assert_eq!((p.min_load, p.max_load), (0.0, 100.0));
    }

    #[test]
    fn columnar_validation_matches_csv_on_clean_data() {
        let batch = RecordBatch::new(vec![rec(1, 0, 10.0), rec(1, 5, 20.0), rec(2, 0, 30.0)]);
        let profile = DataProfile::standard(5);
        let csv_report = validate_batch(&batch, &profile, 10);
        let col_report = validate_columnar(&ColumnarBatch::from_records(&batch, 5), &profile, 10);
        assert_eq!(csv_report, col_report);
        assert!(col_report.is_clean());
        assert_eq!(col_report.rows, 3);
        assert_eq!(col_report.servers, 2);
    }

    #[test]
    fn columnar_bound_violations_detected() {
        let batch = RecordBatch::new(vec![rec(1, 0, 120.0), rec(1, 5, 50.0), rec(1, 10, -3.0)]);
        let report = validate_columnar(
            &ColumnarBatch::from_records(&batch, 5),
            &DataProfile::standard(5),
            10,
        );
        assert_eq!(
            report
                .anomalies
                .iter()
                .filter(|a| matches!(a, Anomaly::BoundViolation { .. }))
                .count(),
            2
        );
        assert_eq!(report.rows, 3);
    }

    #[test]
    fn columnar_missing_buckets_are_not_anomalies() {
        // Rows at 0 and 10 leave a NaN bucket at 5 in the columnar column.
        let batch = RecordBatch::new(vec![rec(1, 0, 10.0), rec(1, 10, 20.0)]);
        let col = ColumnarBatch::from_records(&batch, 5);
        assert_eq!(col.total_points(), 3);
        let report = validate_columnar(&col, &DataProfile::standard(5), 10);
        assert!(report.is_clean());
        assert_eq!(report.rows, 2);
    }

    #[test]
    fn columnar_invalid_window_reported_per_server() {
        let mut bad = rec(3, 0, 1.0);
        bad.default_backup_end = bad.default_backup_start;
        let mut bad2 = rec(3, 5, 2.0);
        bad2.default_backup_end = bad2.default_backup_start;
        let batch = RecordBatch::new(vec![bad, bad2]);
        let report = validate_columnar(
            &ColumnarBatch::from_records(&batch, 5),
            &DataProfile::standard(5),
            10,
        );
        // One block, one window anomaly — not one per row.
        assert_eq!(
            report
                .anomalies
                .iter()
                .filter(|a| matches!(a, Anomaly::InvalidBackupWindow { server_id: 3 }))
                .count(),
            1
        );
    }

    #[test]
    fn columnar_empty_blocks() {
        let report = validate_columnar(
            &ColumnarBatch::from_records(&RecordBatch::default(), 5),
            &DataProfile::standard(5),
            10,
        );
        assert!(report.is_blocked());
    }

    #[test]
    fn region_week_dispatch() {
        let batch = RecordBatch::new(vec![rec(1, 0, 10.0)]);
        let profile = DataProfile::standard(5);
        let via_csv = validate_region_week(
            &RegionWeekBatch::decode(&batch.to_csv()).unwrap(),
            &profile,
            10,
        );
        let via_col = validate_region_week(
            &RegionWeekBatch::decode(&ColumnarBatch::from_records(&batch, 5).encode()).unwrap(),
            &profile,
            10,
        );
        assert_eq!(via_csv, via_col);
        assert!(via_csv.is_clean());
    }

    #[test]
    fn missing_data_per_server() {
        let dense = ExtractedServer {
            id: ServerId(1),
            series: TimeSeries::new(Timestamp::EPOCH, 5, vec![1.0, 2.0, 3.0, 4.0]).unwrap(),
            default_backup_start: Timestamp::EPOCH,
            default_backup_end: Timestamp::EPOCH + 60,
        };
        let sparse = ExtractedServer {
            id: ServerId(2),
            series: TimeSeries::new(Timestamp::EPOCH, 5, vec![1.0, f64::NAN, f64::NAN, f64::NAN])
                .unwrap(),
            default_backup_start: Timestamp::EPOCH,
            default_backup_end: Timestamp::EPOCH + 60,
        };
        let report = validate_servers(&[dense, sparse], &DataProfile::standard(5));
        assert_eq!(report.anomalies.len(), 1);
        assert!(matches!(
            report.anomalies[0],
            Anomaly::ExcessiveMissingData { server_id: 2, .. }
        ));
        let empty = validate_servers(&[], &DataProfile::standard(5));
        assert!(empty.is_blocked());
    }
}
