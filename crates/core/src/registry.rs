//! Model deployment, version tracking, and last-known-good fallback.
//!
//! The AML pipeline "trains a model, deploys the model, and makes it
//! accessible through a REST endpoint. The pipeline tracks the versions of
//! deployed models" and "SEAGULL continually re-evaluates accuracy of
//! predictions, fallback to previously known good models and triggers alerts
//! as appropriate" (Sections 1 and 2.2).
//!
//! [`ModelRegistry`] is the version/metadata tracker; [`EndpointSet`] is the
//! REST-endpoint substitute: an in-process map from region to the deployed
//! forecaster, invoked exactly like a scoring endpoint (history in,
//! prediction out).

use crate::incident::{IncidentManager, Severity};
use parking_lot::RwLock;
use seagull_forecast::{ForecastError, Forecaster};
use seagull_timeseries::TimeSeries;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Use-case accuracy of one model version, as recorded by the Accuracy
/// Evaluation module (all percentages, 0–100).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelAccuracy {
    /// Correctly chosen LL windows (Definition 8).
    pub window_correct_pct: f64,
    /// Accurately predicted load inside LL windows (Definition 2).
    pub load_accurate_pct: f64,
    /// Predictable servers (Definition 9).
    pub predictable_pct: f64,
}

impl ModelAccuracy {
    /// The scalar the fallback rule compares: the minimum of the two
    /// per-window metrics (both must stay healthy).
    pub fn health(&self) -> f64 {
        self.window_correct_pct.min(self.load_accurate_pct)
    }
}

/// Deployment state of a version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VersionState {
    /// Currently serving its region.
    Deployed,
    /// Superseded by a newer version.
    Retired,
    /// Reverted after a bad deploy.
    RolledBack,
}

/// One tracked model version.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelVersion {
    /// Region the version serves.
    pub region: String,
    /// Monotonically increasing version number within the region.
    pub version: u64,
    /// Forecaster family the version was trained with.
    pub model_name: String,
    /// Week (first day index) whose data trained this version.
    pub trained_week: i64,
    /// Current deployment state.
    pub state: VersionState,
    /// Evaluation results attached once the next week scores it.
    pub accuracy: Option<ModelAccuracy>,
}

#[derive(Default)]
struct RegistryInner {
    /// Version history per region, oldest first.
    versions: HashMap<String, Vec<ModelVersion>>,
}

/// Version tracker with last-known-good fallback.
#[derive(Clone, Default)]
pub struct ModelRegistry {
    inner: Arc<RwLock<RegistryInner>>,
}

impl ModelRegistry {
    /// Creates an empty registry.
    pub fn new() -> ModelRegistry {
        ModelRegistry::default()
    }

    /// Registers and deploys a new version for a region; the previous
    /// deployed version is retired. Returns the new version number.
    pub fn deploy(&self, region: &str, model_name: &str, trained_week: i64) -> u64 {
        let mut inner = self.inner.write();
        let history = inner.versions.entry(region.to_string()).or_default();
        for v in history.iter_mut() {
            if v.state == VersionState::Deployed {
                v.state = VersionState::Retired;
            }
        }
        let version = history.last().map_or(1, |v| v.version + 1);
        history.push(ModelVersion {
            region: region.to_string(),
            version,
            model_name: model_name.to_string(),
            trained_week,
            state: VersionState::Deployed,
            accuracy: None,
        });
        version
    }

    /// Records measured accuracy for a version.
    pub fn record_accuracy(&self, region: &str, version: u64, accuracy: ModelAccuracy) -> bool {
        let mut inner = self.inner.write();
        let Some(history) = inner.versions.get_mut(region) else {
            return false;
        };
        match history.iter_mut().find(|v| v.version == version) {
            Some(v) => {
                v.accuracy = Some(accuracy);
                true
            }
            None => false,
        }
    }

    /// The currently deployed version for a region.
    pub fn deployed(&self, region: &str) -> Option<ModelVersion> {
        self.inner
            .read()
            .versions
            .get(region)?
            .iter()
            .rev()
            .find(|v| v.state == VersionState::Deployed)
            .cloned()
    }

    /// Full version history for a region, oldest first.
    pub fn history(&self, region: &str) -> Vec<ModelVersion> {
        self.inner
            .read()
            .versions
            .get(region)
            .cloned()
            .unwrap_or_default()
    }

    /// The fallback rule: if the deployed version's measured health dropped
    /// more than `tolerance` percentage points below the best previously
    /// measured version, roll back to that version and raise a critical
    /// incident. Returns the version rolled back to, if any.
    pub fn maybe_fallback(
        &self,
        region: &str,
        tolerance: f64,
        incidents: &IncidentManager,
    ) -> Option<u64> {
        let mut inner = self.inner.write();
        let history = inner.versions.get_mut(region)?;
        let deployed_idx = history
            .iter()
            .rposition(|v| v.state == VersionState::Deployed)?;
        let deployed_health = history[deployed_idx].accuracy?.health();
        // Last known good: the best-scoring earlier version.
        let (good_idx, good_health) = history[..deployed_idx]
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.accuracy.map(|a| (i, a.health())))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite health"))?;
        if deployed_health >= good_health - tolerance {
            return None;
        }
        let bad_version = history[deployed_idx].version;
        history[deployed_idx].state = VersionState::RolledBack;
        history[good_idx].state = VersionState::Deployed;
        let good_version = history[good_idx].version;
        incidents.raise(
            Severity::Critical,
            "model-registry",
            region,
            format!(
                "accuracy regression: v{bad_version} health {deployed_health:.1} < \
                 last-known-good v{good_version} health {good_health:.1} - {tolerance:.1}; \
                 rolled back"
            ),
        );
        Some(good_version)
    }
}

/// The REST-endpoint substitute: deployed forecasters invocable per region.
#[derive(Clone, Default)]
pub struct EndpointSet {
    endpoints: Arc<RwLock<HashMap<String, Arc<dyn Forecaster>>>>,
}

impl EndpointSet {
    /// Creates an empty endpoint set.
    pub fn new() -> EndpointSet {
        EndpointSet::default()
    }

    /// Publishes (or replaces) the endpoint for a region.
    pub fn publish(&self, region: &str, model: Arc<dyn Forecaster>) {
        self.endpoints.write().insert(region.to_string(), model);
    }

    /// The deployed model for a region.
    pub fn resolve(&self, region: &str) -> Option<Arc<dyn Forecaster>> {
        self.endpoints.read().get(region).cloned()
    }

    /// Scores a request against a region's endpoint, like a REST call:
    /// history in, `horizon` predicted points out.
    pub fn invoke(
        &self,
        region: &str,
        history: &TimeSeries,
        horizon: usize,
    ) -> Result<TimeSeries, ForecastError> {
        let model = self.resolve(region).ok_or_else(|| {
            ForecastError::Numerical(format!("no endpoint deployed for region {region}"))
        })?;
        model.fit_predict(history, horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seagull_forecast::PersistentForecast;
    use seagull_timeseries::Timestamp;

    fn acc(w: f64, l: f64) -> ModelAccuracy {
        ModelAccuracy {
            window_correct_pct: w,
            load_accurate_pct: l,
            predictable_pct: 75.0,
        }
    }

    #[test]
    fn deploy_versions_monotonically() {
        let reg = ModelRegistry::new();
        assert_eq!(reg.deploy("west", "persistent-prev-day", 100), 1);
        assert_eq!(reg.deploy("west", "persistent-prev-day", 107), 2);
        assert_eq!(reg.deploy("east", "ssa", 100), 1);
        let deployed = reg.deployed("west").unwrap();
        assert_eq!(deployed.version, 2);
        let history = reg.history("west");
        assert_eq!(history[0].state, VersionState::Retired);
        assert_eq!(history[1].state, VersionState::Deployed);
    }

    #[test]
    fn record_accuracy_targets_version() {
        let reg = ModelRegistry::new();
        let v = reg.deploy("west", "m", 100);
        assert!(reg.record_accuracy("west", v, acc(99.0, 96.0)));
        assert!(!reg.record_accuracy("west", 999, acc(1.0, 1.0)));
        assert!(!reg.record_accuracy("ghost", v, acc(1.0, 1.0)));
        assert_eq!(
            reg.deployed("west").unwrap().accuracy.unwrap().health(),
            96.0
        );
    }

    #[test]
    fn fallback_on_regression() {
        let reg = ModelRegistry::new();
        let incidents = IncidentManager::new();
        let v1 = reg.deploy("west", "m", 100);
        reg.record_accuracy("west", v1, acc(99.0, 96.0));
        let v2 = reg.deploy("west", "m", 107);
        reg.record_accuracy("west", v2, acc(60.0, 55.0));
        let rolled = reg.maybe_fallback("west", 5.0, &incidents);
        assert_eq!(rolled, Some(v1));
        assert_eq!(reg.deployed("west").unwrap().version, v1);
        assert_eq!(reg.history("west")[1].state, VersionState::RolledBack);
        assert_eq!(incidents.open_count(Severity::Critical), 1);
    }

    #[test]
    fn no_fallback_within_tolerance() {
        let reg = ModelRegistry::new();
        let incidents = IncidentManager::new();
        let v1 = reg.deploy("west", "m", 100);
        reg.record_accuracy("west", v1, acc(99.0, 96.0));
        let v2 = reg.deploy("west", "m", 107);
        reg.record_accuracy("west", v2, acc(97.0, 93.0));
        assert_eq!(reg.maybe_fallback("west", 5.0, &incidents), None);
        assert_eq!(reg.deployed("west").unwrap().version, v2);
        assert!(incidents.all().is_empty());
    }

    #[test]
    fn fallback_needs_measured_history() {
        let reg = ModelRegistry::new();
        let incidents = IncidentManager::new();
        let v1 = reg.deploy("west", "m", 100);
        reg.record_accuracy("west", v1, acc(10.0, 10.0));
        // Only one version: nothing to fall back to.
        assert_eq!(reg.maybe_fallback("west", 5.0, &incidents), None);
    }

    #[test]
    fn endpoints_invoke_deployed_model() {
        let eps = EndpointSet::new();
        assert!(eps.resolve("west").is_none());
        eps.publish("west", Arc::new(PersistentForecast::previous_day()));
        let hist =
            seagull_timeseries::TimeSeries::from_fn(Timestamp::from_days(10), 5, 2 * 288, |t| {
                t.day_index() as f64
            })
            .unwrap();
        let pred = eps.invoke("west", &hist, 288).unwrap();
        assert_eq!(pred.len(), 288);
        assert!(pred.values().iter().all(|&v| v == 11.0));
        assert!(eps.invoke("ghost", &hist, 10).is_err());
    }
}
