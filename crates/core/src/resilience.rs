//! Resilience primitives: retry with backoff, and a per-region circuit
//! breaker.
//!
//! The paper's robustness claim (Section 1) is that Seagull "continually
//! re-evaluates accuracy of predictions, fallback to previously known good
//! models and triggers alerts as appropriate". The registry implements the
//! model-fallback half; this module supplies the infrastructure half that
//! production incidents (Section 2.2) actually exercise:
//!
//! * [`RetryPolicy`] — exponential backoff with deterministic seeded jitter,
//!   a max-attempt count, and a per-op backoff budget. Delays are *virtual*:
//!   the pipeline runs on a simulated day-granular clock, so the policy
//!   accounts the backoff it would have slept instead of sleeping.
//! * [`CircuitBreaker`] — per-key (region) closed → open → half-open state
//!   machine. A consecutive-failure threshold trips it (raising a `Critical`
//!   incident); after a cooldown measured in pipeline clock ticks one probe
//!   run is let through half-open, and success closes the circuit (resolving
//!   the trip incident and raising an `Info`).
//!
//! Both are deterministic: a fixed seed reproduces the exact backoff
//! schedule, which is what makes chaos runs replayable.

use crate::incident::{IncidentManager, Severity};
use parking_lot::RwLock;
use seagull_obs::Registry;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

pub use seagull_telemetry::chaos::{DetRng, InjectedCrash};

/// Mixes a stage identity into the policy seed so each (stage, region, tick)
/// gets an independent but reproducible jitter stream. FNV-1a over the
/// identifying bytes.
pub fn stage_seed(base: u64, stage: &str, region: &str, tick: i64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ base;
    let tick_bytes = tick.to_le_bytes();
    for b in stage
        .as_bytes()
        .iter()
        .chain(region.as_bytes())
        .chain(&tick_bytes)
    {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// An error from one stage attempt, classified for the retry loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageError {
    /// Whether a retry could plausibly succeed (timeouts, torn reads,
    /// outages) — permanent errors (missing data, schema violations) fail
    /// immediately.
    pub transient: bool,
    /// Human-readable cause.
    pub message: String,
}

impl StageError {
    /// A retryable error.
    pub fn transient(message: impl Into<String>) -> StageError {
        StageError {
            transient: true,
            message: message.into(),
        }
    }

    /// A non-retryable error.
    pub fn permanent(message: impl Into<String>) -> StageError {
        StageError {
            transient: false,
            message: message.into(),
        }
    }

    /// Classifies an `io::Error`: `NotFound` is permanent (absent data will
    /// not appear on retry); everything else is treated as transient
    /// infrastructure trouble.
    pub fn from_io(e: &std::io::Error) -> StageError {
        if e.kind() == std::io::ErrorKind::NotFound {
            StageError::permanent(e.to_string())
        } else {
            StageError::transient(e.to_string())
        }
    }
}

impl fmt::Display for StageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let class = if self.transient {
            "transient"
        } else {
            "permanent"
        };
        write!(f, "{class}: {}", self.message)
    }
}

impl std::error::Error for StageError {}

/// Exponential-backoff retry policy with deterministic seeded jitter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts (first try included); at least 1.
    pub max_attempts: u32,
    /// Delay before the first retry, milliseconds.
    pub base_delay_ms: u64,
    /// Backoff growth factor per retry (clamped to ≥ 1).
    pub multiplier: f64,
    /// Upper bound on any single delay, milliseconds.
    pub cap_ms: u64,
    /// Fraction of the raw delay that jitter may subtract (0 – 1).
    /// Subtractive jitter keeps every delay ≤ the cap.
    pub jitter_frac: f64,
    /// Total backoff budget per op, milliseconds; retries stop once the
    /// next delay would exceed it. 0 disables the budget.
    pub budget_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            base_delay_ms: 10,
            multiplier: 2.0,
            cap_ms: 1_000,
            jitter_frac: 0.2,
            budget_ms: 30_000,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The un-jittered delay before retry `retry_index` (0-based).
    /// Monotone non-decreasing and bounded by `cap_ms`.
    pub fn raw_delay_ms(&self, retry_index: u32) -> u64 {
        let mult = self.multiplier.max(1.0);
        let cap = self.cap_ms as f64;
        let mut d = (self.base_delay_ms.min(self.cap_ms)) as f64;
        for _ in 0..retry_index {
            d = (d * mult).min(cap);
        }
        d as u64
    }

    /// The jittered delay before retry `retry_index` for a given seed.
    /// Deterministic: the same `(seed, retry_index)` always yields the same
    /// delay, and jitter only subtracts, so the cap still holds.
    pub fn delay_ms(&self, seed: u64, retry_index: u32) -> u64 {
        let raw = self.raw_delay_ms(retry_index);
        let frac = self.jitter_frac.clamp(0.0, 1.0);
        if raw == 0 || frac == 0.0 {
            return raw;
        }
        let mut rng =
            DetRng::new(seed ^ u64::from(retry_index).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let cut = (raw as f64 * frac * rng.next_f64()) as u64;
        raw - cut
    }

    /// The full backoff schedule for a seed (one delay per possible retry).
    pub fn delays_ms(&self, seed: u64) -> Vec<u64> {
        (0..self.max_attempts.saturating_sub(1))
            .map(|i| self.delay_ms(seed, i))
            .collect()
    }

    /// Runs `op` under the policy. The closure receives the 1-based attempt
    /// number. Retries only transient errors, stops at `max_attempts` or
    /// when the backoff budget would be exceeded, and accounts (does not
    /// sleep) the virtual backoff.
    pub fn run<T>(
        &self,
        seed: u64,
        mut op: impl FnMut(u32) -> Result<T, StageError>,
    ) -> RetryResult<T> {
        let max = self.max_attempts.max(1);
        let mut attempts = 0u32;
        let mut backoff_ms = 0u64;
        loop {
            attempts += 1;
            match op(attempts) {
                Ok(value) => {
                    return RetryResult {
                        outcome: Ok(value),
                        attempts,
                        backoff_ms,
                    }
                }
                Err(e) => {
                    let next_delay = self.delay_ms(seed, attempts - 1);
                    let over_budget =
                        self.budget_ms > 0 && backoff_ms + next_delay > self.budget_ms;
                    if !e.transient || attempts >= max || over_budget {
                        return RetryResult {
                            outcome: Err(e),
                            attempts,
                            backoff_ms,
                        };
                    }
                    backoff_ms += next_delay;
                }
            }
        }
    }

    /// [`RetryPolicy::run`] plus metrics: records attempt/retry counters and
    /// the virtual-backoff histogram into `registry`, labelled by
    /// `(region, stage)`. All of it is deterministic for a fixed seed, so
    /// the series are stable-exportable.
    pub fn run_observed<T>(
        &self,
        seed: u64,
        registry: &Registry,
        stage: &str,
        region: &str,
        op: impl FnMut(u32) -> Result<T, StageError>,
    ) -> RetryResult<T> {
        let result = self.run(seed, op);
        let labels = [("region", region), ("stage", stage)];
        registry
            .counter("seagull_retry_attempts_total", &labels)
            .add(u64::from(result.attempts));
        if result.retries() > 0 {
            registry
                .counter("seagull_retries_total", &labels)
                .add(u64::from(result.retries()));
            registry
                .histogram("seagull_retry_backoff_ms", &labels)
                .observe(result.backoff_ms as f64);
        }
        if result.outcome.is_err() {
            registry
                .counter("seagull_retry_exhausted_total", &labels)
                .inc();
        }
        result
    }
}

/// Outcome of a retried operation, with attempt accounting.
#[derive(Debug)]
pub struct RetryResult<T> {
    /// Final result after all attempts.
    pub outcome: Result<T, StageError>,
    /// Attempts made (≥ 1).
    pub attempts: u32,
    /// Virtual backoff accounted across retries, milliseconds.
    pub backoff_ms: u64,
}

impl<T> RetryResult<T> {
    /// Retries made beyond the first attempt.
    pub fn retries(&self) -> u32 {
        self.attempts.saturating_sub(1)
    }
}

/// Circuit-breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Normal operation.
    Closed,
    /// Tripped: requests are rejected until the cooldown elapses.
    Open,
    /// Cooldown elapsed: one probe request is allowed through.
    HalfOpen,
}

impl BreakerState {
    /// Numeric encoding for the `seagull_breaker_state` gauge:
    /// 0 = closed, 1 = half-open, 2 = open.
    pub fn gauge_value(self) -> f64 {
        match self {
            BreakerState::Closed => 0.0,
            BreakerState::HalfOpen => 1.0,
            BreakerState::Open => 2.0,
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::HalfOpen => 1,
            BreakerState::Open => 2,
        }
    }

    fn from_u8(v: u8) -> BreakerState {
        match v {
            1 => BreakerState::HalfOpen,
            2 => BreakerState::Open,
            _ => BreakerState::Closed,
        }
    }
}

/// A lock-free, read-only view of one key's breaker state.
///
/// High-rate admission checks (the serving read path) cannot afford the
/// breaker's `RwLock` on every request. A probe is a shared atomic cell the
/// breaker updates on every state transition for its key; reading it is a
/// single `Acquire` load. Obtain one per key up front (it is cheap to clone)
/// and consult it per request.
///
/// A probe observes transitions made through *any* clone of the breaker it
/// came from; it never mutates state and never consumes half-open probes.
#[derive(Clone)]
pub struct BreakerProbe {
    cell: Arc<AtomicU8>,
}

impl BreakerProbe {
    /// The key's current state (closed if the key has never transitioned).
    pub fn state(&self) -> BreakerState {
        BreakerState::from_u8(self.cell.load(Ordering::Acquire))
    }

    /// Whether requests for this key should be shed right now.
    pub fn is_open(&self) -> bool {
        self.state() == BreakerState::Open
    }
}

impl fmt::Debug for BreakerProbe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BreakerProbe")
            .field("state", &self.state())
            .finish()
    }
}

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Consecutive failures that trip a closed breaker.
    pub trip_threshold: u32,
    /// Cooldown before a probe is allowed, in pipeline clock ticks (the
    /// pipeline ticks in day indices, so 14 ≈ two weekly runs skipped).
    pub cooldown_ticks: i64,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            trip_threshold: 3,
            cooldown_ticks: 14,
        }
    }
}

/// Observable per-key breaker status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerSnapshot {
    /// Current breaker state for the key.
    pub state: BreakerState,
    /// Failures since the last success.
    pub consecutive_failures: u32,
    /// Times this key has tripped open.
    pub trips: u32,
}

#[derive(Debug, Clone, Copy)]
struct KeyState {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at_tick: i64,
    trips: u32,
}

impl KeyState {
    fn closed() -> KeyState {
        KeyState {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at_tick: 0,
            trips: 0,
        }
    }
}

/// Per-key (region) circuit breaker.
///
/// The only paths between states are closed → open (threshold reached),
/// open → half-open (cooldown elapsed, checked in [`CircuitBreaker::allow`]),
/// half-open → closed (probe succeeded) and half-open → open (probe failed);
/// an open breaker can never close without passing half-open.
#[derive(Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Arc<RwLock<HashMap<String, KeyState>>>,
    /// Per-key state mirrors for lock-free [`BreakerProbe`] reads. Written
    /// under the `inner` write lock at every transition, so a probe can
    /// never observe a state `inner` has moved past.
    cells: Arc<RwLock<HashMap<String, Arc<AtomicU8>>>>,
}

impl CircuitBreaker {
    /// Creates a breaker where every key starts closed.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            inner: Arc::new(RwLock::new(HashMap::new())),
            cells: Arc::new(RwLock::new(HashMap::new())),
        }
    }

    /// The configured thresholds.
    pub fn config(&self) -> BreakerConfig {
        self.config
    }

    /// A lock-free read-only probe for `key`'s state, for hot read paths
    /// that cannot afford [`CircuitBreaker::state`]'s lock per request.
    /// Does not create breaker state for the key (the key only enters the
    /// state machine when failures or successes are recorded).
    pub fn probe(&self, key: &str) -> BreakerProbe {
        BreakerProbe {
            cell: self.cell(key),
        }
    }

    /// Lock order is `inner` before `cells`, everywhere: transitions hold
    /// the `inner` write guard while mirroring into `cells`, and this
    /// seeding path holds an `inner` read guard across the insert so a
    /// concurrent transition (which would need the write guard) can neither
    /// race the seed stale nor deadlock against it.
    fn cell(&self, key: &str) -> Arc<AtomicU8> {
        if let Some(cell) = self.cells.read().get(key) {
            return Arc::clone(cell);
        }
        let inner = self.inner.read();
        let state = inner.get(key).map_or(BreakerState::Closed, |ks| ks.state);
        let mut cells = self.cells.write();
        Arc::clone(
            cells
                .entry(key.to_string())
                .or_insert_with(|| Arc::new(AtomicU8::new(state.to_u8()))),
        )
    }

    /// Mirrors a transition into the key's probe cell (no-op when nobody
    /// has requested a probe for the key yet — the cell is seeded from
    /// `inner` on first request). Callers hold the `inner` write guard.
    fn sync_cell(&self, key: &str, state: BreakerState) {
        if let Some(cell) = self.cells.read().get(key) {
            cell.store(state.to_u8(), Ordering::Release);
        }
    }

    /// Whether a request for `key` may proceed at `tick`. An open breaker
    /// whose cooldown has elapsed moves to half-open and admits the probe.
    pub fn allow(&self, key: &str, tick: i64) -> bool {
        let mut map = self.inner.write();
        let ks = map.entry(key.to_string()).or_insert_with(KeyState::closed);
        match ks.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if tick - ks.opened_at_tick >= self.config.cooldown_ticks {
                    ks.state = BreakerState::HalfOpen;
                    self.sync_cell(key, BreakerState::HalfOpen);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful run. A half-open probe success closes the
    /// circuit, resolves the breaker's open incidents for the key, and
    /// raises an `Info` recovery incident.
    pub fn record_success(&self, key: &str, tick: i64, incidents: &IncidentManager) {
        let mut map = self.inner.write();
        let ks = map.entry(key.to_string()).or_insert_with(KeyState::closed);
        if ks.state == BreakerState::HalfOpen {
            ks.state = BreakerState::Closed;
            self.sync_cell(key, BreakerState::Closed);
            incidents.resolve_matching("circuit-breaker", key);
            incidents.raise_keyed(
                Severity::Info,
                "circuit-breaker",
                key,
                "recovered",
                format!("circuit for {key} closed at tick {tick}: half-open probe succeeded"),
            );
        }
        ks.consecutive_failures = 0;
    }

    /// Records a failed run. Reaching the threshold trips a closed breaker
    /// (raising a `Critical` incident); a failed half-open probe re-opens
    /// (raising a `Warning`). Failures while open are not counted — the
    /// breaker is already rejecting traffic.
    pub fn record_failure(&self, key: &str, tick: i64, incidents: &IncidentManager) {
        let mut map = self.inner.write();
        let ks = map.entry(key.to_string()).or_insert_with(KeyState::closed);
        match ks.state {
            BreakerState::Closed => {
                ks.consecutive_failures += 1;
                if ks.consecutive_failures >= self.config.trip_threshold {
                    ks.state = BreakerState::Open;
                    ks.opened_at_tick = tick;
                    ks.trips += 1;
                    self.sync_cell(key, BreakerState::Open);
                    incidents.raise_keyed(
                        Severity::Critical,
                        "circuit-breaker",
                        key,
                        "tripped",
                        format!(
                            "circuit for {key} opened at tick {tick} after {} consecutive failures",
                            ks.consecutive_failures
                        ),
                    );
                }
            }
            BreakerState::HalfOpen => {
                ks.state = BreakerState::Open;
                ks.opened_at_tick = tick;
                ks.trips += 1;
                self.sync_cell(key, BreakerState::Open);
                incidents.raise_keyed(
                    Severity::Warning,
                    "circuit-breaker",
                    key,
                    "probe-failed",
                    format!("half-open probe for {key} failed at tick {tick}; circuit re-opened"),
                );
            }
            BreakerState::Open => {}
        }
    }

    /// Current state for a key (closed if never seen).
    pub fn state(&self, key: &str) -> BreakerState {
        self.inner
            .read()
            .get(key)
            .map_or(BreakerState::Closed, |ks| ks.state)
    }

    /// Observable status for a key.
    pub fn snapshot(&self, key: &str) -> BreakerSnapshot {
        let map = self.inner.read();
        let ks = map.get(key).copied().unwrap_or_else(KeyState::closed);
        BreakerSnapshot {
            state: ks.state,
            consecutive_failures: ks.consecutive_failures,
            trips: ks.trips,
        }
    }

    /// Publishes every key's state into `registry` as gauges:
    /// `seagull_breaker_state` (see [`BreakerState::gauge_value`]),
    /// `seagull_breaker_consecutive_failures`, and `seagull_breaker_trips`.
    /// Idempotent — callers re-publish after each breaker interaction.
    pub fn publish_state(&self, registry: &Registry) {
        let map = self.inner.read();
        for (key, ks) in map.iter() {
            Self::publish_key(registry, key, ks);
        }
    }

    /// Publishes one key's state (same gauges as
    /// [`CircuitBreaker::publish_state`]). Concurrent region runs use this
    /// so a run never exports a mid-flight snapshot of *another* region's
    /// breaker, which would make the merged registry depend on scheduling.
    pub fn publish_region(&self, registry: &Registry, key: &str) {
        let map = self.inner.read();
        let ks = map.get(key).copied().unwrap_or_else(KeyState::closed);
        Self::publish_key(registry, key, &ks);
    }

    fn publish_key(registry: &Registry, key: &str, ks: &KeyState) {
        let labels = [("region", key)];
        registry
            .gauge("seagull_breaker_state", &labels)
            .set(ks.state.gauge_value());
        registry
            .gauge("seagull_breaker_consecutive_failures", &labels)
            .set(f64::from(ks.consecutive_failures));
        registry
            .gauge("seagull_breaker_trips", &labels)
            .set(f64::from(ks.trips));
    }
}

impl fmt::Debug for CircuitBreaker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CircuitBreaker")
            .field("config", &self.config)
            .field("keys", &self.inner.read().len())
            .finish()
    }
}

/// Test hook injecting stage-level faults into the pipeline: called with
/// `(stage, region, tick, attempt)`, returns whether that attempt fails.
pub type StageFaultHook = Arc<dyn Fn(&str, &str, i64, u32) -> bool + Send + Sync>;

/// Test hook for stage-boundary kill-points: called with
/// `(stage, region, tick)` at the entry of every pipeline stage; returning
/// true simulates process death there (the pipeline panics with
/// [`InjectedCrash`], exactly like a [`seagull_telemetry::ChaosBlobStore`]
/// crash point).
pub type StageKillHook = Arc<dyn Fn(&str, &str, i64) -> bool + Send + Sync>;

/// Test hook injecting *server-granular* faults into the fused dataflow
/// pipeline: called with `(stage, region, server_id, tick, attempt)` inside
/// each per-server operator's retry loop, returns whether that attempt
/// fails. Unlike [`StageFaultHook`], an exhausted server-granular fault
/// quarantines only that server — siblings keep flowing.
pub type ServerFaultHook = Arc<dyn Fn(&str, &str, u64, i64, u32) -> bool + Send + Sync>;

/// Optional stage-fault injection carried by [`ResiliencePolicy`].
#[derive(Clone, Default)]
pub struct StageChaos {
    hook: Option<StageFaultHook>,
    kill: Option<StageKillHook>,
    server_hook: Option<ServerFaultHook>,
}

impl StageChaos {
    /// No injected stage faults (production).
    pub fn none() -> StageChaos {
        StageChaos::default()
    }

    /// Injects faults per the hook.
    pub fn from_fn(
        hook: impl Fn(&str, &str, i64, u32) -> bool + Send + Sync + 'static,
    ) -> StageChaos {
        StageChaos {
            hook: Some(Arc::new(hook)),
            ..StageChaos::default()
        }
    }

    /// Injects per-server faults per the hook (dataflow pipeline only; the
    /// batch-barrier path has no per-server retry loop to consult it).
    pub fn from_server_fn(
        hook: impl Fn(&str, &str, u64, i64, u32) -> bool + Send + Sync + 'static,
    ) -> StageChaos {
        StageChaos {
            server_hook: Some(Arc::new(hook)),
            ..StageChaos::default()
        }
    }

    /// Kills the process (panics with [`InjectedCrash`]) at the first stage
    /// boundary where the hook returns true.
    pub fn kill_at(hook: impl Fn(&str, &str, i64) -> bool + Send + Sync + 'static) -> StageChaos {
        StageChaos {
            kill: Some(Arc::new(hook)),
            ..StageChaos::default()
        }
    }

    /// Adds a kill hook to an existing configuration.
    pub fn with_kill(
        mut self,
        hook: impl Fn(&str, &str, i64) -> bool + Send + Sync + 'static,
    ) -> StageChaos {
        self.kill = Some(Arc::new(hook));
        self
    }

    /// Whether this attempt of `stage` should fail.
    pub fn should_fail(&self, stage: &str, region: &str, tick: i64, attempt: u32) -> bool {
        self.hook
            .as_ref()
            .is_some_and(|h| h(stage, region, tick, attempt))
    }

    /// Whether this attempt of `stage` for a specific server should fail
    /// (consulted by the dataflow pipeline's per-server operators).
    pub fn should_fail_server(
        &self,
        stage: &str,
        region: &str,
        server: u64,
        tick: i64,
        attempt: u32,
    ) -> bool {
        self.server_hook
            .as_ref()
            .is_some_and(|h| h(stage, region, server, tick, attempt))
    }

    /// Stage-boundary kill-point: the pipeline calls this at the entry of
    /// every stage; if the kill hook fires, the simulated process dies on
    /// the spot via [`InjectedCrash`] (no return, no cleanup — recovery must
    /// cope with whatever the blob store already holds).
    pub fn kill_point(&self, stage: &str, region: &str, tick: i64) {
        if self.kill.as_ref().is_some_and(|h| h(stage, region, tick)) {
            InjectedCrash::die(format!("stage {stage} for {region}@{tick}"));
        }
    }
}

impl fmt::Debug for StageChaos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "StageChaos(fault: {}, kill: {}, server_fault: {})",
            if self.hook.is_some() {
                "hooked"
            } else {
                "none"
            },
            if self.kill.is_some() {
                "hooked"
            } else {
                "none"
            },
            if self.server_hook.is_some() {
                "hooked"
            } else {
                "none"
            },
        )
    }
}

/// The pipeline's resilience configuration: retry policy, breaker tuning,
/// jitter seed, and the optional stage-fault hook.
#[derive(Debug, Clone)]
pub struct ResiliencePolicy {
    /// Retry-with-backoff policy for every stage.
    pub retry: RetryPolicy,
    /// Per-region circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Base seed for backoff jitter (mixed per stage via [`stage_seed`]).
    pub seed: u64,
    /// Optional seeded fault-injection hook (tests and chaos drills).
    pub chaos: StageChaos,
}

impl Default for ResiliencePolicy {
    fn default() -> ResiliencePolicy {
        ResiliencePolicy {
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            seed: 0,
            chaos: StageChaos::none(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_recovers_from_transient_faults() {
        let policy = RetryPolicy::default();
        let result = policy.run(7, |attempt| {
            if attempt < 3 {
                Err(StageError::transient("flaky"))
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(result.outcome.as_ref().unwrap(), &3);
        assert_eq!(result.attempts, 3);
        assert_eq!(result.retries(), 2);
        assert!(result.backoff_ms > 0, "two retries account backoff");
    }

    #[test]
    fn permanent_errors_are_not_retried() {
        let policy = RetryPolicy::default();
        let mut calls = 0;
        let result = policy.run(7, |_| {
            calls += 1;
            Err::<(), _>(StageError::permanent("missing"))
        });
        assert!(result.outcome.is_err());
        assert_eq!(calls, 1);
        assert_eq!(result.backoff_ms, 0);
    }

    #[test]
    fn retries_stop_at_max_attempts() {
        let policy = RetryPolicy {
            max_attempts: 4,
            ..RetryPolicy::default()
        };
        let mut calls = 0;
        let result = policy.run(7, |_| {
            calls += 1;
            Err::<(), _>(StageError::transient("down"))
        });
        assert_eq!(calls, 4);
        assert_eq!(result.attempts, 4);
    }

    #[test]
    fn backoff_budget_stops_retries_early() {
        let policy = RetryPolicy {
            max_attempts: 100,
            base_delay_ms: 400,
            multiplier: 1.0,
            jitter_frac: 0.0,
            budget_ms: 1_000,
            ..RetryPolicy::default()
        };
        let mut calls = 0;
        let result = policy.run(7, |_| {
            calls += 1;
            Err::<(), _>(StageError::transient("down"))
        });
        // 400 + 400 fits the 1000ms budget; a third delay would exceed it.
        assert_eq!(calls, 3);
        assert_eq!(result.backoff_ms, 800);
    }

    #[test]
    fn delays_are_deterministic_and_capped() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_delay_ms: 10,
            multiplier: 3.0,
            cap_ms: 500,
            jitter_frac: 0.5,
            budget_ms: 0,
        };
        let a = policy.delays_ms(42);
        let b = policy.delays_ms(42);
        assert_eq!(a, b);
        assert_ne!(a, policy.delays_ms(43));
        assert!(a.iter().all(|&d| d <= 500));
    }

    #[test]
    fn io_error_classification() {
        let not_found = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        assert!(!StageError::from_io(&not_found).transient);
        let timeout = std::io::Error::new(std::io::ErrorKind::TimedOut, "slow");
        assert!(StageError::from_io(&timeout).transient);
        let refused = std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "outage");
        assert!(StageError::from_io(&refused).transient);
    }

    #[test]
    fn breaker_trips_after_threshold_and_raises_critical() {
        let incidents = IncidentManager::new();
        let breaker = CircuitBreaker::new(BreakerConfig {
            trip_threshold: 3,
            cooldown_ticks: 14,
        });
        for tick in 0..2 {
            assert!(breaker.allow("west", tick));
            breaker.record_failure("west", tick, &incidents);
            assert_eq!(breaker.state("west"), BreakerState::Closed);
        }
        assert!(breaker.allow("west", 2));
        breaker.record_failure("west", 2, &incidents);
        assert_eq!(breaker.state("west"), BreakerState::Open);
        assert_eq!(incidents.open_count(Severity::Critical), 1);
        assert_eq!(breaker.snapshot("west").trips, 1);
        // Other keys are independent.
        assert_eq!(breaker.state("east"), BreakerState::Closed);
        assert!(breaker.allow("east", 2));
    }

    #[test]
    fn breaker_recovers_through_half_open() {
        let incidents = IncidentManager::new();
        let breaker = CircuitBreaker::new(BreakerConfig {
            trip_threshold: 1,
            cooldown_ticks: 10,
        });
        breaker.record_failure("west", 100, &incidents);
        assert_eq!(breaker.state("west"), BreakerState::Open);
        assert!(!breaker.allow("west", 105), "cooldown not elapsed");
        assert!(
            breaker.allow("west", 110),
            "cooldown elapsed: probe admitted"
        );
        assert_eq!(breaker.state("west"), BreakerState::HalfOpen);
        breaker.record_success("west", 110, &incidents);
        assert_eq!(breaker.state("west"), BreakerState::Closed);
        assert_eq!(
            incidents.open_count(Severity::Critical),
            0,
            "trip incident resolved on recovery"
        );
        assert_eq!(incidents.open_count(Severity::Info), 1);
    }

    #[test]
    fn lock_free_probe_tracks_every_transition() {
        let incidents = IncidentManager::new();
        let breaker = CircuitBreaker::new(BreakerConfig {
            trip_threshold: 1,
            cooldown_ticks: 10,
        });
        // A probe taken before any state exists reads closed, and taking it
        // does not create breaker state for the key.
        let probe = breaker.probe("west");
        assert_eq!(probe.state(), BreakerState::Closed);
        assert!(!probe.is_open());
        assert_eq!(breaker.snapshot("west").trips, 0);

        breaker.record_failure("west", 0, &incidents);
        assert!(probe.is_open(), "trip visible through the probe");
        assert!(breaker.allow("west", 10));
        assert_eq!(probe.state(), BreakerState::HalfOpen);
        breaker.record_success("west", 10, &incidents);
        assert_eq!(probe.state(), BreakerState::Closed);

        // A probe taken after transitions is seeded from existing state.
        breaker.record_failure("east", 0, &incidents);
        assert!(breaker.probe("east").is_open());
        // Probes observe transitions made through breaker clones too.
        breaker.clone().allow("east", 10);
        assert_eq!(breaker.probe("east").state(), BreakerState::HalfOpen);
    }

    #[test]
    fn failed_probe_reopens_the_breaker() {
        let incidents = IncidentManager::new();
        let breaker = CircuitBreaker::new(BreakerConfig {
            trip_threshold: 1,
            cooldown_ticks: 10,
        });
        breaker.record_failure("west", 0, &incidents);
        assert!(breaker.allow("west", 10));
        assert_eq!(breaker.state("west"), BreakerState::HalfOpen);
        breaker.record_failure("west", 10, &incidents);
        assert_eq!(breaker.state("west"), BreakerState::Open);
        assert!(!breaker.allow("west", 15), "cooldown restarts from re-open");
        assert!(breaker.allow("west", 20));
        assert_eq!(breaker.snapshot("west").trips, 2);
        assert_eq!(incidents.open_count(Severity::Warning), 1);
    }

    #[test]
    fn successes_reset_the_failure_streak() {
        let incidents = IncidentManager::new();
        let breaker = CircuitBreaker::new(BreakerConfig {
            trip_threshold: 3,
            cooldown_ticks: 14,
        });
        for tick in 0..10 {
            breaker.record_failure("west", tick, &incidents);
            breaker.record_failure("west", tick, &incidents);
            breaker.record_success("west", tick, &incidents);
        }
        assert_eq!(breaker.state("west"), BreakerState::Closed);
        assert_eq!(incidents.open_total(), 0);
    }

    #[test]
    fn stage_seed_separates_stages() {
        let a = stage_seed(1, "ingestion", "west", 100);
        assert_eq!(a, stage_seed(1, "ingestion", "west", 100));
        assert_ne!(a, stage_seed(1, "validation", "west", 100));
        assert_ne!(a, stage_seed(1, "ingestion", "east", 100));
        assert_ne!(a, stage_seed(1, "ingestion", "west", 107));
        assert_ne!(a, stage_seed(2, "ingestion", "west", 100));
    }

    #[test]
    fn run_observed_records_retry_metrics() {
        let registry = Registry::new();
        let policy = RetryPolicy::default();
        let labels = [("region", "west"), ("stage", "ingestion")];
        let result = policy.run_observed(7, &registry, "ingestion", "west", |attempt| {
            if attempt < 3 {
                Err(StageError::transient("flaky"))
            } else {
                Ok(attempt)
            }
        });
        assert!(result.outcome.is_ok());
        assert_eq!(
            registry
                .counter("seagull_retry_attempts_total", &labels)
                .get(),
            3
        );
        assert_eq!(registry.counter("seagull_retries_total", &labels).get(), 2);
        assert_eq!(
            registry
                .histogram("seagull_retry_backoff_ms", &labels)
                .count(),
            1
        );
        assert_eq!(
            registry
                .counter("seagull_retry_exhausted_total", &labels)
                .get(),
            0
        );

        let failed = policy.run_observed(7, &registry, "ingestion", "west", |_| {
            Err::<(), _>(StageError::permanent("missing"))
        });
        assert!(failed.outcome.is_err());
        assert_eq!(
            registry
                .counter("seagull_retry_exhausted_total", &labels)
                .get(),
            1
        );
    }

    #[test]
    fn breaker_publishes_state_gauges() {
        let incidents = IncidentManager::new();
        let registry = Registry::new();
        let breaker = CircuitBreaker::new(BreakerConfig {
            trip_threshold: 1,
            cooldown_ticks: 10,
        });
        breaker.record_failure("west", 0, &incidents);
        breaker.record_success("east", 0, &incidents);
        breaker.publish_state(&registry);
        let gauge = |key: &str| {
            registry
                .gauge("seagull_breaker_state", &[("region", key)])
                .get()
        };
        assert_eq!(gauge("west"), BreakerState::Open.gauge_value());
        assert_eq!(gauge("east"), BreakerState::Closed.gauge_value());
        assert_eq!(
            registry
                .gauge("seagull_breaker_trips", &[("region", "west")])
                .get(),
            1.0
        );
        // Half-open shows up after the cooldown probe is admitted.
        assert!(breaker.allow("west", 10));
        breaker.publish_state(&registry);
        assert_eq!(gauge("west"), BreakerState::HalfOpen.gauge_value());
    }

    #[test]
    fn stage_kill_point_dies_with_injected_crash() {
        let chaos = StageChaos::kill_at(|stage, region, tick| {
            stage == "deployment" && region == "west" && tick == 100
        });
        // Non-matching boundaries pass through.
        chaos.kill_point("ingestion", "west", 100);
        chaos.kill_point("deployment", "east", 100);
        StageChaos::none().kill_point("deployment", "west", 100);
        let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            chaos.kill_point("deployment", "west", 100)
        }))
        .unwrap_err();
        let crash = died.downcast::<InjectedCrash>().expect("InjectedCrash");
        assert!(crash.context.contains("deployment"));
    }

    #[test]
    fn stage_chaos_hook_fires() {
        let chaos = StageChaos::from_fn(|stage, _, _, attempt| stage == "train" && attempt == 1);
        assert!(chaos.should_fail("train", "west", 0, 1));
        assert!(!chaos.should_fail("train", "west", 0, 2));
        assert!(!chaos.should_fail("deploy", "west", 0, 1));
        assert!(!StageChaos::none().should_fail("train", "west", 0, 1));
    }
}
