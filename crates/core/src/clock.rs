//! The Pipeline Scheduler substitute: recurring jobs on a simulated clock.
//!
//! In production "a run of the AML pipeline is scheduled once a week per
//! region" and "the backup scheduler runs within MDS runner per day and
//! cluster" (Section 2.2–2.3). This module provides the clockwork: a
//! day-granular simulated clock and a recurring-job scheduler that fires the
//! weekly pipeline runs and daily runner passes in deterministic order, so
//! whole months of operations can be simulated in tests and experiments.

use serde::{Deserialize, Serialize};

/// A recurring job definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecurringJob {
    /// Job name, echoed into every [`JobRun`].
    pub name: String,
    /// Fires on days where `(day - anchor_day) % every_days == 0`.
    pub every_days: i64,
    /// Day the cadence is anchored at.
    pub anchor_day: i64,
}

impl RecurringJob {
    /// A weekly job anchored at `anchor_day` (the paper's per-region
    /// pipeline cadence).
    pub fn weekly(name: impl Into<String>, anchor_day: i64) -> RecurringJob {
        RecurringJob {
            name: name.into(),
            every_days: 7,
            anchor_day,
        }
    }

    /// A daily job (the runner-service cadence).
    pub fn daily(name: impl Into<String>) -> RecurringJob {
        RecurringJob {
            name: name.into(),
            every_days: 1,
            anchor_day: 0,
        }
    }

    /// True if the job fires on `day`.
    pub fn due_on(&self, day: i64) -> bool {
        self.every_days > 0 && (day - self.anchor_day).rem_euclid(self.every_days) == 0
    }
}

/// A record of one job firing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobRun {
    /// Name of the job that fired.
    pub name: String,
    /// Day it fired on.
    pub day: i64,
}

/// Day-granular scheduler over a simulated clock.
///
/// Jobs fire in registration order within a day — register the weekly
/// pipeline before the daily backup runner so fresh predictions exist when
/// the runner consumes them, exactly as production sequences them.
/// A boxed job action, invoked with the firing day.
type JobAction<'a> = Box<dyn FnMut(i64) + 'a>;

/// The recurring-job scheduler: registered jobs fire in order as the
/// simulated clock advances day by day.
pub struct JobScheduler<'a> {
    jobs: Vec<(RecurringJob, JobAction<'a>)>,
}

impl<'a> JobScheduler<'a> {
    /// Creates an empty scheduler.
    pub fn new() -> JobScheduler<'a> {
        JobScheduler { jobs: Vec::new() }
    }

    /// Registers a job with its action.
    pub fn register(&mut self, job: RecurringJob, action: impl FnMut(i64) + 'a) {
        self.jobs.push((job, Box::new(action)));
    }

    /// Advances the clock over `[from_day, to_day)`, firing every due job,
    /// and returns the firing log.
    pub fn run(&mut self, from_day: i64, to_day: i64) -> Vec<JobRun> {
        let mut log = Vec::new();
        for day in from_day..to_day {
            for (job, action) in &mut self.jobs {
                if job.due_on(day) {
                    action(day);
                    log.push(JobRun {
                        name: job.name.clone(),
                        day,
                    });
                }
            }
        }
        log
    }
}

impl Default for JobScheduler<'_> {
    fn default() -> Self {
        JobScheduler::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    #[test]
    fn weekly_job_fires_on_anchor_cadence() {
        let job = RecurringJob::weekly("pipeline", 100);
        assert!(job.due_on(100));
        assert!(job.due_on(107));
        assert!(job.due_on(93));
        assert!(!job.due_on(101));
    }

    #[test]
    fn daily_fires_every_day() {
        let job = RecurringJob::daily("runner");
        for d in -3..10 {
            assert!(job.due_on(d));
        }
    }

    #[test]
    fn zero_interval_never_fires() {
        let job = RecurringJob {
            name: "broken".into(),
            every_days: 0,
            anchor_day: 0,
        };
        assert!(!job.due_on(0));
    }

    #[test]
    fn scheduler_orders_jobs_within_a_day() {
        let order = RefCell::new(Vec::new());
        let mut sched = JobScheduler::new();
        sched.register(RecurringJob::weekly("pipeline", 0), |d| {
            order.borrow_mut().push(("pipeline", d));
        });
        sched.register(RecurringJob::daily("runner"), |d| {
            order.borrow_mut().push(("runner", d));
        });
        let log = sched.run(0, 8);
        // Day 0 and day 7 fire both jobs, pipeline first.
        let o = order.borrow();
        assert_eq!(o[0], ("pipeline", 0));
        assert_eq!(o[1], ("runner", 0));
        assert_eq!(o.len(), 2 + 6 + 2); // 2 on day 0, 1/day for 1..7, 2 on day 7
        assert_eq!(log.len(), o.len());
        assert_eq!(log.iter().filter(|r| r.name == "pipeline").count(), 2);
    }

    #[test]
    fn run_is_half_open() {
        let count = RefCell::new(0);
        let mut sched = JobScheduler::new();
        sched.register(RecurringJob::daily("d"), |_| {
            *count.borrow_mut() += 1;
        });
        sched.run(5, 5);
        assert_eq!(*count.borrow(), 0);
        sched.run(5, 6);
        assert_eq!(*count.borrow(), 1);
    }
}
