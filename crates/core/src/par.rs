//! The Dask substitute: a from-scratch data-parallel executor.
//!
//! The paper partitions input "per server and processes servers in parallel"
//! with Dask, winning 3–4.6× over single-threaded execution (Figure 12(b)).
//! Earlier revisions spawned a `std::thread::scope` per call and pulled one
//! index at a time from a shared atomic; this module replaces that with a
//! persistent [`ExecPool`]: long-lived workers, *chunked* ranges (one atomic
//! op and one timing sample per chunk instead of per item), work stealing
//! between participants when a range drains, and results written into a
//! preallocated slot vector instead of flowing through a channel.
//!
//! The caller always participates in its own map. That keeps the pool
//! deadlock-free under nested parallelism (a region-level map whose closure
//! runs an inner per-server map borrows no worker it must then wait for) and
//! means `threads == 1` costs nothing but a serial loop.

use seagull_obs::{ParallelProfile, WorkerProfile};
use seagull_telemetry::chaos::InjectedCrash;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Upper bound on pool threads; requests beyond this share the existing
/// workers (callers still participate, so progress never depends on it).
const MAX_POOL_WORKERS: usize = 64;

/// Target chunks per participant: enough for stealing to level skew, few
/// enough that the per-chunk atomic and `Instant` samples stay amortized.
const CHUNKS_PER_WORKER: usize = 8;

// ---------------------------------------------------------------------------
// Pool plumbing
// ---------------------------------------------------------------------------

struct PoolState {
    /// Maps currently accepting helpers, in registration order.
    jobs: Vec<Arc<JobHandle>>,
    /// Worker threads spawned so far.
    workers: usize,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers park here waiting for a job that wants helpers.
    work_cv: Condvar,
    /// Callers park here waiting for their last helper to leave the job.
    done_cv: Condvar,
}

/// A type-erased in-flight `map` that pool workers can join.
///
/// `ctx` points at a stack-allocated `MapCtx` in the calling thread. The
/// deregistration protocol makes the erased borrow sound: the caller removes
/// the job from `PoolState::jobs` and then waits until `active == 0` under
/// the same lock workers use to join, so no worker can observe `ctx` after
/// the caller's frame is released.
struct JobHandle {
    run: unsafe fn(*const ()),
    ctx: *const (),
    /// Helpers this job still accepts (the caller occupies one participant
    /// slot itself).
    helpers_wanted: usize,
    joined: AtomicUsize,
    /// Helpers currently inside `run`.
    active: AtomicUsize,
}

// SAFETY: `ctx` is only dereferenced by workers between registration and
// deregistration, while the referenced `MapCtx` (which is `Sync`) is pinned
// on the caller's stack.
unsafe impl Send for JobHandle {}
unsafe impl Sync for JobHandle {}

/// Cleanup handle: held by `ExecPool` clones only (workers hold just
/// `PoolShared`), so when the last user handle drops the workers are told
/// to exit instead of leaking a cycle.
struct PoolGuard {
    shared: Arc<PoolShared>,
}

impl Drop for PoolGuard {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap();
        state.shutdown = true;
        drop(state);
        self.shared.work_cv.notify_all();
    }
}

/// A persistent work-stealing execution pool.
///
/// Cloning is cheap and shares the same workers. Workers are spawned lazily
/// up to the largest `threads` any map has requested (capped at
/// `MAX_POOL_WORKERS`); they survive across calls, so steady-state maps
/// pay no thread spawn/teardown.
#[derive(Clone)]
pub struct ExecPool {
    shared: Arc<PoolShared>,
    _guard: Arc<PoolGuard>,
}

impl ExecPool {
    /// Create a pool. Workers are spawned on demand, so an idle pool costs
    /// nothing beyond the handle.
    pub fn new() -> ExecPool {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                jobs: Vec::new(),
                workers: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        ExecPool {
            _guard: Arc::new(PoolGuard {
                shared: Arc::clone(&shared),
            }),
            shared,
        }
    }

    /// The process-wide shared pool used by [`parallel_map`] /
    /// [`parallel_map_profiled`]. Its workers live for the process.
    pub fn global() -> &'static ExecPool {
        static GLOBAL: OnceLock<ExecPool> = OnceLock::new();
        GLOBAL.get_or_init(ExecPool::new)
    }

    /// Number of worker threads spawned so far (excludes callers).
    pub fn workers_spawned(&self) -> usize {
        self.shared.state.lock().unwrap().workers
    }

    fn ensure_workers(&self, wanted: usize) {
        let wanted = wanted.min(MAX_POOL_WORKERS);
        let mut state = self.shared.state.lock().unwrap();
        while state.workers < wanted {
            let id = state.workers;
            let shared = Arc::clone(&self.shared);
            std::thread::Builder::new()
                .name(format!("seagull-exec-{id}"))
                .spawn(move || worker_loop(shared))
                .expect("spawn pool worker");
            state.workers += 1;
        }
    }

    /// Parallel map preserving input order; see [`parallel_map`].
    pub fn map<T, R, F>(&self, items: &[T], threads: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.map_profiled(items, threads, f).0
    }

    /// Parallel map returning a per-participant [`ParallelProfile`]; see
    /// [`parallel_map_profiled`].
    pub fn map_profiled<T, R, F>(
        &self,
        items: &[T],
        threads: usize,
        f: F,
    ) -> (Vec<R>, ParallelProfile)
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let chunk = chunk_size(items.len(), threads.max(1).min(items.len().max(1)));
        self.map_with_chunk(items, threads, chunk, f)
    }

    /// Task-granular parallel map with per-item panic isolation: every item
    /// is its own schedulable unit (`chunk == 1`, so a slow item never
    /// strands queue-mates behind it in a claimed chunk) and a panic inside
    /// `f` poisons only that item's slot, surfacing as `Err(panic message)`
    /// instead of aborting the whole map.
    ///
    /// This is the scheduling primitive behind the pipeline's fused
    /// per-server dataflow operators: server-sized tasks with skewed costs,
    /// where one pathological server must neither stall nor kill its
    /// siblings. [`InjectedCrash`] panics (chaos kill points simulating
    /// process death) are *not* isolated — they resume unwinding so recovery
    /// tests still observe a crash.
    pub fn map_tasks<T, R, F>(
        &self,
        items: &[T],
        threads: usize,
        f: F,
    ) -> (Vec<Result<R, String>>, ParallelProfile)
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.map_with_chunk(items, threads, 1, move |item| {
            match catch_unwind(AssertUnwindSafe(|| f(item))) {
                Ok(r) => Ok(r),
                Err(payload) => {
                    if payload.is::<InjectedCrash>() {
                        resume_unwind(payload);
                    }
                    Err(panic_message(payload.as_ref()))
                }
            }
        })
    }

    fn map_with_chunk<T, R, F>(
        &self,
        items: &[T],
        threads: usize,
        chunk: usize,
        f: F,
    ) -> (Vec<R>, ParallelProfile)
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let threads = threads.max(1).min(items.len().max(1));
        let region_start = Instant::now();
        if threads == 1 {
            let out: Vec<R> = items.iter().map(&f).collect();
            let busy = region_start.elapsed();
            let profile = ParallelProfile {
                workers: vec![WorkerProfile {
                    worker: 0,
                    items: items.len() as u64,
                    busy,
                    idle: Duration::ZERO,
                }],
                region_wall: region_start.elapsed(),
            };
            return (out, profile);
        }
        assert!(
            items.len() < u32::MAX as usize,
            "parallel_map supports up to 2^32-1 items"
        );

        let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        let ctx = MapCtx {
            items,
            f: &f,
            slots: SlotPtr(slots.as_mut_ptr()),
            ranges: partition_ranges(items.len(), threads),
            chunk,
            next_ordinal: AtomicUsize::new(0),
            abort: AtomicBool::new(false),
            profiles: Mutex::new(Vec::with_capacity(threads)),
            panic: Mutex::new(None),
        };
        let job = Arc::new(JobHandle {
            run: run_erased::<T, R, F>,
            ctx: &ctx as *const MapCtx<'_, T, R, F> as *const (),
            helpers_wanted: threads - 1,
            joined: AtomicUsize::new(0),
            active: AtomicUsize::new(0),
        });

        self.ensure_workers(threads - 1);
        {
            let mut state = self.shared.state.lock().unwrap();
            state.jobs.push(Arc::clone(&job));
        }
        self.shared.work_cv.notify_all();

        // The caller is always a participant: progress never depends on a
        // pool worker being free.
        participant_run(&ctx);

        // Deregister, then wait for helpers still inside `run`. After this
        // block no worker holds a reference into `ctx` or `slots`.
        {
            let mut state = self.shared.state.lock().unwrap();
            state.jobs.retain(|j| !Arc::ptr_eq(j, &job));
            while job.active.load(Ordering::Acquire) > 0 {
                state = self.shared.done_cv.wait(state).unwrap();
            }
        }

        if let Some(payload) = ctx.panic.lock().unwrap().take() {
            resume_unwind(payload);
        }

        let out: Vec<R> = slots
            .into_iter()
            .map(|s| s.expect("every index produced exactly one result"))
            .collect();

        let region_wall = region_start.elapsed();
        let mut workers = ctx.profiles.into_inner().unwrap();
        // Participant slots no helper reached in time report zero work and
        // full-region idle, keeping `workers.len()` (and the stable
        // `seagull_parallel_workers` gauge) deterministic at `threads`.
        for ordinal in workers.len()..threads {
            workers.push(WorkerProfile {
                worker: ordinal,
                items: 0,
                busy: Duration::ZERO,
                idle: region_wall,
            });
        }
        workers.sort_by_key(|w| w.worker);
        (
            out,
            ParallelProfile {
                workers,
                region_wall,
            },
        )
    }
}

impl Default for ExecPool {
    fn default() -> Self {
        ExecPool::new()
    }
}

fn worker_loop(shared: Arc<PoolShared>) {
    let mut state = shared.state.lock().unwrap();
    loop {
        if state.shutdown {
            return;
        }
        let job = state.jobs.iter().find_map(|j| {
            (j.joined.load(Ordering::Relaxed) < j.helpers_wanted).then(|| Arc::clone(j))
        });
        match job {
            Some(job) => {
                // Both counters move under the state lock, synchronizing
                // with deregistration in `map_profiled`.
                job.joined.fetch_add(1, Ordering::Relaxed);
                job.active.fetch_add(1, Ordering::Release);
                drop(state);
                // SAFETY: the job was found registered under the lock, so
                // the caller is still pinned waiting for `active == 0`.
                unsafe { (job.run)(job.ctx) };
                state = shared.state.lock().unwrap();
                if job.active.fetch_sub(1, Ordering::Release) == 1 {
                    shared.done_cv.notify_all();
                }
            }
            None => {
                state = shared.work_cv.wait(state).unwrap();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Per-map context
// ---------------------------------------------------------------------------

struct SlotPtr<R>(*mut Option<R>);
// SAFETY: disjoint indices are written by exactly one participant each (a
// chunk is claimed by CAS before being processed), and the owning Vec is not
// touched until all participants have left.
unsafe impl<R: Send> Send for SlotPtr<R> {}
unsafe impl<R: Send> Sync for SlotPtr<R> {}

struct MapCtx<'a, T, R, F> {
    items: &'a [T],
    f: &'a F,
    slots: SlotPtr<R>,
    /// One packed `(start, end)` range per participant slot.
    ranges: Vec<AtomicU64>,
    chunk: usize,
    next_ordinal: AtomicUsize,
    abort: AtomicBool,
    profiles: Mutex<Vec<WorkerProfile>>,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

fn pack(start: u32, end: u32) -> u64 {
    ((start as u64) << 32) | end as u64
}

fn unpack(v: u64) -> (usize, usize) {
    ((v >> 32) as usize, (v & 0xffff_ffff) as usize)
}

fn partition_ranges(len: usize, participants: usize) -> Vec<AtomicU64> {
    let base = len / participants;
    let extra = len % participants;
    let mut start = 0usize;
    (0..participants)
        .map(|p| {
            let size = base + usize::from(p < extra);
            let range = AtomicU64::new(pack(start as u32, (start + size) as u32));
            start += size;
            range
        })
        .collect()
}

fn chunk_size(len: usize, participants: usize) -> usize {
    len.div_ceil(participants * CHUNKS_PER_WORKER).max(1)
}

/// Renders a caught panic payload for the `Err` side of [`ExecPool::map_tasks`].
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Claim the next chunk for `ordinal`: drain the own range from the front,
/// then steal from the *back* of sibling ranges (stealing from the opposite
/// end keeps the owner and the thief off the same cache lines until the
/// range is nearly empty).
fn claim_chunk<T, R, F>(ctx: &MapCtx<'_, T, R, F>, ordinal: usize) -> Option<(usize, usize)> {
    let n = ctx.ranges.len();
    for offset in 0..n {
        let victim = (ordinal + offset) % n;
        let range = &ctx.ranges[victim];
        let mut cur = range.load(Ordering::Acquire);
        loop {
            let (start, end) = unpack(cur);
            if start >= end {
                break;
            }
            let (next, claimed) = if offset == 0 {
                let ns = (start + ctx.chunk).min(end);
                (pack(ns as u32, end as u32), (start, ns))
            } else {
                let ne = end.saturating_sub(ctx.chunk).max(start);
                (pack(start as u32, ne as u32), (ne, end))
            };
            match range.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return Some(claimed),
                Err(actual) => cur = actual,
            }
        }
    }
    None
}

fn participant_run<T, R, F>(ctx: &MapCtx<'_, T, R, F>)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let started = Instant::now();
    let ordinal = ctx.next_ordinal.fetch_add(1, Ordering::Relaxed);
    if ordinal >= ctx.ranges.len() {
        // More helpers woke than participant slots; nothing to claim.
        return;
    }
    let mut busy = Duration::ZERO;
    let mut count = 0u64;
    let result = catch_unwind(AssertUnwindSafe(|| {
        while !ctx.abort.load(Ordering::Relaxed) {
            let Some((start, end)) = claim_chunk(ctx, ordinal) else {
                break;
            };
            // One timing sample per chunk: sub-microsecond closures no
            // longer report mostly `Instant::now` overhead.
            let chunk_start = Instant::now();
            for i in start..end {
                let r = (ctx.f)(&ctx.items[i]);
                // SAFETY: index `i` belongs to a chunk claimed exclusively
                // by this participant; each slot is written at most once.
                unsafe { *ctx.slots.0.add(i) = Some(r) };
            }
            busy += chunk_start.elapsed();
            count += (end - start) as u64;
        }
    }));
    if let Err(payload) = result {
        ctx.abort.store(true, Ordering::Relaxed);
        let mut slot = ctx.panic.lock().unwrap();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
    ctx.profiles.lock().unwrap().push(WorkerProfile {
        worker: ordinal,
        items: count,
        busy,
        idle: started.elapsed().saturating_sub(busy),
    });
}

/// Monomorphic entry point stored in the type-erased [`JobHandle`].
///
/// # Safety
/// `ctx` must point at a live `MapCtx<T, R, F>` (guaranteed by the
/// registration/deregistration protocol in [`ExecPool::map_profiled`]).
unsafe fn run_erased<T, R, F>(ctx: *const ())
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    participant_run(&*(ctx as *const MapCtx<'_, T, R, F>));
}

// ---------------------------------------------------------------------------
// Free-function API (thin wrappers over the global pool)
// ---------------------------------------------------------------------------

/// Parallel map preserving input order.
///
/// ```
/// use seagull_core::par::parallel_map;
/// let squares = parallel_map(&[1u64, 2, 3, 4], 2, |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
///
/// Runs on the process-wide [`ExecPool`] with up to `threads` participants
/// (at least one; one means serial-on-this-thread). `f` runs once per item;
/// a panic in any participant propagates after in-flight chunks finish.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    ExecPool::global().map(items, threads, f)
}

/// [`parallel_map`] with a per-participant [`ParallelProfile`]: items
/// pulled, busy wall time inside the closure (sampled per chunk), and
/// steal-idle time (alive but without work: every range drained while
/// siblings were still running).
pub fn parallel_map_profiled<T, R, F>(
    items: &[T],
    threads: usize,
    f: F,
) -> (Vec<R>, ParallelProfile)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    ExecPool::global().map_profiled(items, threads, f)
}

/// [`ExecPool::map_tasks`] on the process-wide pool: task-granular claims
/// (one item per chunk) with per-item panic isolation. Used by the fused
/// dataflow pipeline so a poison or straggler server affects only itself.
pub fn parallel_map_tasks<T, R, F>(
    items: &[T],
    threads: usize,
    f: F,
) -> (Vec<Result<R, String>>, ParallelProfile)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    ExecPool::global().map_tasks(items, threads, f)
}

/// The default worker count: available parallelism, as Dask defaults to the
/// machine's cores.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// The worker count the pipeline and bench bins should use: the
/// `SEAGULL_THREADS` env override when set to a positive integer, else
/// [`default_threads`] capped at `MAX_POOL_WORKERS`.
pub fn configured_threads() -> usize {
    match std::env::var("SEAGULL_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => default_threads().min(MAX_POOL_WORKERS),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equals_serial_map() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 4, 8] {
            let par = parallel_map(&items, threads, |x| x * x + 1);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map(&[] as &[u32], 4, |x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(&[7], 16, |x| x + 1), vec![8]);
    }

    #[test]
    fn order_preserved_with_skewed_work() {
        // Earlier items take longer: completion order inverts input order,
        // the result must not.
        let items: Vec<u64> = (0..50).collect();
        let out = parallel_map(&items, 8, |&x| {
            if x < 5 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn actually_uses_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let items: Vec<u32> = (0..64).collect();
        parallel_map(&items, 4, |_| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            seen.lock().unwrap().insert(std::thread::current().id());
        });
        assert!(seen.lock().unwrap().len() > 1);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn profiled_map_accounts_every_item() {
        let items: Vec<u64> = (0..200).collect();
        let (out, profile) = parallel_map_profiled(&items, 4, |x| x + 1);
        assert_eq!(out, (1..=200).collect::<Vec<u64>>());
        assert_eq!(profile.total_items(), 200);
        assert_eq!(profile.workers.len(), 4);
        assert!(profile.imbalance_ratio() >= 1.0);
    }

    #[test]
    fn profiled_map_serial_path() {
        let (out, profile) = parallel_map_profiled(&[1u32, 2, 3], 1, |x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
        assert_eq!(profile.workers.len(), 1);
        assert_eq!(profile.total_items(), 3);
        assert_eq!(profile.workers[0].idle, Duration::ZERO);
    }

    #[test]
    fn pool_workers_persist_across_maps() {
        let pool = ExecPool::new();
        let items: Vec<u32> = (0..256).collect();
        pool.map(&items, 4, |x| x + 1);
        let after_first = pool.workers_spawned();
        assert!(after_first >= 3, "pool spawned {after_first} workers");
        pool.map(&items, 4, |x| x + 2);
        assert_eq!(
            pool.workers_spawned(),
            after_first,
            "second map reuses workers instead of spawning"
        );
    }

    #[test]
    fn nested_maps_complete() {
        let outer: Vec<u32> = (0..8).collect();
        let pool = ExecPool::new();
        let sums = pool.map(&outer, 4, |&o| {
            let inner: Vec<u32> = (0..64).map(|i| i + o).collect();
            pool.map(&inner, 4, |x| x * 2).iter().sum::<u32>()
        });
        let expected: Vec<u32> = outer
            .iter()
            .map(|&o| (0..64).map(|i| (i + o) * 2).sum())
            .collect();
        assert_eq!(sums, expected);
    }

    #[test]
    fn panic_propagates() {
        let items: Vec<u32> = (0..100).collect();
        let result = std::panic::catch_unwind(|| {
            parallel_map(&items, 4, |&x| {
                if x == 37 {
                    panic!("boom on {x}");
                }
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn configured_threads_positive() {
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn map_tasks_matches_serial_and_preserves_order() {
        let items: Vec<u64> = (0..500).collect();
        for threads in [1, 2, 8] {
            let (out, profile) = parallel_map_tasks(&items, threads, |x| x * 3);
            let got: Vec<u64> = out.into_iter().map(|r| r.unwrap()).collect();
            let want: Vec<u64> = items.iter().map(|x| x * 3).collect();
            assert_eq!(got, want, "threads={threads}");
            assert_eq!(profile.total_items(), 500);
        }
    }

    #[test]
    fn map_tasks_isolates_panics_per_item() {
        let items: Vec<u32> = (0..100).collect();
        for threads in [1, 4] {
            let (out, _) = parallel_map_tasks(&items, threads, |&x| {
                if x == 13 || x == 77 {
                    panic!("poison item {x}");
                }
                x + 1
            });
            assert_eq!(out.len(), 100);
            for (i, r) in out.iter().enumerate() {
                if i == 13 || i == 77 {
                    let msg = r.as_ref().unwrap_err();
                    assert!(msg.contains("poison item"), "got {msg:?}");
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i as u32 + 1);
                }
            }
        }
    }

    #[test]
    fn map_tasks_escalates_injected_crashes() {
        let items: Vec<u32> = (0..16).collect();
        let result = std::panic::catch_unwind(|| {
            parallel_map_tasks(&items, 2, |&x| {
                if x == 3 {
                    InjectedCrash::die("kill point inside fused op");
                }
                x
            })
        });
        let payload = result.expect_err("InjectedCrash must not be isolated");
        assert!(payload.is::<InjectedCrash>());
    }

    #[test]
    fn map_tasks_slow_item_does_not_stall_siblings() {
        use std::sync::Mutex;
        use std::time::Instant;
        // With chunked claims a slow item strands the rest of its chunk;
        // task-granular claims must let every sibling finish while the slow
        // item is still running.
        let items: Vec<u32> = (0..40).collect();
        let done: Mutex<Vec<(u32, Instant)>> = Mutex::new(Vec::new());
        let (out, _) = ExecPool::global().map_tasks(&items, 2, |&x| {
            if x == 0 {
                std::thread::sleep(Duration::from_millis(200));
            }
            done.lock().unwrap().push((x, Instant::now()));
            x
        });
        assert_eq!(out.len(), 40);
        let done = done.lock().unwrap();
        let slow_at = done.iter().find(|(x, _)| *x == 0).unwrap().1;
        let stalled = done
            .iter()
            .filter(|(x, at)| *x != 0 && *at > slow_at)
            .count();
        assert_eq!(
            stalled, 0,
            "{stalled} siblings finished after the straggler"
        );
    }
}
