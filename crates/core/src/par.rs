//! The Dask substitute: a from-scratch data-parallel executor.
//!
//! The paper partitions input "per server and processes servers in parallel"
//! with Dask, winning 3–4.6× over single-threaded execution (Figure 12(b)).
//! This module provides the same partition-per-item parallel map: worker
//! threads pull indices from a shared atomic counter (work stealing at
//! item granularity), results flow back over a crossbeam channel, and order
//! is restored at the end. `std::thread::scope` keeps it all borrow-checked
//! with zero `unsafe`.

use crossbeam::channel;
use seagull_obs::{ParallelProfile, WorkerProfile};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Parallel map preserving input order.
///
/// ```
/// use seagull_core::par::parallel_map;
/// let squares = parallel_map(&[1u64, 2, 3, 4], 2, |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
///
/// Spawns `threads` workers (at least one; one means serial-on-this-thread).
/// `f` runs once per item; panics in workers propagate after all workers
/// finish their current items.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_profiled(items, threads, f).0
}

/// [`parallel_map`] with a per-worker [`ParallelProfile`]: items pulled,
/// busy wall time inside the closure, and steal-idle time (alive but
/// without work: the queue drained while siblings were still running).
pub fn parallel_map_profiled<T, R, F>(
    items: &[T],
    threads: usize,
    f: F,
) -> (Vec<R>, ParallelProfile)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    let region_start = Instant::now();
    if threads == 1 {
        let out: Vec<R> = items.iter().map(&f).collect();
        let busy = region_start.elapsed();
        let profile = ParallelProfile {
            workers: vec![WorkerProfile {
                worker: 0,
                items: items.len() as u64,
                busy,
                idle: Duration::ZERO,
            }],
            region_wall: region_start.elapsed(),
        };
        return (out, profile);
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = channel::unbounded::<(usize, R)>();
    let (ptx, prx) = channel::unbounded::<WorkerProfile>();
    std::thread::scope(|scope| {
        for worker in 0..threads {
            let tx = tx.clone();
            let ptx = ptx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || {
                let spawned = Instant::now();
                let mut busy = Duration::ZERO;
                let mut count = 0u64;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let item_start = Instant::now();
                    let r = f(&items[i]);
                    busy += item_start.elapsed();
                    count += 1;
                    // A send can only fail if the receiver was dropped, which
                    // cannot happen while this scope is alive.
                    let _ = tx.send((i, r));
                }
                let _ = ptx.send(WorkerProfile {
                    worker,
                    items: count,
                    busy,
                    idle: spawned.elapsed().saturating_sub(busy),
                });
            });
        }
        drop(tx);
        drop(ptx);
        let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for (i, r) in rx {
            slots[i] = Some(r);
        }
        let out: Vec<R> = slots
            .into_iter()
            .map(|s| s.expect("every index produced exactly one result"))
            .collect();
        let mut workers: Vec<WorkerProfile> = prx.iter().collect();
        workers.sort_by_key(|w| w.worker);
        (
            out,
            ParallelProfile {
                workers,
                region_wall: region_start.elapsed(),
            },
        )
    })
}

/// The default worker count: available parallelism, as Dask defaults to the
/// machine's cores.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equals_serial_map() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 4, 8] {
            let par = parallel_map(&items, threads, |x| x * x + 1);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map(&[] as &[u32], 4, |x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(&[7], 16, |x| x + 1), vec![8]);
    }

    #[test]
    fn order_preserved_with_skewed_work() {
        // Earlier items take longer: completion order inverts input order,
        // the result must not.
        let items: Vec<u64> = (0..50).collect();
        let out = parallel_map(&items, 8, |&x| {
            if x < 5 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn actually_uses_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let items: Vec<u32> = (0..64).collect();
        parallel_map(&items, 4, |_| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            seen.lock().unwrap().insert(std::thread::current().id());
        });
        assert!(seen.lock().unwrap().len() > 1);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn profiled_map_accounts_every_item() {
        let items: Vec<u64> = (0..200).collect();
        let (out, profile) = parallel_map_profiled(&items, 4, |x| x + 1);
        assert_eq!(out, (1..=200).collect::<Vec<u64>>());
        assert_eq!(profile.total_items(), 200);
        assert_eq!(profile.workers.len(), 4);
        assert!(profile.imbalance_ratio() >= 1.0);
    }

    #[test]
    fn profiled_map_serial_path() {
        let (out, profile) = parallel_map_profiled(&[1u32, 2, 3], 1, |x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
        assert_eq!(profile.workers.len(), 1);
        assert_eq!(profile.total_items(), 3);
        assert_eq!(profile.workers[0].idle, Duration::ZERO);
    }
}
