//! The Dask substitute: a from-scratch data-parallel executor.
//!
//! The paper partitions input "per server and processes servers in parallel"
//! with Dask, winning 3–4.6× over single-threaded execution (Figure 12(b)).
//! This module provides the same partition-per-item parallel map: worker
//! threads pull indices from a shared atomic counter (work stealing at
//! item granularity), results flow back over a crossbeam channel, and order
//! is restored at the end. `std::thread::scope` keeps it all borrow-checked
//! with zero `unsafe`.

use crossbeam::channel;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Parallel map preserving input order.
///
/// ```
/// use seagull_core::par::parallel_map;
/// let squares = parallel_map(&[1u64, 2, 3, 4], 2, |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
///
/// Spawns `threads` workers (at least one; one means serial-on-this-thread).
/// `f` runs once per item; panics in workers propagate after all workers
/// finish their current items.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = channel::unbounded::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                // A send can only fail if the receiver was dropped, which
                // cannot happen while this scope is alive.
                let _ = tx.send((i, f(&items[i])));
            });
        }
        drop(tx);
        let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for (i, r) in rx {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index produced exactly one result"))
            .collect()
    })
}

/// The default worker count: available parallelism, as Dask defaults to the
/// machine's cores.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equals_serial_map() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 4, 8] {
            let par = parallel_map(&items, threads, |x| x * x + 1);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map(&[] as &[u32], 4, |x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(&[7], 16, |x| x + 1), vec![8]);
    }

    #[test]
    fn order_preserved_with_skewed_work() {
        // Earlier items take longer: completion order inverts input order,
        // the result must not.
        let items: Vec<u64> = (0..50).collect();
        let out = parallel_map(&items, 8, |&x| {
            if x < 5 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn actually_uses_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let items: Vec<u32> = (0..64).collect();
        parallel_map(&items, 4, |_| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            seen.lock().unwrap().insert(std::thread::current().id());
        });
        assert!(seen.lock().unwrap().len() > 1);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }
}
