//! The AML pipeline substitute: the core orchestration of Seagull.
//!
//! "This pipeline consumes the load, validates it, extracts features, trains
//! a model, deploys the model, and makes it accessible through a REST
//! endpoint. The pipeline tracks the versions of deployed models, performs
//! inference, and evaluates the accuracy of predictions. Results are stored
//! in Cosmos DB. ... A run of the AML pipeline is scheduled once a week per
//! region" (Section 2.2).
//!
//! [`AmlPipeline::run_region_week`] is one such run. Every stage is timed
//! (the Figure 12(a) measurement); predictions and accuracy rows land in the
//! [`DocStore`]; validation anomalies and deployment regressions raise
//! incidents; each run deploys a fresh model version whose accuracy, once
//! measured a week later, feeds the last-known-good fallback rule.
//!
//! Every stage runs under the pipeline's [`ResiliencePolicy`]: transient
//! faults (storage timeouts, torn reads, outages) are retried with seeded
//! backoff, and exhausted retries degrade the run instead of aborting it —
//! poison server batches are quarantined to a dead-letter list, failed
//! train/deploy keeps the registry's last-known-good model serving, and the
//! run report carries a [`DegradedRun`] summary instead of an `Err`. A
//! per-region [`CircuitBreaker`] guards run entry so a region whose blob
//! slice is hard-down stops burning retries until a cooldown elapses.
//!
//! Every run is observed through the pipeline's [`Obs`] handle: each stage
//! runs inside a span (virtual tick = the scheduler's day index; wall time
//! captured by the tracer — the only raw `Instant` timing is the per-fit
//! cost the warm cache credits to its saved-wall counter), retries
//! and backoff feed `(region, stage)`-labelled counters and histograms, the
//! circuit breaker publishes a per-region state gauge, and the parallel
//! stages record per-worker profiles. `StageTiming`/`stage_duration` are
//! derived from the finished spans, so existing reports keep working.
//!
//! The middle of the run — validation, feature extraction, training and
//! inference — executes in one of two [`ExecMode`]s. [`ExecMode::Barrier`]
//! is the classic staged form: every server completes a stage before any
//! server enters the next. [`ExecMode::Dataflow`] (the production default)
//! fuses the per-server work into one operator chain — validate → gap-fill
//! → featurize → fit → predict — scheduled task-granularly on the worker
//! pool, so a straggler server delays only itself while its siblings flow
//! to completion. Results are absorbed serially in server input order at
//! the train-deploy barrier, which is why both modes (at any thread count)
//! produce byte-identical reports, documents, incidents, and stable
//! exports. Deployment and accuracy evaluation stay serial barriers: they
//! mutate region-wide state (the model registry, the serving snapshot)
//! that must observe one consistent fleet.

use crate::classify::ClassifyConfig;
use crate::docstore::DocStore;
use crate::evaluate::{AccuracySummary, EvaluationConfig};
use crate::features::{extract_features, extract_server_features, ServerFeatures};
use crate::incident::{IncidentManager, Severity};
use crate::metrics::evaluate_low_load;
use crate::par::{configured_threads, parallel_map, parallel_map_profiled, parallel_map_tasks};
use crate::registry::{EndpointSet, ModelAccuracy, ModelRegistry};
use crate::resilience::{stage_seed, CircuitBreaker, ResiliencePolicy, RetryResult, StageError};
use crate::validation::{
    validate_region_week, validate_server, validate_servers, Anomaly, DataProfile,
};
use seagull_forecast::{CacheUpdate, FittedModel, ForecastError, Forecaster, Lookup, ModelCache};
use seagull_obs::{Obs, SpanId, Stability};
use seagull_telemetry::blobstore::{BlobKey, BlobStore};
use seagull_telemetry::chaos::InjectedCrash;
use seagull_telemetry::columnar::checksum64;
use seagull_telemetry::csv_quantized;
use seagull_telemetry::extract::{ExtractedServer, RegionWeekBatch};
use seagull_timeseries::{GapFill, TimeSeries, Timestamp};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the middle of a run (validation → features → train-infer) executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Staged batch execution: every server completes a stage before any
    /// server enters the next. Retries, exhaustion, and injected faults
    /// are whole-stage on this path.
    Barrier,
    /// Fused per-server operators scheduled task-granularly on the worker
    /// pool: validate → gap-fill → featurize → fit → predict run as one
    /// task per server, with per-server retries, panic isolation, and
    /// dead-letter quarantine. The deterministic input-order absorb keeps
    /// every output byte-identical to [`ExecMode::Barrier`].
    Dataflow,
}

/// Pipeline configuration (the use-case-specific parameters of Section 2.4).
#[derive(Clone)]
pub struct PipelineConfig {
    /// Telemetry grid in minutes.
    pub grid_min: u32,
    /// Expert-verified data profile for validation.
    pub profile: DataProfile,
    /// Classification thresholds for feature extraction.
    pub classify: ClassifyConfig,
    /// Accuracy-evaluation parameters.
    pub evaluation: EvaluationConfig,
    /// The model trained/deployed each run.
    pub forecaster: Arc<dyn Forecaster>,
    /// Worker threads for the per-server stages and cross-region fan-out
    /// (1 = single-threaded).
    pub threads: usize,
    /// Reuse cached fitted models for servers whose series did not
    /// materially change since the last run (see [`ModelCache`]).
    pub warm_cache: bool,
    /// Accuracy drop (percentage points) that triggers model fallback.
    pub fallback_tolerance: f64,
    /// Cap on anomaly reports per kind per run.
    pub max_anomaly_reports: usize,
    /// Execution mode for the per-server middle of the run (see
    /// [`ExecMode`]).
    pub exec: ExecMode,
    /// Maximum servers per same-shape fit batch on the dataflow path
    /// (1 = fit every server individually). Same-shape servers are grouped
    /// in input order and their cold fits go through one
    /// [`Forecaster::fit_batch`] invocation, which shares the fitting
    /// workspace (and, for the randomized SSA kernel, the sketch) across
    /// the batch; the per-fit results are bitwise identical to solo fits.
    pub fit_batch: usize,
}

impl PipelineConfig {
    /// The production configuration: persistent forecast (previous day),
    /// 5-minute grid, threads from [`configured_threads`] (the machine's
    /// available parallelism, overridable via `SEAGULL_THREADS`), warm
    /// model cache on.
    pub fn production() -> PipelineConfig {
        PipelineConfig {
            grid_min: 5,
            profile: DataProfile::standard(5),
            classify: ClassifyConfig::default(),
            evaluation: EvaluationConfig::default(),
            forecaster: Arc::new(seagull_forecast::PersistentForecast::previous_day()),
            threads: configured_threads(),
            warm_cache: true,
            fallback_tolerance: 10.0,
            max_anomaly_reports: 20,
            exec: ExecMode::Dataflow,
            fit_batch: 16,
        }
    }
}

/// Wall-clock timing of one pipeline stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Stage name (see the `STAGE_ORDER` the dashboard renders).
    pub stage: String,
    /// Wall-clock time spent in the stage.
    pub duration: Duration,
}

/// Degradation summary of one run: what was retried, quarantined, skipped,
/// or fallen back on while still producing a report instead of an error.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct DegradedRun {
    /// Retries spent per stage (only stages that retried appear).
    #[serde(default)]
    pub retries: BTreeMap<String, u32>,
    /// Virtual backoff accounted across all retries, milliseconds.
    #[serde(default)]
    pub backoff_ms: u64,
    /// Servers quarantined to the dead-letter list this run.
    #[serde(default)]
    pub quarantined_servers: Vec<u64>,
    /// True when train/deploy failed and the registry's last-known-good
    /// model was kept serving instead of a new version.
    #[serde(default)]
    pub fallback_deployed: bool,
    /// True when the region's circuit breaker rejected the run outright.
    #[serde(default)]
    pub skipped_by_breaker: bool,
    /// Stages whose retries were exhausted (the run degraded around them).
    #[serde(default)]
    pub exhausted_stages: Vec<String>,
}

impl DegradedRun {
    /// Folds one stage's retry accounting into the summary.
    fn note<T>(&mut self, stage: &str, result: &RetryResult<T>) {
        if result.attempts > 1 {
            *self.retries.entry(stage.to_string()).or_insert(0) += result.attempts - 1;
            self.backoff_ms += result.backoff_ms;
        }
    }

    /// Retries spent across all stages.
    pub fn total_retries(&self) -> u32 {
        self.retries.values().sum()
    }

    /// Whether anything actually degraded.
    pub fn is_degraded(&self) -> bool {
        !self.retries.is_empty()
            || !self.quarantined_servers.is_empty()
            || self.fallback_deployed
            || self.skipped_by_breaker
            || !self.exhausted_stages.is_empty()
    }

    fn into_option(self) -> Option<DegradedRun> {
        if self.is_degraded() {
            Some(self)
        } else {
            None
        }
    }
}

/// The report of one pipeline run (one region, one week).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineRunReport {
    /// Region the run covered.
    pub region: String,
    /// First day of the week the run ingested.
    pub week_start_day: i64,
    /// Size of the ingested blob, bytes (Figure 12 plots runtime vs this).
    pub input_bytes: u64,
    /// Per-stage wall-clock timings, in execution order.
    pub stages: Vec<StageTiming>,
    /// Servers found in the input window.
    pub servers: usize,
    /// Telemetry anomalies flagged by validation.
    pub anomalies: usize,
    /// True if validation blocked the run (no downstream stages executed).
    pub blocked: bool,
    /// Prediction documents written to the store.
    pub predictions_written: usize,
    /// Evaluations of last week's predictions performed this run.
    pub evaluations: usize,
    /// Aggregate accuracy of those evaluations, when any ran.
    pub accuracy: Option<AccuracySummary>,
    /// Model version the deployment stage registered, when it ran.
    pub deployed_version: Option<u64>,
    /// Present when the run retried, quarantined, fell back, or was skipped
    /// by the circuit breaker; `None` for a clean run.
    #[serde(default)]
    pub degraded: Option<DegradedRun>,
}

impl PipelineRunReport {
    /// Duration of a named stage, if it ran.
    pub fn stage_duration(&self, stage: &str) -> Option<Duration> {
        self.stages
            .iter()
            .find(|s| s.stage == stage)
            .map(|s| s.duration)
    }

    /// Total wall-clock across stages.
    pub fn total_duration(&self) -> Duration {
        self.stages.iter().map(|s| s.duration).sum()
    }

    /// Retries spent across all stages this run.
    pub fn total_retries(&self) -> u32 {
        self.degraded.as_ref().map_or(0, DegradedRun::total_retries)
    }

    /// True when the run completed but something degraded.
    pub fn is_degraded(&self) -> bool {
        self.degraded.is_some()
    }
}

/// A stored prediction document (the Cosmos DB row the backup scheduler
/// reads).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictionDoc {
    /// Region the server belongs to.
    pub region: String,
    /// Server the prediction is for.
    pub server_id: u64,
    /// The predicted day (index).
    pub day: i64,
    /// Grid step of `values`, minutes.
    pub step_min: u32,
    /// Predicted load for the whole day.
    pub values: Vec<f64>,
    /// Backup duration the window search should use, minutes.
    pub duration_min: i64,
}

impl PredictionDoc {
    /// Document id.
    pub fn doc_id(region: &str, server_id: u64, day: i64) -> String {
        format!("{region}/{server_id}/{day}")
    }

    /// The prediction as a series.
    pub fn series(&self) -> TimeSeries {
        TimeSeries::new(
            Timestamp::from_days(self.day),
            self.step_min,
            self.values.clone(),
        )
        .expect("stored predictions are day-aligned")
    }

    /// The prediction as a series, consuming the document — moves the values
    /// into the series storage instead of cloning them.
    pub fn into_series(self) -> TimeSeries {
        TimeSeries::new(Timestamp::from_days(self.day), self.step_min, self.values)
            .expect("stored predictions are day-aligned")
    }
}

/// A stored accuracy document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyDoc {
    /// Region the server belongs to.
    pub region: String,
    /// Server the evaluation covers.
    pub server_id: u64,
    /// Backup day that was evaluated.
    pub day: i64,
    /// Whether the predicted low-load window was correct (Definition 7).
    pub window_correct: bool,
    /// Whether the predicted load was accurate (Definition 2).
    pub load_accurate: bool,
    /// Bucket ratio over the predicted window, percent.
    pub window_bucket_ratio: f64,
}

/// A quarantined poison batch: a server whose training input caused a
/// non-benign model failure, recorded for offline triage instead of
/// aborting the region's run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeadLetterDoc {
    /// Region the server belongs to.
    pub region: String,
    /// Server whose batch was quarantined.
    pub server_id: u64,
    /// Week the run ingested.
    pub week_start_day: i64,
    /// The stage that quarantined it.
    pub stage: String,
    /// Why the batch was poisonous.
    pub reason: String,
}

impl DeadLetterDoc {
    /// Document id.
    pub fn doc_id(region: &str, server_id: u64, week_start_day: i64) -> String {
        format!("{region}/{server_id}/{week_start_day}")
    }
}

/// Per-server cache consequence of one train-infer item, applied serially
/// after the parallel region joins so cache state never depends on worker
/// interleaving.
enum CacheOutcome {
    /// Reused a cached fit; recency for this key is bumped at commit.
    Hit(String),
    /// A fresh fit to insert at commit.
    Fresh(Box<CacheUpdate>),
    /// No cache interaction (cache off, or insufficient history to fit).
    Bypass,
}

/// How one server's train-infer item will be served, resolved once (one
/// counted cache probe) before the fit so shape batches can be formed from
/// the servers that actually need a cold fit.
enum FitPath {
    /// Warm cache off: fit cold, no cache writes.
    Bypass,
    /// Warm-cache hit: serve the cached model, re-anchored.
    Hit(seagull_forecast::CachedFit, String),
    /// Warm-cache miss: fit cold and package the entry for the serial
    /// commit barrier.
    Miss { key: String, fingerprint: u64 },
}

/// Result of one server's train-infer item: the prediction doc (`None` for
/// young servers), the deferred cache write, and the fit-kernel label of any
/// cold fit that ran — or the `(server_id, reason)` poison record.
type FitOutcome =
    Result<(Option<PredictionDoc>, CacheOutcome, Option<&'static str>), (u64, String)>;

/// A pre-computed fit from a shape batch, consumed in place of a solo fit:
/// the kernel result plus the wall time attributed to that slot.
type Prefit = (Result<Box<dyn FittedModel>, ForecastError>, Duration);

/// What the mid-run stages (validation → features → train-infer →
/// docstore-write) hand to the shared tail (deployment, accuracy-eval).
/// The mid-stage drivers return `None` when validation blocks the run.
struct MidStages {
    /// Per-server features, index-aligned with the extracted servers.
    /// `None` marks a server whose fused operator panicked (dataflow only;
    /// the barrier path always produces `Some`).
    features: Vec<Option<ServerFeatures>>,
    /// Prediction documents materialized this run, in server input order.
    predictions: Vec<PredictionDoc>,
    /// True when the whole training stage failed (barrier path only) and
    /// deployment must keep the last-known-good model serving.
    train_failed: bool,
}

/// Everything one fused per-server operator produces, absorbed serially in
/// server input order after the fan-out joins.
struct FusedServerOutcome {
    /// The gap-filled series, written back to the fleet slice so accuracy
    /// evaluation sees the same repaired input the barrier path produces.
    series: TimeSeries,
    /// Per-server validation anomaly, if flagged (on the unfilled series).
    anomaly: Option<Anomaly>,
    /// Extracted features (extraction itself cannot fail).
    features: ServerFeatures,
    /// The backup-day prediction, when the model produced one.
    prediction: Option<PredictionDoc>,
    /// Cache consequence, committed serially at the absorb barrier.
    cache: CacheOutcome,
    /// Kernel label of the cold fit, when one ran (None on cache hits,
    /// bypasses without a fit, and failures).
    fit_kernel: Option<&'static str>,
    /// Poison reason when the fit failed permanently or exhausted retries.
    poison: Option<String>,
    /// Retries burned by this server's fit.
    retries: u32,
    /// Virtual backoff accounted by those retries, milliseconds.
    backoff_ms: u64,
    /// True when the fit failed by exhausting transient-fault retries.
    exhausted: bool,
    /// Wall time of validate + gap-fill + featurize.
    featurize_wall: Duration,
    /// Wall time of fit + predict, including retries.
    model_wall: Duration,
}

/// Content fingerprint of a training series: FNV-1a over the quantized
/// sample bytes plus the grid step. The start timestamp is deliberately
/// excluded so a weekly-periodic server hashes identically week over week;
/// [`ModelCache`] checks grid shape and whole-week alignment separately.
fn series_fingerprint(series: &TimeSeries) -> u64 {
    let mut bytes = Vec::with_capacity(8 + series.len() * 8);
    bytes.extend_from_slice(&u64::from(series.step_min()).to_le_bytes());
    for &v in series.values() {
        bytes.extend_from_slice(&csv_quantized(v).to_le_bytes());
    }
    checksum64(&bytes)
}

/// One successful deployment, as announced to a [`DeploySink`].
///
/// Carries everything a serving layer needs to assemble an immutable
/// region snapshot: the freshly deployed version, the predictions this run
/// materialized, and (when the warm cache is on) a handle to the model
/// cache so per-server fitted models can be extracted for horizons the
/// materialized predictions do not cover.
pub struct DeployEvent<'a> {
    /// Region the deployment belongs to.
    pub region: &'a str,
    /// The model-registry version that just started serving.
    pub version: u64,
    /// First day of the week whose data trained this version.
    pub week_start_day: i64,
    /// Name of the deployed forecaster (the registry's `model_name`).
    pub model_name: &'a str,
    /// Predictions written by this run, in server order.
    pub predictions: &'a [PredictionDoc],
    /// The pipeline's warm-model cache, when enabled for this run.
    pub cache: Option<&'a ModelCache>,
}

/// Observer of the deployment stage — the hook a prediction-serving layer
/// registers to receive versioned snapshots.
///
/// "The pipeline ... deploys the model, and makes it accessible through a
/// REST endpoint" (Section 2.2): [`AmlPipeline`] announces every successful
/// deployment through this trait so an out-of-pipeline service can publish
/// the new snapshot atomically. A failed deployment announces
/// [`DeploySink::on_fallback`] instead — the sink must keep serving its
/// last-known-good snapshot, mirroring the registry's fallback rule.
///
/// Implementations are called from inside pipeline runs (possibly from
/// several regions concurrently under [`AmlPipeline::run_fleet_week`]) and
/// must be cheap and non-blocking; region arguments are disjoint across
/// concurrent calls.
pub trait DeploySink: Send + Sync {
    /// A new model version was deployed for `event.region`.
    fn on_deploy(&self, event: &DeployEvent<'_>);

    /// Deployment failed; the last-known-good version keeps serving.
    fn on_fallback(&self, region: &str, week_start_day: i64) {
        let _ = (region, week_start_day);
    }
}

/// One previously-served prediction scored against the actual load that
/// arrived a week later (the paper's §5.4 deployment accuracy), as
/// announced to an [`AccuracySink`].
#[derive(Clone, Debug, PartialEq)]
pub struct ScoredPrediction {
    /// Server the prediction was served for.
    pub server_id: u64,
    /// Day index the prediction covered.
    pub day: i64,
    /// Classification label the server trained under this week (the
    /// cache-key class, e.g. `stable` / `unstable`).
    pub class: &'static str,
    /// Whether the predicted low-load window matched the true one.
    pub window_correct: bool,
    /// Whether predicted load in the window was accurate (Definition 9).
    pub load_accurate: bool,
    /// Bucket-ratio score of the predicted window, percent.
    pub window_bucket_ratio: f64,
}

/// Observer of the accuracy-evaluation stage — the hook an online accuracy
/// monitor registers to receive served-vs-actual scores as actuals arrive
/// with the next region-week of telemetry.
///
/// Like [`DeploySink`], implementations are called from inside pipeline
/// runs — possibly from several regions concurrently under
/// [`AmlPipeline::run_fleet_week`] — and must be cheap and non-blocking.
/// Region arguments are disjoint across concurrent calls, so an
/// implementation that keys its state by region stays deterministic; any
/// cross-region aggregation (and anything that raises incidents) must be
/// deferred to a serial step after the fleet barrier.
pub trait AccuracySink: Send + Sync {
    /// Scores for `region`'s previously-served predictions, evaluated
    /// against the telemetry of the week starting at `week_start_day`.
    /// Rows arrive in server order.
    fn on_scores(&self, region: &str, week_start_day: i64, scores: &[ScoredPrediction]);
}

/// Collection names in the [`DocStore`].
pub mod collections {
    /// Per-server next-week prediction documents.
    pub const PREDICTIONS: &str = "predictions";
    /// Per-server backup-day accuracy documents.
    pub const ACCURACY: &str = "accuracy";
    /// Per-server extracted-feature documents.
    pub const FEATURES: &str = "features";
    /// Run reports, one per `(region, week)`.
    pub const RUNS: &str = "runs";
    /// Quarantined poison batches.
    pub const DEAD_LETTER: &str = "dead-letter";
}

/// The pipeline with its shared service handles.
#[derive(Clone)]
pub struct AmlPipeline {
    /// Knobs the run was configured with.
    pub config: PipelineConfig,
    /// Blob store the runs ingest from.
    pub blobs: Arc<dyn BlobStore>,
    /// Document store results land in.
    pub docs: DocStore,
    /// Shared incident log.
    pub incidents: IncidentManager,
    /// Model version registry fed by the deployment stage.
    pub registry: ModelRegistry,
    /// Deployment endpoints (the AML endpoint substitute).
    pub endpoints: EndpointSet,
    /// Retry/backoff/chaos policy threaded through every stage.
    pub resilience: ResiliencePolicy,
    /// Per-region breaker guarding run entry; ticks are day indices.
    pub breaker: CircuitBreaker,
    /// Observability handle: metrics registry + span tracer for every run.
    pub obs: Obs,
    /// Warm-model cache shared across runs and regions (see [`ModelCache`]).
    /// Keys are region-prefixed, so concurrent region runs touch disjoint
    /// entries; bypassed when [`PipelineConfig::warm_cache`] is off.
    pub cache: Arc<ModelCache>,
    /// Optional serving-layer hook, announced to on every deployment (see
    /// [`DeploySink`]). Shared across fleet scratch clones.
    pub deploy_sink: Option<Arc<dyn DeploySink>>,
    /// Optional accuracy-monitor hook, announced to whenever the
    /// accuracy-evaluation stage scores previously-served predictions (see
    /// [`AccuracySink`]). Shared across fleet scratch clones.
    pub accuracy_sink: Option<Arc<dyn AccuracySink>>,
}

impl AmlPipeline {
    /// Assembles a pipeline over the given blob store with the default
    /// resilience policy.
    pub fn new(config: PipelineConfig, blobs: Arc<dyn BlobStore>) -> AmlPipeline {
        AmlPipeline::with_resilience(config, blobs, ResiliencePolicy::default())
    }

    /// Assembles a pipeline with an explicit resilience policy (retry
    /// tuning, breaker thresholds, jitter seed, stage-fault hook).
    pub fn with_resilience(
        config: PipelineConfig,
        blobs: Arc<dyn BlobStore>,
        resilience: ResiliencePolicy,
    ) -> AmlPipeline {
        let breaker = CircuitBreaker::new(resilience.breaker);
        AmlPipeline {
            config,
            blobs,
            docs: DocStore::new(),
            incidents: IncidentManager::new(),
            registry: ModelRegistry::new(),
            endpoints: EndpointSet::new(),
            resilience,
            breaker,
            obs: Obs::new(),
            cache: Arc::new(ModelCache::new()),
            deploy_sink: None,
            accuracy_sink: None,
        }
    }

    /// Shares an external observability handle (e.g. with a dashboard or a
    /// runner) instead of the pipeline-private one.
    pub fn with_obs(mut self, obs: Obs) -> AmlPipeline {
        self.obs = obs;
        self
    }

    /// Registers a serving-layer deploy hook: every successful deployment
    /// (and every fallback) is announced to `sink` so it can swap in the
    /// region's new model snapshot.
    pub fn with_deploy_sink(mut self, sink: Arc<dyn DeploySink>) -> AmlPipeline {
        self.deploy_sink = Some(sink);
        self
    }

    /// Registers an accuracy-monitor hook: every accuracy-evaluation stage
    /// that scores previously-served predictions announces the per-server
    /// scores (with classification labels) to `sink`.
    pub fn with_accuracy_sink(mut self, sink: Arc<dyn AccuracySink>) -> AmlPipeline {
        self.accuracy_sink = Some(sink);
        self
    }

    /// Virtual scheduler tick for a day index (clamped at zero).
    fn vtick(day: i64) -> u64 {
        day.max(0) as u64
    }

    /// Starts a stage span under the run span.
    fn stage_span(&self, run: SpanId, stage: &str, region: &str, tick: u64) -> SpanId {
        self.obs
            .tracer()
            .child(run, stage, &[("region", region)], tick)
    }

    /// Ends a stage span and folds its wall duration into the report and
    /// the per-stage metrics.
    fn finish_stage(
        &self,
        report: &mut PipelineRunReport,
        span: SpanId,
        stage: &str,
        region: &str,
        tick: u64,
    ) {
        self.obs.tracer().end(span, tick);
        let wall = self.obs.tracer().wall_duration(span).unwrap_or_default();
        self.note_stage(report, stage, region, wall);
    }

    /// [`AmlPipeline::finish_stage`] with an externally measured wall
    /// duration: the dataflow path prices the features stage at the summed
    /// per-server featurize walls measured inside the fused operators,
    /// since no open span covers that interleaved work.
    fn finish_stage_with_wall(
        &self,
        report: &mut PipelineRunReport,
        span: SpanId,
        stage: &str,
        region: &str,
        tick: u64,
        wall: Duration,
    ) {
        self.obs.tracer().end_with_wall(span, tick, wall);
        self.note_stage(report, stage, region, wall);
    }

    /// Folds a finished stage's wall duration into the report (so
    /// [`PipelineRunReport::stage_duration`] keeps working) and the
    /// per-stage metrics.
    fn note_stage(
        &self,
        report: &mut PipelineRunReport,
        stage: &str,
        region: &str,
        wall: Duration,
    ) {
        let labels = [("region", region), ("stage", stage)];
        let registry = self.obs.registry();
        registry.counter("seagull_stage_runs_total", &labels).inc();
        registry
            .histogram_with("seagull_stage_wall_seconds", &labels, Stability::Volatile)
            .observe(wall.as_secs_f64());
        report.stages.push(StageTiming {
            stage: stage.into(),
            duration: wall,
        });
    }

    /// Raises one validation anomaly as an incident: blocking anomalies are
    /// critical, the rest warnings. Shared by both execution modes so the
    /// incident strings (and therefore the stable export) stay identical.
    fn raise_validation_anomaly(&self, region: &str, a: &Anomaly) {
        let severity = if a.is_blocking() {
            Severity::Critical
        } else {
            Severity::Warning
        };
        self.incidents
            .raise(severity, "validation", region, format!("{a:?}"));
    }

    /// Runs a stage closure under the retry policy, with the policy's
    /// stage-fault hook injected ahead of the real work.
    fn retry_stage<T>(
        &self,
        stage: &str,
        region: &str,
        tick: i64,
        mut op: impl FnMut() -> Result<T, StageError>,
    ) -> RetryResult<T> {
        let seed = stage_seed(self.resilience.seed, stage, region, tick);
        self.resilience
            .retry
            .run_observed(seed, self.obs.registry(), stage, region, |attempt| {
                if self
                    .resilience
                    .chaos
                    .should_fail(stage, region, tick, attempt)
                {
                    return Err(StageError::transient(format!(
                        "injected {stage} fault (attempt {attempt})"
                    )));
                }
                op()
            })
    }

    /// Runs the weekly pipeline for one region: ingestion → validation →
    /// feature extraction → training & inference → deployment → accuracy
    /// evaluation (of the previous run's predictions) → result storage.
    ///
    /// Never returns an error: transient faults are retried, and exhausted
    /// retries degrade the run (quarantine, fallback, skip) with the
    /// details summarized in [`PipelineRunReport::degraded`].
    pub fn run_region_week(&self, region: &str, week_start_day: i64) -> PipelineRunReport {
        let mut report = PipelineRunReport {
            region: region.to_string(),
            week_start_day,
            input_bytes: 0,
            stages: Vec::new(),
            servers: 0,
            anomalies: 0,
            blocked: false,
            predictions_written: 0,
            evaluations: 0,
            accuracy: None,
            deployed_version: None,
            degraded: None,
        };
        let mut degraded = DegradedRun::default();
        let tick = week_start_day;
        let vt = Self::vtick(week_start_day);
        let run_span = self
            .obs
            .tracer()
            .start("run-week", &[("region", region)], vt);
        self.obs
            .registry()
            .counter("seagull_pipeline_runs_total", &[("region", region)])
            .inc();

        // ---- Circuit-breaker gate --------------------------------------------
        // A region whose blob slice is hard-down stops burning retries: the
        // open breaker rejects runs until the cooldown admits a probe.
        if !self.breaker.allow(region, tick) {
            self.breaker.publish_region(self.obs.registry(), region);
            self.obs
                .registry()
                .counter("seagull_pipeline_blocked_total", &[("region", region)])
                .inc();
            degraded.skipped_by_breaker = true;
            report.blocked = true;
            report.degraded = degraded.into_option();
            self.obs.tracer().end(run_span, vt);
            self.store_run(&report);
            return report;
        }
        self.breaker.publish_region(self.obs.registry(), region);

        // ---- Data Ingestion -------------------------------------------------
        // Each stage entry is a kill-point: the chaos policy's kill hook can
        // terminate the process here, modelling a crash at a stage boundary.
        self.resilience.chaos.kill_point("ingestion", region, tick);
        let span = self.stage_span(run_span, "ingestion", region, vt);
        let key = BlobKey::extracted(region, week_start_day);
        let fetched = self.retry_stage("ingestion", region, tick, || {
            let blob = self.blobs.get(&key).map_err(|e| StageError::from_io(&e))?;
            // A decode failure is treated as transient: torn reads return a
            // truncated prefix — a CSV parse error or a columnar checksum
            // mismatch — and a re-read yields the full blob.
            let batch = RegionWeekBatch::decode(&blob)
                .map_err(|e| StageError::transient(format!("unreadable blob {key}: {e}")))?;
            Ok((blob.len() as u64, batch))
        });
        degraded.note("ingestion", &fetched);
        let batch = match fetched.outcome {
            Ok((bytes, batch)) => {
                report.input_bytes = bytes;
                // The breaker tracks the health of the region's blob slice.
                self.breaker.record_success(region, tick, &self.incidents);
                batch
            }
            Err(e) => {
                self.incidents.raise_keyed(
                    Severity::Critical,
                    "ingestion",
                    region,
                    format!("missing or unreadable input blob {key}"),
                    format!(
                        "missing or unreadable input blob {key} after {} attempt(s): {}",
                        fetched.attempts, e.message
                    ),
                );
                if e.transient {
                    // Infrastructure failure (outage, flakiness) — feed the
                    // breaker so a sustained outage trips it. Absent data
                    // (NotFound) is not an infrastructure signal.
                    self.breaker.record_failure(region, tick, &self.incidents);
                    degraded.exhausted_stages.push("ingestion".into());
                }
                self.breaker.publish_region(self.obs.registry(), region);
                self.obs
                    .registry()
                    .counter("seagull_pipeline_blocked_total", &[("region", region)])
                    .inc();
                report.blocked = true;
                self.finish_stage(&mut report, span, "ingestion", region, vt);
                report.degraded = degraded.into_option();
                self.obs.tracer().end(run_span, vt);
                self.store_run(&report);
                return report;
            }
        };
        self.breaker.publish_region(self.obs.registry(), region);
        // Columnar blobs yield zero-copy views into the shared decode buffer;
        // CSV rows are re-gridded into fresh series.
        let mut servers: Vec<ExtractedServer> = batch.extract(self.config.grid_min);
        report.servers = servers.len();
        self.finish_stage(&mut report, span, "ingestion", region, vt);

        // ---- Validation → features → train & infer ---------------------------
        // The middle of the run is mode-dispatched (see [`ExecMode`]): the
        // barrier path runs the classic per-stage batches; the dataflow
        // path fuses the per-server work into one operator chain each,
        // scheduled task-granularly. Both converge here, at the
        // train-deploy barrier, with byte-identical outputs.
        let mid = match self.config.exec {
            ExecMode::Barrier => self.mid_barrier(
                region,
                week_start_day,
                tick,
                vt,
                run_span,
                &mut report,
                &mut degraded,
                &batch,
                &mut servers,
            ),
            ExecMode::Dataflow => self.mid_dataflow(
                region,
                week_start_day,
                tick,
                vt,
                run_span,
                &mut report,
                &mut degraded,
                &batch,
                &mut servers,
            ),
        };
        let Some(MidStages {
            features,
            predictions,
            train_failed,
        }) = mid
        else {
            // Validation blocked the run: nothing downstream executes.
            self.obs
                .registry()
                .counter("seagull_pipeline_blocked_total", &[("region", region)])
                .inc();
            report.blocked = true;
            report.degraded = degraded.into_option();
            self.obs.tracer().end(run_span, vt);
            self.store_run(&report);
            return report;
        };

        // ---- Model Deployment --------------------------------------------------
        self.resilience.chaos.kill_point("deployment", region, tick);
        let span = self.stage_span(run_span, "deployment", region, vt);
        // The registry/endpoint mutation itself is infallible; the retried
        // gate models the external AML deployment call, which the
        // stage-fault hook can fail. Mutation happens only after the gate
        // passes so retries never double-deploy.
        let deploy_gate = self.retry_stage("deployment", region, tick, || Ok(()));
        degraded.note("deployment", &deploy_gate);
        if train_failed || deploy_gate.outcome.is_err() {
            // Keep serving the registry's last-known-good model: neither a
            // new version nor a new endpoint is published.
            if deploy_gate.outcome.is_err() {
                degraded.exhausted_stages.push("deployment".into());
            }
            degraded.fallback_deployed = true;
            let serving = self
                .registry
                .deployed(region)
                .map(|v| format!("v{} ({})", v.version, v.model_name))
                .unwrap_or_else(|| "no prior version".into());
            self.incidents.raise_keyed(
                Severity::Critical,
                "deployment",
                region,
                "deploy-failed",
                format!(
                    "model deployment failed in week starting day {week_start_day}; \
                     serving last-known-good: {serving}"
                ),
            );
            // The serving layer keeps its last published (known-good)
            // snapshot for this region: no swap happens.
            if let Some(sink) = &self.deploy_sink {
                sink.on_fallback(region, week_start_day);
            }
        } else {
            let model_name = self.config.forecaster.name();
            let version = self.registry.deploy(region, model_name, week_start_day);
            self.endpoints
                .publish(region, Arc::clone(&self.config.forecaster));
            report.deployed_version = Some(version);
            if let Some(sink) = &self.deploy_sink {
                sink.on_deploy(&DeployEvent {
                    region,
                    version,
                    week_start_day,
                    model_name,
                    predictions: &predictions,
                    cache: self.config.warm_cache.then_some(&*self.cache),
                });
            }
        }
        self.finish_stage(&mut report, span, "deployment", region, vt);

        // ---- Accuracy Evaluation ------------------------------------------------
        // Score the predictions stored by previous runs against the true load
        // that arrived in this week's data.
        self.resilience
            .chaos
            .kill_point("accuracy-eval", region, tick);
        let span = self.stage_span(run_span, "accuracy-eval", region, vt);
        let (eval_rows, eval_profile): (Vec<Option<AccuracyDoc>>, _) =
            parallel_map_profiled(&servers, self.config.threads, |s| {
                let day = backup_day_for_extracted(s, week_start_day);
                let id = PredictionDoc::doc_id(region, s.id.0, day);
                let doc: PredictionDoc = self.docs.get(collections::PREDICTIONS, &id).ok()?;
                let truth = s.series.day(day)?;
                let duration_min = doc.duration_min.max(self.config.grid_min as i64) as u32;
                let eval = evaluate_low_load(
                    &truth,
                    &doc.into_series(),
                    duration_min,
                    &self.config.evaluation.accuracy,
                )?;
                Some(AccuracyDoc {
                    region: region.to_string(),
                    server_id: s.id.0,
                    day,
                    window_correct: eval.window_correct,
                    load_accurate: eval.load_accurate,
                    window_bucket_ratio: eval.window_bucket_ratio,
                })
            });
        eval_profile.record(self.obs.registry(), "accuracy-eval");
        // Announce served-vs-actual scores to the online accuracy monitor
        // before flattening: eval rows index-align with `servers` (and thus
        // `features`), which is where the classification labels live. A
        // server whose fused operator panicked has no features and is
        // skipped (it has no fresh prediction either way).
        if let Some(sink) = &self.accuracy_sink {
            let scores: Vec<ScoredPrediction> = eval_rows
                .iter()
                .zip(&features)
                .filter_map(|(row, f)| match (row, f) {
                    (Some(e), Some(f)) => Some(ScoredPrediction {
                        server_id: e.server_id,
                        day: e.day,
                        class: f.pattern.label(),
                        window_correct: e.window_correct,
                        load_accurate: e.load_accurate,
                        window_bucket_ratio: e.window_bucket_ratio,
                    }),
                    _ => None,
                })
                .collect();
            if !scores.is_empty() {
                sink.on_scores(region, week_start_day, &scores);
            }
        }
        let evals: Vec<AccuracyDoc> = eval_rows.into_iter().flatten().collect();
        report.evaluations = evals.len();
        if !evals.is_empty() {
            let n = evals.len() as f64;
            let wc = 100.0 * evals.iter().filter(|e| e.window_correct).count() as f64 / n;
            let la = 100.0 * evals.iter().filter(|e| e.load_accurate).count() as f64 / n;
            report.accuracy = Some(AccuracySummary {
                servers: report.servers,
                evaluated: evals.len(),
                window_correct_pct: wc,
                load_accurate_pct: la,
            });
            for e in &evals {
                let id = format!("{region}/{}/{}", e.server_id, e.day);
                let _ = self.docs.upsert(collections::ACCURACY, &id, e);
            }
            // Feed the registry; the fallback rule compares against the last
            // known good version and raises an incident on regression. A run
            // that kept the last-known-good model has no new version to score.
            if let Some(version) = report.deployed_version {
                self.registry.record_accuracy(
                    region,
                    version,
                    ModelAccuracy {
                        window_correct_pct: wc,
                        load_accurate_pct: la,
                        predictable_pct: 0.0,
                    },
                );
                self.registry.maybe_fallback(
                    region,
                    self.config.fallback_tolerance,
                    &self.incidents,
                );
            }
        }
        self.finish_stage(&mut report, span, "accuracy-eval", region, vt);

        // Run-level outcome counters (all deterministic, hence stable).
        let registry = self.obs.registry();
        let region_label = [("region", region)];
        registry
            .counter("seagull_predictions_written_total", &region_label)
            .add(report.predictions_written as u64);
        registry
            .counter("seagull_evaluations_total", &region_label)
            .add(report.evaluations as u64);
        registry
            .counter("seagull_anomalies_total", &region_label)
            .add(report.anomalies as u64);
        self.obs.tracer().end(run_span, vt);

        report.degraded = degraded.into_option();
        self.store_run(&report);
        report
    }

    fn store_run(&self, report: &PipelineRunReport) {
        let id = format!("{}/{}", report.region, report.week_start_day);
        let _ = self.docs.upsert(collections::RUNS, &id, report);
    }

    /// Fits one server's model and materializes its backup-day prediction —
    /// the per-server body of the train-infer stage, shared verbatim by the
    /// barrier and dataflow execution paths.
    ///
    /// With the warm cache on, the server first looks up its cached fitted
    /// model (read-only, safe inside a parallel region); a hit skips the
    /// fit and re-anchors the cached prediction by a whole-week shift. The
    /// returned [`CacheOutcome`] is the deferred write side: the caller
    /// commits fresh fits and hit recency serially in item order after the
    /// join, so cache state never depends on worker interleaving.
    ///
    /// `Err` carries the `(server_id, reason)` poison record; too little
    /// history is the normal young-server case and yields `Ok((None, _))`.
    fn fit_server(
        &self,
        s: &ExtractedServer,
        class: &'static str,
        region: &str,
        next_week: i64,
    ) -> FitOutcome {
        let path = self.fit_path(s, class, region);
        self.finish_fit(s, class, region, next_week, &path, &mut None)
    }

    /// Resolves how a server's fit will be served: a warm-cache probe (one
    /// counted lookup) when the cache is on, else a plain cold fit. Safe to
    /// call from inside a parallel region; the probe is read-only.
    fn fit_path(&self, s: &ExtractedServer, class: &str, region: &str) -> FitPath {
        if !self.config.warm_cache {
            return FitPath::Bypass;
        }
        let key = format!("{region}/{}", s.id.0);
        let fingerprint = series_fingerprint(&s.series);
        match self.cache.lookup(&key, fingerprint, class, &s.series) {
            Lookup::Hit(hit) => FitPath::Hit(hit, key),
            Lookup::Miss(_) => FitPath::Miss { key, fingerprint },
        }
    }

    /// Completes one server's train-infer item for an already-resolved
    /// [`FitPath`]. On the cold paths a pre-computed fit (from a shape
    /// batch) is consumed from `prefit` when present — its results are
    /// bitwise identical to a solo fit by the [`Forecaster::fit_batch`]
    /// contract — otherwise the forecaster fits here. Returns the
    /// prediction doc, the cache consequence, and the fit-kernel label of
    /// any cold fit that ran.
    fn finish_fit(
        &self,
        s: &ExtractedServer,
        class: &'static str,
        region: &str,
        next_week: i64,
        path: &FitPath,
        prefit: &mut Option<Prefit>,
    ) -> FitOutcome {
        let grid = self.config.grid_min;
        let points_per_day = (seagull_timeseries::MINUTES_PER_DAY / grid as i64) as usize;
        // The server's backup day next week.
        let backup_day = s.default_backup_start.day_index() + 7;
        let horizon_days = (backup_day + 1 - next_week).max(1) as usize;
        let horizon = horizon_days * points_per_day;
        let doc_of = |pred: TimeSeries| {
            pred.day(backup_day).map(|day| PredictionDoc {
                region: region.to_string(),
                server_id: s.id.0,
                day: backup_day,
                step_min: grid,
                values: day.into_values(),
                duration_min: s.default_backup_end - s.default_backup_start,
            })
        };
        if let FitPath::Hit(hit, key) = path {
            let shifted = hit
                .fitted
                .predict(horizon)
                .and_then(|p| p.shifted(hit.shift_min).map_err(ForecastError::Series));
            return match shifted {
                Ok(pred) => Ok((doc_of(pred), CacheOutcome::Hit(key.clone()), None)),
                Err(e) => Err((s.id.0, e.to_string())),
            };
        }
        // Cold fit (cache off or probe missed). Fit-then-predict rather
        // than `fit_predict` so the resolved kernel label is observable;
        // the bytes are identical.
        let fit_start = Instant::now();
        let (fit, fit_wall) = match prefit.take() {
            Some((fit, wall)) => (fit, wall),
            None => {
                let fit = self.config.forecaster.fit(&s.series);
                (fit, fit_start.elapsed())
            }
        };
        match fit {
            Ok(boxed) => {
                let kernel = boxed.fit_kernel();
                let fitted: Arc<dyn FittedModel> = Arc::from(boxed);
                match fitted.predict(horizon) {
                    Ok(pred) => {
                        let outcome = match path {
                            FitPath::Miss { key, fingerprint } => {
                                CacheOutcome::Fresh(Box::new(CacheUpdate::new(
                                    key.clone(),
                                    *fingerprint,
                                    class,
                                    Arc::clone(&fitted),
                                    &s.series,
                                    fit_wall,
                                )))
                            }
                            _ => CacheOutcome::Bypass,
                        };
                        Ok((doc_of(pred), outcome, Some(kernel)))
                    }
                    Err(ForecastError::InsufficientHistory { .. }) => {
                        Ok((None, CacheOutcome::Bypass, Some(kernel)))
                    }
                    Err(e) => Err((s.id.0, e.to_string())),
                }
            }
            // Too little history is the normal young-server case.
            Err(ForecastError::InsufficientHistory { .. }) => {
                Ok((None, CacheOutcome::Bypass, None))
            }
            // Anything else is poison input or a broken model.
            Err(e) => Err((s.id.0, e.to_string())),
        }
    }

    /// Runs one same-shape fit batch as a single pool task: per-server
    /// prep (validate → gap-fill → featurize → cache probe), one shared
    /// [`Forecaster::fit_batch`] kernel invocation for the members that
    /// need a cold fit, then each server's retry loop and finish.
    ///
    /// Panic isolation stays per-server throughout: every phase that runs
    /// model or validation code for one server runs under its own
    /// [`isolate`], and a panic inside the *shared* fit invocation simply
    /// discards the batch results so every member falls back to a solo fit
    /// under its own isolation — a poison server quarantines alone even
    /// mid-batch. Results are keyed by server index.
    fn run_fit_batch(
        &self,
        batch: &[usize],
        servers: &[ExtractedServer],
        region: &str,
        tick: i64,
        next_week: i64,
        server_validation: bool,
    ) -> Vec<(usize, Result<FusedServerOutcome, String>)> {
        let base_seed = stage_seed(self.resilience.seed, "train-infer", region, tick);
        let chaos = &self.resilience.chaos;
        let retry = &self.resilience.retry;

        struct Prep {
            filled: ExtractedServer,
            anomaly: Option<Anomaly>,
            features: ServerFeatures,
            class: &'static str,
            path: FitPath,
            featurize_wall: Duration,
        }

        // Phase 1: per-server prep. The cache probe is counted here, once
        // per server, so batch membership below reflects real cold fits.
        let prepared: Vec<(usize, Result<Prep, String>)> = batch
            .iter()
            .map(|&i| {
                let s = &servers[i];
                let prep = isolate(|| {
                    let feat_start = Instant::now();
                    let anomaly = if server_validation {
                        validate_server(s, &self.config.profile)
                    } else {
                        None
                    };
                    // Repair tolerated gaps locally; the filled series is
                    // written back at the absorb barrier so accuracy
                    // evaluation sees the same repaired input the barrier
                    // path produces.
                    let mut series = s.series.clone();
                    seagull_timeseries::fill_gaps(&mut series, GapFill::Linear);
                    let filled = ExtractedServer {
                        id: s.id,
                        series,
                        default_backup_start: s.default_backup_start,
                        default_backup_end: s.default_backup_end,
                    };
                    let features = extract_server_features(&filled, &self.config.classify);
                    let class = features.pattern.label();
                    let path = self.fit_path(&filled, class, region);
                    Prep {
                        filled,
                        anomaly,
                        features,
                        class,
                        path,
                        featurize_wall: feat_start.elapsed(),
                    }
                });
                (i, prep)
            })
            .collect();

        // Phase 2: one shared kernel invocation for the batch's cold fits.
        let cold: Vec<usize> = prepared
            .iter()
            .enumerate()
            .filter_map(|(slot, (_, prep))| match prep {
                Ok(p) if !matches!(p.path, FitPath::Hit(..)) => Some(slot),
                _ => None,
            })
            .collect();
        let mut prefits: Vec<Option<Prefit>> = prepared.iter().map(|_| None).collect();
        if cold.len() > 1 {
            let histories: Vec<&TimeSeries> = cold
                .iter()
                .map(|&slot| match &prepared[slot].1 {
                    Ok(p) => &p.filled.series,
                    Err(_) => unreachable!("cold slots come from prepared servers"),
                })
                .collect();
            let batch_start = Instant::now();
            if let Ok(fits) = isolate(|| self.config.forecaster.fit_batch(&histories)) {
                // Even wall split: it only feeds volatile timing metrics
                // and the cache's saved-wall credit.
                let share = batch_start.elapsed() / cold.len() as u32;
                for (&slot, fit) in cold.iter().zip(fits) {
                    prefits[slot] = Some((fit, share));
                }
            }
        }

        // Phase 3: per-server retry loop and finish. The stage-level chaos
        // hook and the server-granular hook both inject ahead of the real
        // fit, and a transient fault burns only this server's retry
        // budget; the pre-computed batch fit is consumed by the first
        // non-injected attempt (later attempts refit solo — identical
        // bytes). The seed mixes the server id so jitter schedules are
        // independent.
        prepared
            .into_iter()
            .zip(prefits)
            .map(|((i, prep), mut prefit)| {
                let s = &servers[i];
                let out = match prep {
                    Err(msg) => Err(msg),
                    Ok(p) => isolate(move || {
                        let model_start = Instant::now();
                        let seed = base_seed ^ s.id.0.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                        let fitted = retry.run(seed, |attempt| {
                            if chaos.should_fail("train-infer", region, tick, attempt)
                                || chaos.should_fail_server(
                                    "train-infer",
                                    region,
                                    s.id.0,
                                    tick,
                                    attempt,
                                )
                            {
                                return Err(StageError::transient(format!(
                                    "injected train-infer fault (attempt {attempt})"
                                )));
                            }
                            self.finish_fit(
                                &p.filled,
                                p.class,
                                region,
                                next_week,
                                &p.path,
                                &mut prefit,
                            )
                            .map_err(|(_, reason)| StageError::permanent(reason))
                        });
                        let model_wall = model_start.elapsed();
                        let retries = fitted.attempts.saturating_sub(1);
                        let (prediction, cache, fit_kernel, poison, exhausted) =
                            match fitted.outcome {
                                Ok((doc, cache, kernel)) => (doc, cache, kernel, None, false),
                                Err(e) => {
                                    let reason = if e.transient {
                                        format!(
                                            "train-infer retries exhausted after {} attempt(s): {}",
                                            fitted.attempts, e.message
                                        )
                                    } else {
                                        e.message
                                    };
                                    (None, CacheOutcome::Bypass, None, Some(reason), e.transient)
                                }
                            };
                        FusedServerOutcome {
                            series: p.filled.series,
                            anomaly: p.anomaly,
                            features: p.features,
                            prediction,
                            cache,
                            fit_kernel,
                            poison,
                            retries,
                            backoff_ms: fitted.backoff_ms,
                            exhausted,
                            featurize_wall: p.featurize_wall,
                            model_wall,
                        }
                    }),
                };
                (i, out)
            })
            .collect()
    }

    /// Folds the run's cold-fit kernel labels into the stable metric
    /// `seagull_fit_kernel_total{region, kernel}` at the serial absorb, so
    /// the counts are deterministic and identical across execution modes.
    fn record_fit_kernels(&self, region: &str, counts: &BTreeMap<&'static str, u64>) {
        let registry = self.obs.registry();
        for (&kernel, &n) in counts {
            registry
                .counter(
                    "seagull_fit_kernel_total",
                    &[("region", region), ("kernel", kernel)],
                )
                .add(n);
        }
    }

    /// The barrier middle: validation, feature extraction, and
    /// training/inference as whole-fleet batch stages — every server
    /// completes a stage before any server enters the next. Retries,
    /// exhaustion, and injected faults are whole-stage on this path.
    /// Returns `None` when validation blocks the run.
    #[allow(clippy::too_many_arguments)]
    fn mid_barrier(
        &self,
        region: &str,
        week_start_day: i64,
        tick: i64,
        vt: u64,
        run_span: SpanId,
        report: &mut PipelineRunReport,
        degraded: &mut DegradedRun,
        batch: &RegionWeekBatch,
        servers: &mut [ExtractedServer],
    ) -> Option<MidStages> {
        // ---- Data Validation -------------------------------------------------
        self.resilience.chaos.kill_point("validation", region, tick);
        let span = self.stage_span(run_span, "validation", region, vt);
        let validated = self.retry_stage("validation", region, tick, || {
            Ok((
                validate_region_week(batch, &self.config.profile, self.config.max_anomaly_reports),
                validate_servers(servers, &self.config.profile),
            ))
        });
        degraded.note("validation", &validated);
        let mut blocked = false;
        match validated.outcome {
            Ok((batch_report, server_report)) => {
                report.anomalies = batch_report.anomalies.len() + server_report.anomalies.len();
                for a in batch_report
                    .anomalies
                    .iter()
                    .chain(&server_report.anomalies)
                {
                    self.raise_validation_anomaly(region, a);
                }
                blocked = batch_report.is_blocked() || server_report.is_blocked();
            }
            Err(e) => {
                // Degraded mode: run unvalidated rather than drop the week.
                degraded.exhausted_stages.push("validation".into());
                self.incidents.raise_keyed(
                    Severity::Warning,
                    "validation",
                    region,
                    "validation-skipped",
                    format!(
                        "validation skipped after {} attempt(s): {}",
                        validated.attempts, e.message
                    ),
                );
            }
        }
        // Repair tolerated gaps so downstream models see clean input.
        if !blocked {
            for s in servers.iter_mut() {
                seagull_timeseries::fill_gaps(&mut s.series, GapFill::Linear);
            }
        }
        self.finish_stage(report, span, "validation", region, vt);
        if blocked {
            return None;
        }

        // ---- Feature Extraction ----------------------------------------------
        self.resilience.chaos.kill_point("features", region, tick);
        let span = self.stage_span(run_span, "features", region, vt);
        let features = extract_features(servers, &self.config.classify);
        for f in &features {
            let id = format!("{region}/{}/{week_start_day}", f.server_id);
            let _ = self.docs.upsert(collections::FEATURES, &id, f);
        }
        self.finish_stage(report, span, "features", region, vt);

        // ---- Model Training & Inference ---------------------------------------
        // One model family serves the whole region (Section 5.4: a single
        // model for the entire fleet); per-server fitting happens inside
        // [`AmlPipeline::fit_server`]. Predictions target each server's
        // next backup day.
        self.resilience
            .chaos
            .kill_point("train-infer", region, tick);
        let span = self.stage_span(run_span, "train-infer", region, vt);
        let next_week = week_start_day + 7;
        let threads = self.config.threads;
        // Classification labels index-align with `servers` (extract_features
        // maps over them in order); the label is part of the cache key
        // semantics — a reclassified server must refit.
        let train_inputs: Vec<(&ExtractedServer, &'static str)> = servers
            .iter()
            .zip(&features)
            .map(|(s, f)| (s, f.pattern.label()))
            .collect();
        let trained = self.retry_stage("train-infer", region, tick, || {
            let (results, profile) =
                parallel_map_profiled(&train_inputs, threads, |&(s, class)| {
                    self.fit_server(s, class, region, next_week)
                });
            profile.record(self.obs.registry(), "train-infer");
            Ok(results)
        });
        degraded.note("train-infer", &trained);
        let mut train_failed = false;
        let mut predictions: Vec<PredictionDoc> = Vec::new();
        match trained.outcome {
            Ok(results) => {
                let mut poison: Vec<(u64, String)> = Vec::new();
                let mut updates: Vec<CacheUpdate> = Vec::new();
                let mut hit_keys: Vec<String> = Vec::new();
                let mut kernel_counts: BTreeMap<&'static str, u64> = BTreeMap::new();
                for r in results {
                    match r {
                        Ok((doc, outcome, kernel)) => {
                            if let Some(doc) = doc {
                                predictions.push(doc);
                            }
                            if let Some(kernel) = kernel {
                                *kernel_counts.entry(kernel).or_insert(0) += 1;
                            }
                            match outcome {
                                CacheOutcome::Hit(key) => hit_keys.push(key),
                                CacheOutcome::Fresh(update) => updates.push(*update),
                                CacheOutcome::Bypass => {}
                            }
                        }
                        Err(p) => poison.push(p),
                    }
                }
                if self.config.warm_cache {
                    // Serial, item-ordered commit: deterministic recency.
                    self.cache.commit(vt, updates, &hit_keys);
                }
                self.record_fit_kernels(region, &kernel_counts);
                self.quarantine_poison(region, week_start_day, degraded, poison);
            }
            Err(e) => {
                train_failed = true;
                degraded.exhausted_stages.push("train-infer".into());
                self.incidents.raise_keyed(
                    Severity::Critical,
                    "train-infer",
                    region,
                    "train-failed",
                    format!(
                        "training failed after {} attempt(s): {}",
                        trained.attempts, e.message
                    ),
                );
            }
        }

        report.predictions_written = self.write_predictions(region, tick, degraded, &predictions);
        self.finish_stage(report, span, "train-infer", region, vt);

        Some(MidStages {
            features: features.into_iter().map(Some).collect(),
            predictions,
            train_failed,
        })
    }

    /// The dataflow middle: batch-level validation, then one *fused*
    /// operator chain per server — validate → gap-fill → featurize → fit →
    /// predict — scheduled task-granularly on the worker pool and absorbed
    /// serially in server input order at the train-deploy barrier.
    ///
    /// Differences from [`AmlPipeline::mid_barrier`] are entirely in *when*
    /// work happens, never in *what* a clean run produces: its reports,
    /// documents, incidents, and stable export are byte-identical across
    /// the two paths (and across thread counts). Fault granularity does
    /// differ, deliberately: retries, exhaustion, and panics are
    /// per-server here — a poison server dead-letters only itself and can
    /// never fail the whole stage, so `train_failed` is always false on
    /// this path.
    #[allow(clippy::too_many_arguments)]
    fn mid_dataflow(
        &self,
        region: &str,
        week_start_day: i64,
        tick: i64,
        vt: u64,
        run_span: SpanId,
        report: &mut PipelineRunReport,
        degraded: &mut DegradedRun,
        batch: &RegionWeekBatch,
        servers: &mut [ExtractedServer],
    ) -> Option<MidStages> {
        // ---- Data Validation (batch-level) -------------------------------------
        // Per-server missing-data checks move into the fused operators; the
        // blocking decision must precede the fan-out, and only batch-level
        // anomalies (plus the empty-fleet guard) can block, so this part
        // stays a whole-batch step.
        self.resilience.chaos.kill_point("validation", region, tick);
        let span = self.stage_span(run_span, "validation", region, vt);
        let validated = self.retry_stage("validation", region, tick, || {
            Ok(validate_region_week(
                batch,
                &self.config.profile,
                self.config.max_anomaly_reports,
            ))
        });
        degraded.note("validation", &validated);
        let mut blocked = false;
        let mut server_validation = false;
        match validated.outcome {
            Ok(batch_report) => {
                server_validation = true;
                report.anomalies = batch_report.anomalies.len();
                for a in &batch_report.anomalies {
                    self.raise_validation_anomaly(region, a);
                }
                blocked = batch_report.is_blocked();
                if servers.is_empty() {
                    // An empty fleet can never reach the fused operators;
                    // surface the blocking EmptyInput here, exactly as the
                    // barrier path's whole-fleet validate_servers does.
                    let server_report = validate_servers(servers, &self.config.profile);
                    report.anomalies += server_report.anomalies.len();
                    for a in &server_report.anomalies {
                        self.raise_validation_anomaly(region, a);
                    }
                    blocked = blocked || server_report.is_blocked();
                }
            }
            Err(e) => {
                // Degraded mode: run unvalidated rather than drop the week
                // (the fused operators skip per-server validation too).
                degraded.exhausted_stages.push("validation".into());
                self.incidents.raise_keyed(
                    Severity::Warning,
                    "validation",
                    region,
                    "validation-skipped",
                    format!(
                        "validation skipped after {} attempt(s): {}",
                        validated.attempts, e.message
                    ),
                );
            }
        }
        self.finish_stage(report, span, "validation", region, vt);
        if blocked {
            return None;
        }

        // ---- Fused per-server operators ----------------------------------------
        // Both stage kill-points fire serially at the fan-out boundary so
        // crash-recovery semantics match the barrier path; so do the stage
        // spans, created in barrier order (features before train-infer) and
        // finished retroactively, which keeps stable span ids identical.
        self.resilience.chaos.kill_point("features", region, tick);
        let features_span = self.stage_span(run_span, "features", region, vt);
        self.resilience
            .chaos
            .kill_point("train-infer", region, tick);
        let fused_span = self.stage_span(run_span, "train-infer", region, vt);
        let next_week = week_start_day + 7;

        // Group same-shape servers (in input order) into fit batches: each
        // batch is one pool task whose cold fits run through one shared
        // [`Forecaster::fit_batch`] kernel invocation. `fit_batch = 1`
        // degenerates to one server per task.
        let cap = self.config.fit_batch.max(1);
        let mut batches: Vec<Vec<usize>> = Vec::new();
        let mut open: BTreeMap<(usize, u32), usize> = BTreeMap::new();
        for (i, s) in servers.iter().enumerate() {
            let shape = (s.series.len(), s.series.step_min());
            match open.get(&shape) {
                Some(&b) if batches[b].len() < cap => batches[b].push(i),
                _ => {
                    open.insert(shape, batches.len());
                    batches.push(vec![i]);
                }
            }
        }
        let (batch_results, profile) = parallel_map_tasks(&batches, self.config.threads, |batch| {
            self.run_fit_batch(batch, servers, region, tick, next_week, server_validation)
        });

        // Flatten back into server input order. A panic that escapes a
        // whole batch task (outside the per-server isolation inside
        // [`AmlPipeline::run_fit_batch`]) poisons every member.
        let mut results: Vec<Option<Result<FusedServerOutcome, String>>> =
            (0..servers.len()).map(|_| None).collect();
        for (batch, outcome) in batches.iter().zip(batch_results) {
            match outcome {
                Ok(per_server) => {
                    for (i, r) in per_server {
                        results[i] = Some(r);
                    }
                }
                Err(msg) => {
                    for &i in batch {
                        results[i] = Some(Err(msg.clone()));
                    }
                }
            }
        }

        // ---- Deterministic absorb ----------------------------------------------
        // Everything order-sensitive — incidents, docs, cache commits, span
        // records, metric folds — happens here, serially, in server input
        // order, so outputs are independent of worker interleaving.
        profile.record(self.obs.registry(), "train-infer");
        // The fan-out above is per *batch*, but `seagull_parallel_items_total`
        // is a stable metric that counts servers on the barrier path — top
        // it up by the difference so cross-mode exports stay byte-identical.
        self.obs
            .registry()
            .counter("seagull_parallel_items_total", &[("stage", "train-infer")])
            .add((servers.len() - batches.len()) as u64);
        let tracer = self.obs.tracer();
        let mut features: Vec<Option<ServerFeatures>> = Vec::with_capacity(servers.len());
        let mut predictions: Vec<PredictionDoc> = Vec::new();
        let mut updates: Vec<CacheUpdate> = Vec::new();
        let mut hit_keys: Vec<String> = Vec::new();
        let mut poison: Vec<(u64, String)> = Vec::new();
        let mut kernel_counts: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut total_retries = 0u32;
        let mut total_backoff = 0u64;
        let mut exhausted_servers = 0u64;
        let mut featurize_wall = Duration::ZERO;
        for (i, result) in results.into_iter().enumerate() {
            let server_id = servers[i].id.0;
            let result = result.expect("every server slot is filled by its batch");
            match result {
                Ok(out) => {
                    servers[i].series = out.series;
                    if let Some(a) = &out.anomaly {
                        report.anomalies += 1;
                        self.raise_validation_anomaly(region, a);
                    }
                    let id = format!("{region}/{server_id}/{week_start_day}");
                    let _ = self.docs.upsert(collections::FEATURES, &id, &out.features);
                    features.push(Some(out.features));
                    let sid = server_id.to_string();
                    tracer.child_complete(
                        fused_span,
                        "fused-op",
                        &[("region", region), ("server", &sid)],
                        vt,
                        vt,
                        out.featurize_wall + out.model_wall,
                    );
                    featurize_wall += out.featurize_wall;
                    total_retries += out.retries;
                    total_backoff += out.backoff_ms;
                    if out.exhausted {
                        exhausted_servers += 1;
                    }
                    if let Some(reason) = out.poison {
                        poison.push((server_id, reason));
                    } else if let Some(doc) = out.prediction {
                        predictions.push(doc);
                    }
                    if let Some(kernel) = out.fit_kernel {
                        *kernel_counts.entry(kernel).or_insert(0) += 1;
                    }
                    match out.cache {
                        CacheOutcome::Hit(key) => hit_keys.push(key),
                        CacheOutcome::Fresh(update) => updates.push(*update),
                        CacheOutcome::Bypass => {}
                    }
                }
                Err(panic_msg) => {
                    // Per-server panic isolation: the panicking operator
                    // quarantines only its own server — no features, no
                    // prediction, unfilled series; siblings are untouched.
                    features.push(None);
                    poison.push((server_id, format!("fused operator panicked: {panic_msg}")));
                }
            }
        }
        if self.config.warm_cache {
            // Serial, item-ordered commit: deterministic recency.
            self.cache.commit(vt, updates, &hit_keys);
        }
        self.record_fit_kernels(region, &kernel_counts);

        // Fold per-server retry accounting into the same stage-level series
        // the barrier path records through its observed retry wrapper: one
        // virtual stage attempt plus every per-server retry, so a clean
        // run's stable export is byte-identical across execution modes.
        let labels = [("region", region), ("stage", "train-infer")];
        let registry = self.obs.registry();
        registry
            .counter("seagull_retry_attempts_total", &labels)
            .add(1 + u64::from(total_retries));
        if total_retries > 0 {
            registry
                .counter("seagull_retries_total", &labels)
                .add(u64::from(total_retries));
            registry
                .histogram("seagull_retry_backoff_ms", &labels)
                .observe(total_backoff as f64);
            *degraded
                .retries
                .entry("train-infer".to_string())
                .or_insert(0) += total_retries;
            degraded.backoff_ms += total_backoff;
        }
        if exhausted_servers > 0 {
            // Counts exhausted retry units: whole stages on the barrier
            // path, individual servers here — the stage itself never fails.
            registry
                .counter("seagull_retry_exhausted_total", &labels)
                .add(exhausted_servers);
        }
        self.quarantine_poison(region, week_start_day, degraded, poison);

        // The features stage is priced at the summed per-server featurize
        // walls and finishes (retroactively) before train-infer, keeping
        // the `report.stages` execution-order contract.
        self.finish_stage_with_wall(
            report,
            features_span,
            "features",
            region,
            vt,
            featurize_wall,
        );

        report.predictions_written = self.write_predictions(region, tick, degraded, &predictions);
        self.finish_stage(report, fused_span, "train-infer", region, vt);

        Some(MidStages {
            features,
            predictions,
            train_failed: false,
        })
    }

    /// Quarantines poison servers to the dead-letter list and raises the
    /// keyed incident; shared by both execution modes so documents and
    /// incident strings stay identical. No-op on an empty list.
    fn quarantine_poison(
        &self,
        region: &str,
        week_start_day: i64,
        degraded: &mut DegradedRun,
        mut poison: Vec<(u64, String)>,
    ) {
        if poison.is_empty() {
            return;
        }
        // Skip-and-quarantine: poison batches go to the dead-letter list;
        // the rest of the region proceeds.
        poison.sort_by_key(|(id, _)| *id);
        for (server_id, reason) in &poison {
            let id = DeadLetterDoc::doc_id(region, *server_id, week_start_day);
            let _ = self.docs.upsert(
                collections::DEAD_LETTER,
                &id,
                &DeadLetterDoc {
                    region: region.to_string(),
                    server_id: *server_id,
                    week_start_day,
                    stage: "train-infer".into(),
                    reason: reason.clone(),
                },
            );
        }
        degraded.quarantined_servers = poison.into_iter().map(|(id, _)| id).collect();
        self.incidents.raise_keyed(
            Severity::Warning,
            "train-infer",
            region,
            "poison-batch",
            format!(
                "{} poison server batch(es) quarantined to dead-letter in week \
                 starting day {week_start_day}",
                degraded.quarantined_servers.len()
            ),
        );
    }

    /// Persists predictions (the docstore-write sub-step), retried as a
    /// unit: upserts are idempotent, so a mid-write fault just replays the
    /// batch. Returns the number written (zero when retries exhausted).
    fn write_predictions(
        &self,
        region: &str,
        tick: i64,
        degraded: &mut DegradedRun,
        predictions: &[PredictionDoc],
    ) -> usize {
        let written = self.retry_stage("docstore-write", region, tick, || {
            let mut n = 0usize;
            for doc in predictions {
                let id = PredictionDoc::doc_id(region, doc.server_id, doc.day);
                self.docs
                    .upsert(collections::PREDICTIONS, &id, doc)
                    .map_err(|e| StageError::permanent(format!("docstore upsert {id}: {e}")))?;
                n += 1;
            }
            Ok(n)
        });
        degraded.note("docstore-write", &written);
        match written.outcome {
            Ok(n) => n,
            Err(e) => {
                degraded.exhausted_stages.push("docstore-write".into());
                self.incidents.raise_keyed(
                    Severity::Warning,
                    "docstore-write",
                    region,
                    "predictions-dropped",
                    format!(
                        "failed to persist predictions after {} attempt(s): {}",
                        written.attempts, e.message
                    ),
                );
                0
            }
        }
    }

    /// Runs one week for every region, fanning the regions out across the
    /// worker pool (each region's per-server stages then share the same
    /// pool via nested parallel maps).
    ///
    /// Every region executes against a scratch [`Obs`] handle and a
    /// recording [`IncidentManager`]; the other services (doc store, model
    /// registry, breaker, warm cache) are shared, and every cross-region
    /// touch point is region-keyed, so concurrent runs cannot observe each
    /// other. After the join the scratch handles are absorbed in region
    /// *input* order, which makes metrics, span ids, and the incident log —
    /// and therefore [`Obs::stable_export`] — byte-identical regardless of
    /// thread count or completion order. Reports come back in region input
    /// order.
    pub fn run_fleet_week(
        &self,
        regions: &[String],
        week_start_day: i64,
    ) -> Vec<PipelineRunReport> {
        self.run_fleet_week_with(regions, week_start_day, |_, _| {})
    }

    /// [`AmlPipeline::run_fleet_week`] with a per-region completion callback.
    ///
    /// `on_region_done(i, report)` fires on the worker thread immediately
    /// after region `regions[i]` finishes its run, before the fleet-wide
    /// join. [`FleetRunner`](crate::fleet::FleetRunner) uses it to persist
    /// per-region checkpoint markers the moment a region completes, so a
    /// crash mid-fleet loses only the regions still in flight. The callback
    /// may run concurrently for different regions and must be cheap; it is
    /// not called for regions whose worker panicked.
    pub fn run_fleet_week_with(
        &self,
        regions: &[String],
        week_start_day: i64,
        on_region_done: impl Fn(usize, &PipelineRunReport) + Sync,
    ) -> Vec<PipelineRunReport> {
        let scratch: Vec<AmlPipeline> = regions
            .iter()
            .map(|_| AmlPipeline {
                obs: Obs::new(),
                incidents: IncidentManager::recording(),
                ..self.clone()
            })
            .collect();
        let indices: Vec<usize> = (0..regions.len()).collect();
        let reports = parallel_map(&indices, self.config.threads, |&i| {
            let report = scratch[i].run_region_week(&regions[i], week_start_day);
            on_region_done(i, &report);
            report
        });
        for view in &scratch {
            self.obs.absorb(&view.obs);
            self.incidents.absorb(&view.incidents);
        }
        // Orchestrator barrier: evictions and the metrics mirror run once,
        // after every region committed, so they see the same cache state no
        // matter how the week was scheduled.
        if self.config.warm_cache {
            self.cache.evict_to_capacity();
            self.export_cache_metrics();
        }
        reports
    }

    /// Mirrors the warm cache's counters into the metrics registry.
    ///
    /// Uses idempotent stores (not increments) because the cache is shared
    /// across every pipeline clone: exporting at the orchestrator barrier
    /// keeps the registry consistent even though per-region scratch
    /// registries are absorbed additively.
    pub fn export_cache_metrics(&self) {
        let stats = self.cache.stats();
        let registry = self.obs.registry();
        registry
            .counter("seagull_model_cache_hits_total", &[])
            .store(stats.hits);
        // Similarity-keyed reuses are counted apart from exact-bytes hits so
        // the accuracy monitor can veto the similarity path independently.
        registry
            .counter("seagull_model_cache_similarity_hits_total", &[])
            .store(stats.hits_similarity);
        for (reason, n) in [
            ("cold", stats.misses_cold),
            ("fingerprint", stats.invalidated_fingerprint),
            ("class", stats.invalidated_class),
            ("drift", stats.invalidated_drift),
        ] {
            registry
                .counter("seagull_model_cache_misses_total", &[("reason", reason)])
                .store(n);
        }
        registry
            .counter("seagull_model_cache_evictions_total", &[])
            .store(stats.evictions);
        registry
            .gauge("seagull_model_cache_entries", &[])
            .set(self.cache.len() as f64);
        registry
            .gauge("seagull_model_cache_hit_rate", &[])
            .set(stats.hit_rate());
        // Wall-clock derived, hence volatile (excluded from stable exports).
        registry
            .gauge_with(
                "seagull_model_cache_saved_wall_seconds",
                &[],
                Stability::Volatile,
            )
            .set(stats.saved_wall.as_secs_f64());
    }

    /// The weekly scheduler: runs every region for each week in order,
    /// returning all run reports (Section 2.2's Pipeline Scheduler on a
    /// simulated clock). Weeks are sequential barriers; the regions within
    /// a week run through [`AmlPipeline::run_fleet_week`], whose
    /// deterministic merge keeps the outputs identical to a fully
    /// sequential schedule.
    pub fn run_schedule(
        &self,
        regions: &[String],
        week_start_days: &[i64],
    ) -> Vec<PipelineRunReport> {
        let mut reports = Vec::with_capacity(regions.len() * week_start_days.len());
        for &week in week_start_days {
            reports.extend(self.run_fleet_week(regions, week));
        }
        reports
    }
}

/// Runs `f` with per-call panic isolation: an ordinary panic becomes an
/// `Err` carrying its message, while [`InjectedCrash`] payloads (chaos kill
/// points simulating process death) are re-raised so crash-recovery tests
/// still observe a dying process. Mirrors the isolation contract of
/// [`parallel_map_tasks`] for code that runs *inside* a multi-server task.
fn isolate<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(r) => Ok(r),
        Err(payload) => {
            if payload.is::<InjectedCrash>() {
                std::panic::resume_unwind(payload);
            }
            Err(crate::par::panic_message(payload.as_ref()))
        }
    }
}

/// The backup day encoded in a server's extracted default window, normalized
/// into the given week.
fn backup_day_for_extracted(s: &ExtractedServer, week_start_day: i64) -> i64 {
    let d = s.default_backup_start.day_index();
    week_start_day + (d - week_start_day).rem_euclid(7)
}

/// Re-export used by experiments to derive backup days from fleet metadata.
pub use crate::evaluate::backup_day_in_week as fleet_backup_day_in_week;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilience::{BreakerState, StageChaos};
    use seagull_telemetry::blobstore::MemoryBlobStore;
    use seagull_telemetry::extract::LoadExtraction;
    use seagull_telemetry::fleet::{FleetGenerator, FleetSpec};

    fn setup(servers: usize, weeks: usize) -> (AmlPipeline, i64) {
        let mut spec = FleetSpec::small_region(91);
        spec.regions[0].servers = servers;
        let start = spec.start_day;
        let fleet = FleetGenerator::new(spec).generate_weeks(weeks);
        let store = Arc::new(MemoryBlobStore::new());
        let weeks_days: Vec<i64> = (0..weeks as i64).map(|w| start + 7 * w).collect();
        LoadExtraction::default()
            .run(&fleet, &["region-a".into()], &weeks_days, store.as_ref())
            .unwrap();
        (AmlPipeline::new(PipelineConfig::production(), store), start)
    }

    #[test]
    fn single_run_produces_stages_and_predictions() {
        let (pipeline, start) = setup(30, 1);
        let report = pipeline.run_region_week("region-a", start);
        assert!(!report.blocked);
        assert!(report.servers > 0);
        assert!(report.input_bytes > 0);
        let stage_names: Vec<&str> = report.stages.iter().map(|s| s.stage.as_str()).collect();
        assert_eq!(
            stage_names,
            vec![
                "ingestion",
                "validation",
                "features",
                "train-infer",
                "deployment",
                "accuracy-eval"
            ]
        );
        assert!(report.predictions_written > 0);
        assert_eq!(report.deployed_version, Some(1));
        // First run: no prior predictions, so nothing to evaluate.
        assert_eq!(report.evaluations, 0);
        assert!(pipeline.docs.count(collections::FEATURES) > 0);
        assert_eq!(
            pipeline.docs.count(collections::PREDICTIONS),
            report.predictions_written
        );
        // A clean run carries no degradation summary and no retries.
        assert!(!report.is_degraded());
        assert_eq!(report.total_retries(), 0);
    }

    #[test]
    fn second_week_evaluates_first_weeks_predictions() {
        let (pipeline, start) = setup(40, 2);
        let r1 = pipeline.run_region_week("region-a", start);
        let r2 = pipeline.run_region_week("region-a", start + 7);
        assert!(r1.predictions_written > 0);
        assert!(
            r2.evaluations > 0,
            "week-2 run must score week-1 predictions"
        );
        let acc = r2.accuracy.expect("accuracy summary present");
        // Persistent forecast on a mostly-stable fleet is highly accurate.
        assert!(acc.window_correct_pct > 80.0, "{}", acc.window_correct_pct);
        assert!(pipeline.docs.count(collections::ACCURACY) > 0);
        assert_eq!(pipeline.registry.deployed("region-a").unwrap().version, 2);
    }

    #[test]
    fn missing_blob_blocks_and_raises() {
        let (pipeline, start) = setup(5, 1);
        let report = pipeline.run_region_week("ghost-region", start);
        assert!(report.blocked);
        assert_eq!(pipeline.incidents.open_count(Severity::Critical), 1);
        // Absent data is permanent: no retries are burned on it, and the
        // breaker (which tracks infrastructure health) stays closed.
        assert_eq!(report.total_retries(), 0);
        assert_eq!(pipeline.breaker.state("ghost-region"), BreakerState::Closed);
        // The blocked run is still recorded for the dashboard.
        assert_eq!(pipeline.docs.count(collections::RUNS), 1);
    }

    #[test]
    fn schedule_runs_all_cells() {
        let (pipeline, start) = setup(10, 2);
        let reports = pipeline.run_schedule(&["region-a".to_string()], &[start, start + 7]);
        assert_eq!(reports.len(), 2);
        assert_eq!(pipeline.docs.count(collections::RUNS), 2);
    }

    #[test]
    fn endpoint_published_after_run() {
        let (pipeline, start) = setup(10, 1);
        pipeline.run_region_week("region-a", start);
        assert!(pipeline.endpoints.resolve("region-a").is_some());
    }

    #[test]
    fn injected_stage_fault_is_retried_and_counted() {
        let (base, start) = setup(10, 1);
        // Fail the first two train-infer attempts; the third succeeds.
        let policy = ResiliencePolicy {
            chaos: StageChaos::from_fn(|stage, _, _, attempt| {
                stage == "train-infer" && attempt <= 2
            }),
            ..ResiliencePolicy::default()
        };
        // Whole-stage retry accounting is the barrier path's contract; the
        // dataflow path retries per server (covered below).
        let config = PipelineConfig {
            exec: ExecMode::Barrier,
            ..base.config
        };
        let pipeline = AmlPipeline::with_resilience(config, base.blobs, policy);
        let report = pipeline.run_region_week("region-a", start);
        assert!(!report.blocked);
        assert!(report.predictions_written > 0);
        let degraded = report.degraded.expect("retries recorded");
        assert_eq!(degraded.retries.get("train-infer"), Some(&2));
        assert!(degraded.backoff_ms > 0);
        assert!(degraded.exhausted_stages.is_empty());
    }

    #[test]
    fn dataflow_retries_injected_faults_per_server() {
        let (base, start) = setup(10, 1);
        let policy = ResiliencePolicy {
            chaos: StageChaos::from_fn(|stage, _, _, attempt| {
                stage == "train-infer" && attempt <= 2
            }),
            ..ResiliencePolicy::default()
        };
        let pipeline = AmlPipeline::with_resilience(base.config, base.blobs, policy);
        let report = pipeline.run_region_week("region-a", start);
        assert!(!report.blocked);
        assert!(report.predictions_written > 0);
        let degraded = report.degraded.expect("retries recorded");
        // Every server's fused operator burned two retries of its own
        // budget; the fold sums them into the stage entry.
        assert_eq!(
            degraded.retries.get("train-infer"),
            Some(&(2 * report.servers as u32))
        );
        assert!(degraded.backoff_ms > 0);
        assert!(degraded.exhausted_stages.is_empty());
        assert!(degraded.quarantined_servers.is_empty());
    }

    #[test]
    fn exhausted_deploy_keeps_last_known_good() {
        let (base, start) = setup(15, 2);
        let policy = ResiliencePolicy {
            // Deployment hard-fails, but only in week 2.
            chaos: StageChaos::from_fn(move |stage, _, tick, _| {
                stage == "deployment" && tick > start
            }),
            ..ResiliencePolicy::default()
        };
        let pipeline = AmlPipeline::with_resilience(base.config, base.blobs, policy);
        let r1 = pipeline.run_region_week("region-a", start);
        assert_eq!(r1.deployed_version, Some(1));
        let r2 = pipeline.run_region_week("region-a", start + 7);
        assert!(!r2.blocked, "deploy failure degrades, it does not block");
        assert_eq!(r2.deployed_version, None);
        let degraded = r2.degraded.expect("degradation recorded");
        assert!(degraded.fallback_deployed);
        assert!(degraded.exhausted_stages.contains(&"deployment".into()));
        // Version 1 is still the serving model.
        assert_eq!(pipeline.registry.deployed("region-a").unwrap().version, 1);
        assert!(pipeline.incidents.open_count(Severity::Critical) >= 1);
    }
}
