//! The Accuracy Evaluation module.
//!
//! For every server due for backup, Seagull predicts the backup day from the
//! preceding week of load and evaluates the two low-load metrics (Definitions
//! 2 and 8). A server is *predictable* (Definition 9) "if for the last three
//! weeks its LL windows were chosen correctly and the load during these
//! windows was predicted accurately".
//!
//! The per-server evaluation is embarrassingly parallel; the paper runs it
//! single-threaded or on Dask (Figure 12(b)) — here, serially or on the
//! [`crate::par`] executor, selected by the `threads` argument.

use crate::metrics::{evaluate_low_load, AccuracyConfig, LowLoadEvaluation};
use crate::par::parallel_map;
use seagull_forecast::Forecaster;
use seagull_telemetry::fleet::ServerTelemetry;
use seagull_timeseries::{DayOfWeek, Timestamp};
use serde::{Deserialize, Serialize};

/// Evaluation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvaluationConfig {
    /// Error bound and bucket-ratio threshold (Definitions 1–2).
    pub accuracy: AccuracyConfig,
    /// Days of history a model is trained on before a backup day ("ML models
    /// are trained on one week of data prior to backup day", Section 5.3.1).
    pub train_days: i64,
    /// Weeks of history the predictability gate inspects (Definition 9: 3).
    pub predictability_weeks: usize,
    /// Minimum days of history required before a backup day can be evaluated
    /// at all ("servers have at least three days of history prior to their
    /// backup days", Section 5.3.1).
    pub min_history_days: i64,
}

impl Default for EvaluationConfig {
    fn default() -> Self {
        EvaluationConfig {
            accuracy: AccuracyConfig::default(),
            train_days: 7,
            predictability_weeks: 3,
            min_history_days: 3,
        }
    }
}

/// The backup day (day index) for a server within the week starting at
/// `week_start_day`.
pub fn backup_day_in_week(server: &ServerTelemetry, week_start_day: i64) -> i64 {
    (0..7)
        .map(|o| week_start_day + o)
        .find(|&d| {
            DayOfWeek::from_day_index(d).index() == server.meta.backup.backup_weekday as usize
        })
        .expect("every weekday occurs within a week")
}

/// One server-day evaluation outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackupDayEvaluation {
    /// Server the evaluation covers.
    pub server_id: u64,
    /// Backup day that was evaluated.
    pub backup_day: i64,
    /// `None` when the server could not be evaluated (insufficient history,
    /// model failure, missing truth) — such servers keep their default
    /// backup window.
    pub result: Option<LowLoadEvaluation>,
}

/// Evaluates one server's backup day: trains on the preceding `train_days`
/// of load, predicts the backup day, and scores both low-load metrics
/// against the true load.
pub fn evaluate_backup_day(
    server: &ServerTelemetry,
    backup_day: i64,
    forecaster: &dyn Forecaster,
    config: &EvaluationConfig,
) -> Option<LowLoadEvaluation> {
    let day_start = Timestamp::from_days(backup_day);
    let series = &server.series;
    // Available history strictly before the backup day, capped at train_days.
    let hist_start_day = (backup_day - config.train_days).max(series.start().day_index());
    if backup_day - hist_start_day < config.min_history_days {
        return None;
    }
    let history = series
        .slice(Timestamp::from_days(hist_start_day), day_start)
        .ok()?;
    let truth = series.day(backup_day)?;
    let horizon = truth.len();
    let predicted = forecaster.fit_predict(&history, horizon).ok()?;
    evaluate_low_load(
        &truth,
        &predicted,
        server.meta.backup.duration_min,
        &config.accuracy,
    )
}

/// Evaluates the backup day of every server for the week starting at
/// `week_start_day`, serially or in parallel (`threads > 1`).
pub fn evaluate_fleet_week(
    fleet: &[ServerTelemetry],
    week_start_day: i64,
    forecaster: &dyn Forecaster,
    config: &EvaluationConfig,
    threads: usize,
) -> Vec<BackupDayEvaluation> {
    parallel_map(fleet, threads, |server| {
        let backup_day = backup_day_in_week(server, week_start_day);
        BackupDayEvaluation {
            server_id: server.meta.id.0,
            backup_day,
            result: evaluate_backup_day(server, backup_day, forecaster, config),
        }
    })
}

/// Evaluates every day of one week ahead per server (the Figure 12(b)
/// "accuracy evaluation on each day one week ahead" variant, used to move
/// backups to a better weekday).
pub fn evaluate_fleet_week_all_days(
    fleet: &[ServerTelemetry],
    week_start_day: i64,
    forecaster: &dyn Forecaster,
    config: &EvaluationConfig,
    threads: usize,
) -> Vec<Vec<BackupDayEvaluation>> {
    parallel_map(fleet, threads, |server| {
        (0..7)
            .map(|offset| {
                let day = week_start_day + offset;
                BackupDayEvaluation {
                    server_id: server.meta.id.0,
                    backup_day: day,
                    result: evaluate_backup_day(server, day, forecaster, config),
                }
            })
            .collect()
    })
}

/// Definition 9 verdict for one server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerPredictability {
    /// Server the verdict covers.
    pub server_id: u64,
    /// Weekly backup-day evaluations, oldest first.
    pub weeks: Vec<BackupDayEvaluation>,
    /// True iff every inspected week evaluated successfully with a correct
    /// window and accurate load.
    pub predictable: bool,
}

/// Applies the Definition 9 gate: the server's backup day in each of the
/// `predictability_weeks` weeks ending at `as_of_week_start` (exclusive) must
/// have been predicted correctly and accurately.
pub fn predictability(
    server: &ServerTelemetry,
    as_of_week_start: i64,
    forecaster: &dyn Forecaster,
    config: &EvaluationConfig,
) -> ServerPredictability {
    let mut weeks = Vec::with_capacity(config.predictability_weeks);
    for k in (1..=config.predictability_weeks).rev() {
        let week_start = as_of_week_start - 7 * k as i64;
        let backup_day = backup_day_in_week(server, week_start);
        weeks.push(BackupDayEvaluation {
            server_id: server.meta.id.0,
            backup_day,
            result: evaluate_backup_day(server, backup_day, forecaster, config),
        });
    }
    let predictable = !weeks.is_empty()
        && weeks.iter().all(|w| {
            w.result
                .as_ref()
                .is_some_and(|r| r.window_correct && r.load_accurate)
        });
    ServerPredictability {
        server_id: server.meta.id.0,
        weeks,
        predictable,
    }
}

/// Fleet-level predictability, serial or parallel.
pub fn predictability_fleet(
    fleet: &[ServerTelemetry],
    as_of_week_start: i64,
    forecaster: &dyn Forecaster,
    config: &EvaluationConfig,
    threads: usize,
) -> Vec<ServerPredictability> {
    parallel_map(fleet, threads, |server| {
        predictability(server, as_of_week_start, forecaster, config)
    })
}

/// Aggregate accuracy over a set of evaluations (the Figure 11(b)–(d) rows).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracySummary {
    /// Servers submitted.
    pub servers: usize,
    /// Server-days that produced an evaluation.
    pub evaluated: usize,
    /// Percentage of evaluated days with a correctly chosen LL window.
    pub window_correct_pct: f64,
    /// Percentage of evaluated days with accurately predicted in-window load.
    pub load_accurate_pct: f64,
}

impl AccuracySummary {
    /// Summarizes a batch of backup-day evaluations.
    pub fn from_evaluations(evals: &[BackupDayEvaluation]) -> AccuracySummary {
        let evaluated: Vec<&LowLoadEvaluation> =
            evals.iter().filter_map(|e| e.result.as_ref()).collect();
        let n = evaluated.len();
        let pct = |count: usize| {
            if n == 0 {
                0.0
            } else {
                100.0 * count as f64 / n as f64
            }
        };
        AccuracySummary {
            servers: evals.len(),
            evaluated: n,
            window_correct_pct: pct(evaluated.iter().filter(|e| e.window_correct).count()),
            load_accurate_pct: pct(evaluated.iter().filter(|e| e.load_accurate).count()),
        }
    }
}

/// Percentage of predictable servers in a predictability batch.
pub fn predictable_pct(preds: &[ServerPredictability]) -> f64 {
    if preds.is_empty() {
        return 0.0;
    }
    100.0 * preds.iter().filter(|p| p.predictable).count() as f64 / preds.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use seagull_forecast::PersistentForecast;
    use seagull_telemetry::fleet::{FleetGenerator, FleetSpec};
    use seagull_telemetry::server::GeneratedClass;

    fn fleet() -> (Vec<ServerTelemetry>, i64) {
        let mut spec = FleetSpec::small_region(55);
        spec.regions[0].servers = 120;
        let start = spec.start_day;
        (FleetGenerator::new(spec).generate_weeks(4), start)
    }

    #[test]
    fn backup_day_lands_on_weekday() {
        let (fleet, start) = fleet();
        for s in &fleet {
            let d = backup_day_in_week(s, start);
            assert!(d >= start && d < start + 7);
            assert_eq!(
                DayOfWeek::from_day_index(d).index(),
                s.meta.backup.backup_weekday as usize
            );
        }
    }

    #[test]
    fn stable_servers_evaluate_well_with_persistent_forecast() {
        let (fleet, start) = fleet();
        let stable: Vec<ServerTelemetry> = fleet
            .iter()
            .filter(|s| s.meta.class == GeneratedClass::Stable && s.meta.deleted_day.is_none())
            .cloned()
            .collect();
        assert!(!stable.is_empty());
        let cfg = EvaluationConfig::default();
        let model = PersistentForecast::previous_day();
        // Second week so a full week of history exists.
        let evals = evaluate_fleet_week(&stable, start + 7, &model, &cfg, 1);
        let summary = AccuracySummary::from_evaluations(&evals);
        assert_eq!(summary.servers, stable.len());
        assert!(summary.evaluated > 0);
        assert!(
            summary.window_correct_pct > 95.0,
            "window correct {}",
            summary.window_correct_pct
        );
        assert!(
            summary.load_accurate_pct > 95.0,
            "load accurate {}",
            summary.load_accurate_pct
        );
    }

    #[test]
    fn parallel_matches_serial() {
        let (fleet, start) = fleet();
        let subset = &fleet[..40.min(fleet.len())];
        let cfg = EvaluationConfig::default();
        let model = PersistentForecast::previous_day();
        let serial = evaluate_fleet_week(subset, start + 7, &model, &cfg, 1);
        let parallel = evaluate_fleet_week(subset, start + 7, &model, &cfg, 4);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn insufficient_history_yields_none() {
        let (fleet, start) = fleet();
        let long = fleet.iter().find(|s| s.meta.deleted_day.is_none()).unwrap();
        let cfg = EvaluationConfig::default();
        let model = PersistentForecast::previous_day();
        // Backup on day start+1: only 1 day of history inside the window.
        assert!(evaluate_backup_day(long, start + 1, &model, &cfg).is_none());
        // Day before the window: no truth either.
        assert!(evaluate_backup_day(long, start - 1, &model, &cfg).is_none());
    }

    #[test]
    fn predictability_gate_requires_all_weeks() {
        let (fleet, start) = fleet();
        let cfg = EvaluationConfig::default();
        let model = PersistentForecast::previous_day();
        let stable: Vec<&ServerTelemetry> = fleet
            .iter()
            .filter(|s| s.meta.class == GeneratedClass::Stable && s.meta.deleted_day.is_none())
            .collect();
        // As-of the start of week 4: weeks 1-3 are inspected.
        let p = predictability(stable[0], start + 28, &model, &cfg);
        assert_eq!(p.weeks.len(), 3);
        assert!(p.predictable, "stable server should gate through");

        // A short-lived server that never had enough history must not pass.
        let short = fleet.iter().find(|s| s.meta.deleted_day.is_some()).unwrap();
        let ps = predictability(short, start + 28, &model, &cfg);
        assert!(!ps.predictable);
    }

    #[test]
    fn unstable_servers_less_predictable_than_stable() {
        let (fleet, start) = fleet();
        let cfg = EvaluationConfig::default();
        let model = PersistentForecast::previous_day();
        let stable: Vec<ServerTelemetry> = fleet
            .iter()
            .filter(|s| s.meta.class == GeneratedClass::Stable && s.meta.deleted_day.is_none())
            .cloned()
            .collect();
        let unstable: Vec<ServerTelemetry> = fleet
            .iter()
            .filter(|s| s.meta.class == GeneratedClass::Unstable && s.meta.deleted_day.is_none())
            .cloned()
            .collect();
        let ps = predictability_fleet(&stable, start + 28, &model, &cfg, 2);
        let pu = predictability_fleet(&unstable, start + 28, &model, &cfg, 2);
        if !unstable.is_empty() {
            assert!(
                predictable_pct(&ps) >= predictable_pct(&pu),
                "stable {} vs unstable {}",
                predictable_pct(&ps),
                predictable_pct(&pu)
            );
        }
        assert!(predictable_pct(&ps) > 90.0);
    }

    #[test]
    fn all_days_evaluation_shape() {
        let (fleet, start) = fleet();
        let subset = &fleet[..10.min(fleet.len())];
        let cfg = EvaluationConfig::default();
        let model = PersistentForecast::previous_day();
        let evals = evaluate_fleet_week_all_days(subset, start + 14, &model, &cfg, 2);
        assert_eq!(evals.len(), subset.len());
        for per_server in &evals {
            assert_eq!(per_server.len(), 7);
        }
    }

    #[test]
    fn empty_summary() {
        let s = AccuracySummary::from_evaluations(&[]);
        assert_eq!(s.servers, 0);
        assert_eq!(s.window_correct_pct, 0.0);
        assert_eq!(predictable_pct(&[]), 0.0);
    }
}
