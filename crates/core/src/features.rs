//! The Feature Extraction module.
//!
//! "Lifespan and typical resource usage patterns are examples of the features
//! that are useful for load prediction. In particular, we differentiate
//! between short-lived and long-lived servers, stable and unstable servers,
//! servers that follow a daily or a weekly pattern ..." (Section 2.2).

use crate::classify::{classify_series, ClassifyConfig, ServerClass};
use seagull_telemetry::extract::ExtractedServer;
use seagull_timeseries::{decompose, detect_anomalies, AnomalyConfig, SummaryStats};
use serde::{Deserialize, Serialize};

/// The features extracted for one server in one pipeline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerFeatures {
    /// Server the features were extracted for.
    pub server_id: u64,
    /// Days of telemetry available in this input window.
    pub observed_days: f64,
    /// Load summary statistics over the window.
    pub stats: SummaryStats,
    /// Fraction of missing buckets.
    pub missing_fraction: f64,
    /// The pattern class recovered from the load (lifespan is judged
    /// separately, from fleet metadata, by the caller).
    pub pattern: ServerClass,
    /// Daily seasonal strength in [0, 1] (0 when undecomposable): the
    /// continuous counterpart of the daily-pattern flag.
    pub daily_seasonal_strength: f64,
    /// Trend strength in [0, 1].
    pub trend_strength: f64,
    /// Number of robust load anomalies (spikes/level shifts) in the window.
    pub load_anomalies: usize,
    /// Length of the server's default backup window in minutes.
    pub backup_duration_min: i64,
}

/// Extracts features for one server: the per-server body of
/// [`extract_features`], called directly by the dataflow pipeline's fused
/// operators so featurization flows server-by-server instead of waiting on
/// a whole-batch barrier.
pub fn extract_server_features(s: &ExtractedServer, config: &ClassifyConfig) -> ServerFeatures {
    let len = s.series.len();
    let missing = s.series.missing_count();
    let decomposition = decompose(&s.series, s.series.points_per_day());
    let (daily_seasonal_strength, trend_strength) = decomposition
        .as_ref()
        .map(|d| (d.seasonal_strength(), d.trend_strength()))
        .unwrap_or((0.0, 0.0));
    let load_anomalies = detect_anomalies(&s.series, &AnomalyConfig::default()).len();
    ServerFeatures {
        server_id: s.id.0,
        observed_days: len as f64 / s.series.points_per_day() as f64,
        stats: SummaryStats::compute(s.series.values()),
        missing_fraction: if len == 0 {
            1.0
        } else {
            missing as f64 / len as f64
        },
        pattern: classify_series(&s.series, config),
        daily_seasonal_strength,
        trend_strength,
        load_anomalies,
        backup_duration_min: s.default_backup_end - s.default_backup_start,
    }
}

/// Extracts features for every server in a region-week.
pub fn extract_features(
    servers: &[ExtractedServer],
    config: &ClassifyConfig,
) -> Vec<ServerFeatures> {
    servers
        .iter()
        .map(|s| extract_server_features(s, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use seagull_telemetry::server::ServerId;
    use seagull_timeseries::{TimeSeries, Timestamp};

    fn server(id: u64, values: Vec<f64>) -> ExtractedServer {
        ExtractedServer {
            id: ServerId(id),
            series: TimeSeries::new(Timestamp::from_days(7), 5, values).unwrap(),
            default_backup_start: Timestamp::from_days(8),
            default_backup_end: Timestamp::from_days(8) + 90,
        }
    }

    #[test]
    fn features_capture_basics() {
        let servers = vec![server(1, vec![10.0; 2 * 288])];
        let feats = extract_features(&servers, &ClassifyConfig::default());
        assert_eq!(feats.len(), 1);
        let f = &feats[0];
        assert_eq!(f.server_id, 1);
        assert!((f.observed_days - 2.0).abs() < 1e-9);
        assert_eq!(f.stats.mean, 10.0);
        assert_eq!(f.missing_fraction, 0.0);
        assert_eq!(f.pattern, ServerClass::Stable);
        assert_eq!(f.backup_duration_min, 90);
    }

    #[test]
    fn missing_fraction_counted() {
        let mut values = vec![5.0; 288];
        for v in values.iter_mut().take(72) {
            *v = f64::NAN;
        }
        let feats = extract_features(&[server(2, values)], &ClassifyConfig::default());
        assert!((feats[0].missing_fraction - 0.25).abs() < 1e-9);
        assert_eq!(feats[0].stats.missing, 72);
    }

    #[test]
    fn empty_series_is_fully_missing() {
        let feats = extract_features(&[server(3, vec![])], &ClassifyConfig::default());
        assert_eq!(feats[0].missing_fraction, 1.0);
        assert_eq!(feats[0].observed_days, 0.0);
    }

    #[test]
    fn seasonal_strength_separates_patterned_from_flat() {
        let flat = server(10, vec![20.0; 7 * 288]);
        let wavy_vals: Vec<f64> = (0..7 * 288)
            .map(|i| {
                let m = (i % 288) as f64 * 5.0;
                30.0 + 30.0 * (2.0 * std::f64::consts::PI * m / 1440.0).sin()
            })
            .collect();
        let wavy = server(11, wavy_vals);
        let feats = extract_features(&[flat, wavy], &ClassifyConfig::default());
        assert!(feats[0].daily_seasonal_strength < 0.2);
        assert!(feats[1].daily_seasonal_strength > 0.8);
    }

    #[test]
    fn anomaly_count_flows_through() {
        let mut vals = vec![20.0; 2 * 288];
        vals[100] = 99.0;
        let feats = extract_features(&[server(12, vals)], &ClassifyConfig::default());
        assert_eq!(feats[0].load_anomalies, 1);
    }

    #[test]
    fn pattern_flags_flow_through() {
        let wavy: Vec<f64> = (0..7 * 288)
            .map(|i| {
                let m = (i % 288) as f64 * 5.0;
                30.0 + 30.0 * (2.0 * std::f64::consts::PI * m / 1440.0).sin()
            })
            .collect();
        let feats = extract_features(&[server(4, wavy)], &ClassifyConfig::default());
        assert_eq!(feats[0].pattern, ServerClass::DailyPattern);
    }
}
