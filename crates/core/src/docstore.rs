//! The Cosmos DB substitute: an embedded, thread-safe JSON document store.
//!
//! "Results are stored in Cosmos DB, globally distributed and highly
//! available database service" (Section 2.2). The pipeline writes prediction
//! and accuracy documents here; the backup scheduler queries them. This
//! substitute keeps the same shape — named collections of JSON documents with
//! string ids, upsert semantics, and filtered scans — in-process.

use parking_lot::RwLock;
use serde::de::DeserializeOwned;
use serde::Serialize;
use serde_json::Value;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Errors from the document store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DocStoreError {
    /// Serialization or deserialization failed.
    Codec(String),
    /// Document not found.
    NotFound {
        /// Collection that was queried.
        collection: String,
        /// Missing document id.
        id: String,
    },
}

impl fmt::Display for DocStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DocStoreError::Codec(m) => write!(f, "codec error: {m}"),
            DocStoreError::NotFound { collection, id } => {
                write!(f, "document {collection}/{id} not found")
            }
        }
    }
}

impl std::error::Error for DocStoreError {}

#[derive(Default)]
struct Inner {
    collections: BTreeMap<String, BTreeMap<String, Value>>,
}

/// A shared handle to the store (cheaply cloneable).
///
/// ```
/// use seagull_core::docstore::DocStore;
/// let store = DocStore::new();
/// store.upsert("scores", "a", &42.0).unwrap();
/// let v: f64 = store.get("scores", "a").unwrap();
/// assert_eq!(v, 42.0);
/// assert_eq!(store.count("scores"), 1);
/// ```
#[derive(Clone, Default)]
pub struct DocStore {
    inner: Arc<RwLock<Inner>>,
}

impl DocStore {
    /// Creates an empty store.
    pub fn new() -> DocStore {
        DocStore::default()
    }

    /// Inserts or replaces a document.
    pub fn upsert<T: Serialize>(
        &self,
        collection: &str,
        id: &str,
        doc: &T,
    ) -> Result<(), DocStoreError> {
        let value = serde_json::to_value(doc).map_err(|e| DocStoreError::Codec(e.to_string()))?;
        self.inner
            .write()
            .collections
            .entry(collection.to_string())
            .or_default()
            .insert(id.to_string(), value);
        Ok(())
    }

    /// Fetches and decodes a document.
    pub fn get<T: DeserializeOwned>(&self, collection: &str, id: &str) -> Result<T, DocStoreError> {
        let guard = self.inner.read();
        let value = guard
            .collections
            .get(collection)
            .and_then(|c| c.get(id))
            .ok_or_else(|| DocStoreError::NotFound {
                collection: collection.to_string(),
                id: id.to_string(),
            })?;
        serde_json::from_value(value.clone()).map_err(|e| DocStoreError::Codec(e.to_string()))
    }

    /// True if the document exists.
    pub fn contains(&self, collection: &str, id: &str) -> bool {
        self.inner
            .read()
            .collections
            .get(collection)
            .is_some_and(|c| c.contains_key(id))
    }

    /// Deletes a document; returns whether it existed.
    pub fn delete(&self, collection: &str, id: &str) -> bool {
        self.inner
            .write()
            .collections
            .get_mut(collection)
            .is_some_and(|c| c.remove(id).is_some())
    }

    /// Decodes every document in a collection (id-sorted).
    pub fn scan<T: DeserializeOwned>(&self, collection: &str) -> Result<Vec<T>, DocStoreError> {
        let guard = self.inner.read();
        let Some(coll) = guard.collections.get(collection) else {
            return Ok(Vec::new());
        };
        coll.values()
            .map(|v| {
                serde_json::from_value(v.clone()).map_err(|e| DocStoreError::Codec(e.to_string()))
            })
            .collect()
    }

    /// Decodes documents whose raw JSON passes `filter` (id-sorted).
    pub fn query<T: DeserializeOwned>(
        &self,
        collection: &str,
        filter: impl Fn(&Value) -> bool,
    ) -> Result<Vec<T>, DocStoreError> {
        let guard = self.inner.read();
        let Some(coll) = guard.collections.get(collection) else {
            return Ok(Vec::new());
        };
        coll.values()
            .filter(|v| filter(v))
            .map(|v| {
                serde_json::from_value(v.clone()).map_err(|e| DocStoreError::Codec(e.to_string()))
            })
            .collect()
    }

    /// Ids in a collection (sorted).
    pub fn ids(&self, collection: &str) -> Vec<String> {
        self.inner
            .read()
            .collections
            .get(collection)
            .map(|c| c.keys().cloned().collect())
            .unwrap_or_default()
    }

    /// Number of documents in a collection.
    pub fn count(&self, collection: &str) -> usize {
        self.inner
            .read()
            .collections
            .get(collection)
            .map_or(0, |c| c.len())
    }

    /// Names of all collections.
    pub fn collections(&self) -> Vec<String> {
        self.inner.read().collections.keys().cloned().collect()
    }

    /// Serializes the entire store to pretty JSON (the durability primitive:
    /// Cosmos DB persists; this substitute snapshots).
    pub fn snapshot_json(&self) -> Result<String, DocStoreError> {
        let guard = self.inner.read();
        serde_json::to_string_pretty(&guard.collections)
            .map_err(|e| DocStoreError::Codec(e.to_string()))
    }

    /// Restores a store from a [`DocStore::snapshot_json`] payload.
    pub fn from_snapshot_json(json: &str) -> Result<DocStore, DocStoreError> {
        let collections: BTreeMap<String, BTreeMap<String, Value>> =
            serde_json::from_str(json).map_err(|e| DocStoreError::Codec(e.to_string()))?;
        Ok(DocStore {
            inner: Arc::new(RwLock::new(Inner { collections })),
        })
    }

    /// Writes a snapshot to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), DocStoreError> {
        let json = self.snapshot_json()?;
        std::fs::write(path, json).map_err(|e| DocStoreError::Codec(e.to_string()))
    }

    /// Loads a store from a snapshot file.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<DocStore, DocStoreError> {
        let json =
            std::fs::read_to_string(path).map_err(|e| DocStoreError::Codec(e.to_string()))?;
        Self::from_snapshot_json(&json)
    }
}

impl fmt::Debug for DocStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let guard = self.inner.read();
        f.debug_map()
            .entries(guard.collections.iter().map(|(k, v)| (k, v.len())))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Doc {
        region: String,
        score: f64,
    }

    fn doc(region: &str, score: f64) -> Doc {
        Doc {
            region: region.into(),
            score,
        }
    }

    #[test]
    fn upsert_get_round_trip() {
        let store = DocStore::new();
        store.upsert("results", "a", &doc("west", 1.0)).unwrap();
        let got: Doc = store.get("results", "a").unwrap();
        assert_eq!(got, doc("west", 1.0));
    }

    #[test]
    fn upsert_replaces() {
        let store = DocStore::new();
        store.upsert("r", "a", &doc("west", 1.0)).unwrap();
        store.upsert("r", "a", &doc("west", 2.0)).unwrap();
        let got: Doc = store.get("r", "a").unwrap();
        assert_eq!(got.score, 2.0);
        assert_eq!(store.count("r"), 1);
    }

    #[test]
    fn missing_document_errors() {
        let store = DocStore::new();
        let err = store.get::<Doc>("r", "nope").unwrap_err();
        assert!(matches!(err, DocStoreError::NotFound { .. }));
        assert!(!store.contains("r", "nope"));
    }

    #[test]
    fn delete_semantics() {
        let store = DocStore::new();
        store.upsert("r", "a", &doc("w", 1.0)).unwrap();
        assert!(store.delete("r", "a"));
        assert!(!store.delete("r", "a"));
        assert!(!store.contains("r", "a"));
    }

    #[test]
    fn scan_and_query() {
        let store = DocStore::new();
        store.upsert("r", "a", &doc("west", 1.0)).unwrap();
        store.upsert("r", "b", &doc("east", 2.0)).unwrap();
        store.upsert("r", "c", &doc("west", 3.0)).unwrap();
        let all: Vec<Doc> = store.scan("r").unwrap();
        assert_eq!(all.len(), 3);
        let west: Vec<Doc> = store.query("r", |v| v["region"] == "west").unwrap();
        assert_eq!(west.len(), 2);
        assert!(west.iter().all(|d| d.region == "west"));
        let none: Vec<Doc> = store.scan("empty").unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn ids_and_collections() {
        let store = DocStore::new();
        store.upsert("beta", "2", &doc("e", 0.0)).unwrap();
        store.upsert("alpha", "1", &doc("w", 0.0)).unwrap();
        assert_eq!(store.collections(), vec!["alpha", "beta"]);
        assert_eq!(store.ids("beta"), vec!["2"]);
    }

    #[test]
    fn concurrent_writers() {
        let store = DocStore::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let store = store.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        store
                            .upsert("c", &format!("{t}-{i}"), &doc("r", i as f64))
                            .unwrap();
                    }
                });
            }
        });
        assert_eq!(store.count("c"), 400);
    }

    #[test]
    fn snapshot_round_trips() {
        let store = DocStore::new();
        store.upsert("r", "a", &doc("west", 1.0)).unwrap();
        store.upsert("s", "b", &doc("east", 2.0)).unwrap();
        let json = store.snapshot_json().unwrap();
        let restored = DocStore::from_snapshot_json(&json).unwrap();
        let got: Doc = restored.get("r", "a").unwrap();
        assert_eq!(got, doc("west", 1.0));
        assert_eq!(restored.count("s"), 1);
        assert_eq!(restored.collections(), store.collections());
    }

    #[test]
    fn save_load_round_trips() {
        let dir = std::env::temp_dir().join(format!(
            "seagull-docstore-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.json");
        let store = DocStore::new();
        store.upsert("r", "a", &doc("w", 7.0)).unwrap();
        store.save(&path).unwrap();
        let restored = DocStore::load(&path).unwrap();
        let got: Doc = restored.get("r", "a").unwrap();
        assert_eq!(got.score, 7.0);
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(DocStore::load("/nonexistent/snapshot.json").is_err());
        assert!(DocStore::from_snapshot_json("not json").is_err());
    }

    #[test]
    fn wrong_shape_decodes_to_codec_error() {
        let store = DocStore::new();
        store.upsert("r", "a", &"just a string").unwrap();
        let err = store.get::<Doc>("r", "a").unwrap_err();
        assert!(matches!(err, DocStoreError::Codec(_)));
    }
}
