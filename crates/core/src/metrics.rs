//! Low-load prediction accuracy metrics — Definitions 1–9 of the paper,
//! plus the Appendix A error metrics (Mean NRMSE, MASE).
//!
//! The paper's central methodological contribution is that classical error
//! metrics "give no insights into whether the lowest load window was chosen
//! correctly per server per day nor whether the load was predicted accurately
//! during this window" (Section 3.1), and replaces them with two use-case
//! metrics: the *bucket ratio* under an asymmetric error bound, and the
//! *lowest-load window* correctness check.

use seagull_timeseries::{min_mean_window, TimeSeries, Timestamp};
use serde::{Deserialize, Serialize};

/// Definition 1's acceptable error bound.
///
/// Asymmetric by design: "+10/−5 ... because a slight overestimation of low
/// load periods is less critical for our use case than a slight
/// underestimation that may result in interference with high customer load."
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorBound {
    /// Tolerated over-prediction, in CPU percentage points (paper: 10).
    pub over: f64,
    /// Tolerated under-prediction, in CPU percentage points (paper: 5).
    pub under: f64,
}

impl Default for ErrorBound {
    fn default() -> Self {
        ErrorBound {
            over: 10.0,
            under: 5.0,
        }
    }
}

impl ErrorBound {
    /// A symmetric bound (used by the ablation study).
    pub fn symmetric(width: f64) -> ErrorBound {
        ErrorBound {
            over: width,
            under: width,
        }
    }

    /// True if `predicted` is within the bound of `truth`.
    #[inline]
    pub fn contains(&self, predicted: f64, truth: f64) -> bool {
        let err = predicted - truth;
        err <= self.over && -err <= self.under
    }
}

/// Accuracy thresholds (Definitions 1–2 constants).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyConfig {
    /// The asymmetric error bound (Definition 1).
    pub bound: ErrorBound,
    /// Minimum bucket ratio (in percent) for a prediction to count as
    /// accurate (paper: 90).
    pub bucket_ratio_threshold: f64,
}

impl Default for AccuracyConfig {
    fn default() -> Self {
        AccuracyConfig {
            bound: ErrorBound::default(),
            bucket_ratio_threshold: 90.0,
        }
    }
}

/// Definition 1: the percentage of predicted points within the acceptable
/// error bound of their true counterparts, over `[0, 100]`.
///
/// ```
/// use seagull_core::metrics::{bucket_ratio, ErrorBound};
/// let truth = [20.0, 20.0, 20.0, 20.0];
/// let predicted = [22.0, 29.0, 14.0, 31.0]; // hit, hit, miss(-6), miss(+11)
/// let ratio = bucket_ratio(&predicted, &truth, &ErrorBound::default());
/// assert_eq!(ratio, Some(50.0));
/// ```
///
/// Missing *true* points (NaN) carry no ground truth and are excluded from
/// the denominator; missing *predicted* points are automatic misses. Returns
/// `None` when no comparable pair exists or the slices differ in length.
pub fn bucket_ratio(predicted: &[f64], truth: &[f64], bound: &ErrorBound) -> Option<f64> {
    if predicted.len() != truth.len() {
        return None;
    }
    let mut hits = 0usize;
    let mut total = 0usize;
    for (&p, &t) in predicted.iter().zip(truth) {
        if t.is_nan() {
            continue;
        }
        total += 1;
        if !p.is_nan() && bound.contains(p, t) {
            hits += 1;
        }
    }
    (total > 0).then(|| 100.0 * hits as f64 / total as f64)
}

/// Definition 2: a prediction is accurate when the bucket ratio reaches the
/// threshold (90 % in production).
pub fn is_accurate(predicted: &[f64], truth: &[f64], config: &AccuracyConfig) -> bool {
    bucket_ratio(predicted, truth, &config.bound)
        .is_some_and(|r| r >= config.bucket_ratio_threshold)
}

/// Definition 7: a lowest-load window — the contiguous interval of the
/// backup's length with minimal average load on a day.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LowLoadWindow {
    /// Window start time.
    pub start: Timestamp,
    /// Window length in minutes.
    pub duration_min: u32,
    /// Average load (of the series it was computed on) inside the window.
    pub mean_load: f64,
}

impl LowLoadWindow {
    /// Exclusive end of the window.
    pub fn end(&self) -> Timestamp {
        self.start + self.duration_min as i64
    }
}

/// Finds the lowest-load window of `duration_min` minutes in a day (or any
/// span) of load. Returns `None` if the duration does not fit on the grid or
/// exceeds the series.
///
/// ```
/// use seagull_core::metrics::lowest_load_window;
/// use seagull_timeseries::{TimeSeries, Timestamp};
/// let day = TimeSeries::new(
///     Timestamp::from_days(10), 5,
///     vec![50.0, 40.0, 5.0, 5.0, 30.0, 60.0],
/// ).unwrap();
/// let w = lowest_load_window(&day, 10).unwrap(); // 10 minutes = 2 points
/// assert_eq!(w.start, day.timestamp_at(2));
/// assert_eq!(w.mean_load, 5.0);
/// ```
pub fn lowest_load_window(day: &TimeSeries, duration_min: u32) -> Option<LowLoadWindow> {
    let step = day.step_min();
    if duration_min == 0 || !duration_min.is_multiple_of(step) {
        return None;
    }
    let len = (duration_min / step) as usize;
    let stat = min_mean_window(day.values(), len)?;
    Some(LowLoadWindow {
        start: day.timestamp_at(stat.start_index),
        duration_min,
        mean_load: stat.mean,
    })
}

/// The combined Definition 8 + Definition 2 evaluation of one server-day.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LowLoadEvaluation {
    /// True LL window (computed on the true load).
    pub true_window: LowLoadWindow,
    /// Predicted LL window (computed on the predicted load).
    pub predicted_window: LowLoadWindow,
    /// Average *true* load inside the predicted window.
    pub true_load_in_predicted: f64,
    /// Definition 8: predicted window chosen correctly.
    pub window_correct: bool,
    /// Bucket ratio of predicted-vs-true inside the predicted window.
    pub window_bucket_ratio: f64,
    /// Definition 2 applied inside the predicted window.
    pub load_accurate: bool,
}

/// Evaluates the two orthogonal low-load metrics for one day.
///
/// `truth` and `predicted` must cover the same day on the same grid.
/// Returns `None` when the windows cannot be computed (mismatched grids,
/// oversized duration, all-missing data).
pub fn evaluate_low_load(
    truth: &TimeSeries,
    predicted: &TimeSeries,
    duration_min: u32,
    config: &AccuracyConfig,
) -> Option<LowLoadEvaluation> {
    if !truth.same_grid(predicted)
        || truth.start() != predicted.start()
        || truth.len() != predicted.len()
    {
        return None;
    }
    let true_window = lowest_load_window(truth, duration_min)?;
    let predicted_window = lowest_load_window(predicted, duration_min)?;

    // Average true load during the predicted window.
    let true_in_pred = truth
        .slice_values(predicted_window.start, predicted_window.end())
        .ok()?;
    let true_load_in_predicted = seagull_timeseries::mean(true_in_pred);

    // Definition 8: the predicted window is correct when the true load there
    // is within the bound of the true minimum ("there is no other window ...
    // that has significantly lower average user CPU load").
    let window_correct = config
        .bound
        .contains(true_load_in_predicted, true_window.mean_load);

    // Definition 2 inside the predicted window.
    let pred_in_pred = predicted
        .slice_values(predicted_window.start, predicted_window.end())
        .ok()?;
    let window_bucket_ratio =
        bucket_ratio(pred_in_pred, true_in_pred, &config.bound).unwrap_or(0.0);
    let load_accurate = window_bucket_ratio >= config.bucket_ratio_threshold;

    Some(LowLoadEvaluation {
        true_window,
        predicted_window,
        true_load_in_predicted,
        window_correct,
        window_bucket_ratio,
        load_accurate,
    })
}

/// Appendix A, Equation 2: `sqrt(mean(error²)) / mean(true)`.
///
/// Returns `None` for empty input or a zero true mean.
pub fn mean_nrmse(predicted: &[f64], truth: &[f64]) -> Option<f64> {
    if predicted.len() != truth.len() || truth.is_empty() {
        return None;
    }
    let mse = predicted
        .iter()
        .zip(truth)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / truth.len() as f64;
    let mean_true = seagull_timeseries::mean(truth);
    (mean_true.abs() > 1e-12).then(|| mse.sqrt() / mean_true)
}

/// Appendix A, Equation 3: mean absolute error scaled by the in-sample
/// one-step-ahead naive error ("the error produced by a one step ahead true
/// forecast").
///
/// Returns `None` for empty/mismatched input or a constant true series
/// (zero normalizing factor).
pub fn mase(predicted: &[f64], truth: &[f64]) -> Option<f64> {
    if predicted.len() != truth.len() || truth.len() < 2 {
        return None;
    }
    let mae = predicted
        .iter()
        .zip(truth)
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / truth.len() as f64;
    let naive =
        truth.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (truth.len() - 1) as f64;
    (naive > 1e-12).then(|| mae / naive)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seagull_timeseries::Timestamp;

    fn ts(vals: &[f64]) -> TimeSeries {
        TimeSeries::new(Timestamp::from_days(4), 5, vals.to_vec()).unwrap()
    }

    #[test]
    fn bound_is_asymmetric() {
        let b = ErrorBound::default();
        assert!(b.contains(25.0, 20.0)); // +5 over: ok
        assert!(b.contains(30.0, 20.0)); // +10 over: boundary ok
        assert!(!b.contains(30.1, 20.0)); // beyond +10
        assert!(b.contains(15.0, 20.0)); // -5 under: boundary ok
        assert!(!b.contains(14.9, 20.0)); // beyond -5
        assert!(b.contains(20.0, 20.0));
    }

    #[test]
    fn bucket_ratio_counts_hits() {
        let b = ErrorBound::default();
        let truth = [10.0, 10.0, 10.0, 10.0];
        let pred = [12.0, 21.0, 6.0, 4.0]; // hit, miss(+11), hit(-4), miss(-6)
        assert_eq!(bucket_ratio(&pred, &truth, &b), Some(50.0));
    }

    #[test]
    fn bucket_ratio_nan_semantics() {
        let b = ErrorBound::default();
        // True NaN excluded from denominator; predicted NaN is a miss.
        let truth = [10.0, f64::NAN, 10.0];
        let pred = [10.0, 10.0, f64::NAN];
        assert_eq!(bucket_ratio(&pred, &truth, &b), Some(50.0));
        assert_eq!(bucket_ratio(&[1.0], &[f64::NAN], &b), None);
        assert_eq!(bucket_ratio(&[1.0, 2.0], &[1.0], &b), None);
        assert_eq!(bucket_ratio(&[], &[], &b), None);
    }

    #[test]
    fn figure2_style_inaccuracy() {
        // A prediction that looks "close enough" but only 75 % of points are
        // in the bound is inaccurate under Definition 2.
        let cfg = AccuracyConfig::default();
        let truth = vec![20.0; 100];
        let mut pred = vec![22.0; 100];
        for p in pred.iter_mut().take(25) {
            *p = 33.0; // 25 % of points exceed the +10 bound
        }
        assert_eq!(bucket_ratio(&pred, &truth, &cfg.bound), Some(75.0));
        assert!(!is_accurate(&pred, &truth, &cfg));
        // At 90 % the prediction becomes accurate.
        let pred_good: Vec<f64> = (0..100).map(|i| if i < 10 { 33.0 } else { 22.0 }).collect();
        assert!(is_accurate(&pred_good, &truth, &cfg));
    }

    #[test]
    fn ll_window_finds_valley() {
        // Valley of length 3 (15 minutes) at indices 4..7.
        let day = ts(&[50.0, 40.0, 30.0, 20.0, 1.0, 1.0, 1.0, 20.0, 30.0]);
        let w = lowest_load_window(&day, 15).unwrap();
        assert_eq!(w.start, day.timestamp_at(4));
        assert_eq!(w.duration_min, 15);
        assert!((w.mean_load - 1.0).abs() < 1e-12);
        assert_eq!(w.end() - w.start, 15);
    }

    #[test]
    fn ll_window_rejects_bad_durations() {
        let day = ts(&[1.0, 2.0, 3.0]);
        assert!(lowest_load_window(&day, 0).is_none());
        assert!(lowest_load_window(&day, 7).is_none()); // not on the grid
        assert!(lowest_load_window(&day, 20).is_none()); // longer than day
    }

    #[test]
    fn figure8_overlapping_not_required_for_correctness() {
        // True valley at the start, predicted valley at the end, but the true
        // load at the predicted window is only slightly higher: correct.
        let truth = ts(&[2.0, 2.0, 10.0, 10.0, 3.0, 3.0]);
        let predicted = ts(&[9.0, 9.0, 9.0, 9.0, 1.0, 1.0]);
        let eval = evaluate_low_load(&truth, &predicted, 10, &AccuracyConfig::default()).unwrap();
        assert_eq!(eval.true_window.start, truth.timestamp_at(0));
        assert_eq!(eval.predicted_window.start, truth.timestamp_at(4));
        assert!((eval.true_load_in_predicted - 3.0).abs() < 1e-12);
        assert!(eval.window_correct); // 3.0 within +10 of 2.0
    }

    #[test]
    fn figure9_accurate_load_wrong_window() {
        // Predicted load matches true load closely inside the predicted
        // window, but the true LL window is much lower elsewhere.
        let truth = ts(&[0.0, 0.0, 30.0, 30.0, 30.0, 30.0]);
        let predicted = ts(&[50.0, 50.0, 31.0, 31.0, 31.0, 31.0]);
        let eval = evaluate_low_load(&truth, &predicted, 10, &AccuracyConfig::default()).unwrap();
        assert!(eval.load_accurate, "load prediction is accurate in-window");
        assert!(!eval.window_correct, "but the window is 30 points worse");
    }

    #[test]
    fn figure10_correct_window_inaccurate_load() {
        // Windows coincide but the true load is far above the prediction.
        let truth = ts(&[30.0, 30.0, 20.0, 20.0, 60.0, 60.0]);
        let predicted = ts(&[32.0, 32.0, 2.0, 2.0, 64.0, 64.0]);
        let eval = evaluate_low_load(&truth, &predicted, 10, &AccuracyConfig::default()).unwrap();
        assert!(eval.window_correct, "windows coincide");
        assert!(!eval.load_accurate, "under-predicted by 18");
        assert_eq!(eval.window_bucket_ratio, 0.0);
    }

    #[test]
    fn evaluate_rejects_mismatched_series() {
        let truth = ts(&[1.0, 2.0, 3.0]);
        let other = TimeSeries::new(Timestamp::from_days(5), 5, vec![1.0, 2.0, 3.0]).unwrap();
        assert!(evaluate_low_load(&truth, &other, 10, &AccuracyConfig::default()).is_none());
        let short = ts(&[1.0, 2.0]);
        assert!(evaluate_low_load(&truth, &short, 10, &AccuracyConfig::default()).is_none());
    }

    #[test]
    fn nrmse_of_mean_prediction_is_one_ish() {
        // Predicting the mean gives NRMSE = std/mean by this definition.
        let truth = [10.0, 20.0, 30.0, 40.0];
        let mean = 25.0;
        let pred = [mean; 4];
        let n = mean_nrmse(&pred, &truth).unwrap();
        let expect = seagull_timeseries::stddev(&truth) / mean;
        assert!((n - expect).abs() < 1e-12);
        assert!(mean_nrmse(&[], &[]).is_none());
        assert!(mean_nrmse(&[1.0], &[0.0]).is_none());
    }

    #[test]
    fn perfect_prediction_scores_zero() {
        let truth = [5.0, 6.0, 7.0];
        assert_eq!(mean_nrmse(&truth, &truth), Some(0.0));
        assert_eq!(mase(&truth, &truth), Some(0.0));
    }

    #[test]
    fn mase_scales_by_naive_error() {
        let truth = [0.0, 1.0, 0.0, 1.0]; // naive error = 1
        let pred = [0.5, 0.5, 0.5, 0.5]; // mae = 0.5
        assert!((mase(&pred, &truth).unwrap() - 0.5).abs() < 1e-12);
        // Constant series: undefined.
        assert!(mase(&[1.0, 1.0], &[2.0, 2.0]).is_none());
        assert!(mase(&[1.0], &[1.0]).is_none());
    }

    #[test]
    fn symmetric_bound_helper() {
        let b = ErrorBound::symmetric(5.0);
        assert!(b.contains(25.0, 20.0));
        assert!(b.contains(15.0, 20.0));
        assert!(!b.contains(26.0, 20.0));
    }
}
