//! # seagull-core
//!
//! The Seagull infrastructure itself — the paper's primary contribution
//! (Sections 2–4): the use-case-agnostic pipeline that consumes load,
//! validates it, extracts features, trains/deploys forecasting models,
//! performs inference, evaluates low-load prediction accuracy, stores
//! results, and monitors itself.
//!
//! * [`metrics`] — Definitions 1–9: the asymmetric error bound, bucket
//!   ratio, lowest-load windows, and the combined evaluation; plus the
//!   Appendix A NRMSE/MASE metrics.
//! * [`classify`] — Definitions 3–6 server classification (Figure 3).
//! * [`validation`] — the Data Validation module (schema/bound anomalies).
//! * [`features`] — the Feature Extraction module.
//! * [`evaluate`] — the Accuracy Evaluation module: backup-day evaluation
//!   and the three-week predictability gate (Definition 9), serial or
//!   parallel.
//! * [`pipeline`] — the AML-pipeline substitute orchestrating all stages,
//!   with per-stage timing (Figure 12(a)).
//! * [`registry`] — model version tracking, deployment endpoints, and the
//!   last-known-good fallback rule.
//! * [`docstore`] — the Cosmos DB substitute where results land.
//! * [`incident`] / [`dashboard`] — alerting and the Application Insights
//!   substitute.
//! * [`resilience`] — retry-with-backoff and per-region circuit breaking,
//!   threaded through every pipeline stage so transient faults degrade runs
//!   instead of aborting them.
//! * [`par`] — the Dask substitute: a persistent work-stealing pool behind
//!   the parallel maps used by the per-server stages (Figure 12(b)).
//! * [`fleet`] — the cross-region orchestrator: concurrent region runs with
//!   deterministic observability merging and a warm-model cache.

#![warn(missing_docs)]

pub mod classify;
pub mod clock;
pub mod dashboard;
pub mod docstore;
pub mod evaluate;
pub mod features;
pub mod fleet;
pub mod incident;
pub mod metrics;
pub mod par;
pub mod pipeline;
pub mod registry;
pub mod resilience;
pub mod validation;

pub use classify::{classify_fleet, classify_fleet_with, ClassificationReport, ServerClass};
pub use clock::{JobRun, JobScheduler, RecurringJob};
pub use dashboard::{Dashboard, DashboardSummary};
pub use docstore::{DocStore, DocStoreError};
pub use evaluate::{
    evaluate_backup_day, evaluate_fleet_week, predictability, predictability_fleet,
    AccuracySummary, EvaluationConfig,
};
pub use features::{extract_features, ServerFeatures};
pub use fleet::{checkpoint_key, FleetRunner, CHECKPOINT_KIND};
pub use incident::{Incident, IncidentManager, Severity};
pub use metrics::{
    bucket_ratio, evaluate_low_load, is_accurate, lowest_load_window, AccuracyConfig, ErrorBound,
    LowLoadEvaluation, LowLoadWindow,
};
pub use par::{configured_threads, default_threads, parallel_map};
pub use pipeline::{AmlPipeline, DegradedRun, PipelineConfig, PipelineRunReport};
pub use registry::{EndpointSet, ModelAccuracy, ModelRegistry};
pub use resilience::{
    BreakerConfig, BreakerState, CircuitBreaker, InjectedCrash, ResiliencePolicy, RetryPolicy,
    StageChaos, StageError,
};
pub use validation::{
    validate_batch, validate_columnar, validate_region_week, validate_servers, Anomaly,
    DataProfile, ValidationReport,
};
