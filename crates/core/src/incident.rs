//! Incident management.
//!
//! "Examples of incidents include missing or invalid input data, errors or
//! exceptions in any step of the pipeline, and failed model deployment"
//! (Section 2.2). Incidents raised here feed the dashboard and, in
//! production, the paging system.

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Incident severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    Info,
    Warning,
    Critical,
}

/// Incident lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IncidentState {
    Open,
    Resolved,
}

/// One incident.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Incident {
    pub id: u64,
    pub severity: Severity,
    /// The component that raised it (e.g. `"validation"`, `"deployment"`).
    pub source: String,
    /// Region the run belonged to.
    pub region: String,
    pub message: String,
    pub state: IncidentState,
}

#[derive(Default)]
struct Inner {
    incidents: Vec<Incident>,
    next_id: u64,
}

/// Thread-safe incident log shared across pipeline components.
#[derive(Clone, Default)]
pub struct IncidentManager {
    inner: Arc<RwLock<Inner>>,
}

impl IncidentManager {
    /// Creates an empty manager.
    pub fn new() -> IncidentManager {
        IncidentManager::default()
    }

    /// Raises an incident, returning its id.
    pub fn raise(
        &self,
        severity: Severity,
        source: &str,
        region: &str,
        message: impl Into<String>,
    ) -> u64 {
        let mut inner = self.inner.write();
        let id = inner.next_id;
        inner.next_id += 1;
        inner.incidents.push(Incident {
            id,
            severity,
            source: source.to_string(),
            region: region.to_string(),
            message: message.into(),
            state: IncidentState::Open,
        });
        id
    }

    /// Resolves an incident; returns whether it existed and was open.
    pub fn resolve(&self, id: u64) -> bool {
        let mut inner = self.inner.write();
        match inner.incidents.iter_mut().find(|i| i.id == id) {
            Some(i) if i.state == IncidentState::Open => {
                i.state = IncidentState::Resolved;
                true
            }
            _ => false,
        }
    }

    /// All incidents (snapshot).
    pub fn all(&self) -> Vec<Incident> {
        self.inner.read().incidents.clone()
    }

    /// Open incidents (snapshot).
    pub fn open(&self) -> Vec<Incident> {
        self.inner
            .read()
            .incidents
            .iter()
            .filter(|i| i.state == IncidentState::Open)
            .cloned()
            .collect()
    }

    /// Count by severity, open incidents only.
    pub fn open_count(&self, severity: Severity) -> usize {
        self.inner
            .read()
            .incidents
            .iter()
            .filter(|i| i.state == IncidentState::Open && i.severity == severity)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raise_and_list() {
        let m = IncidentManager::new();
        let a = m.raise(Severity::Warning, "validation", "west", "bound anomaly");
        let b = m.raise(Severity::Critical, "deployment", "west", "deploy failed");
        assert_ne!(a, b);
        assert_eq!(m.all().len(), 2);
        assert_eq!(m.open_count(Severity::Critical), 1);
        assert_eq!(m.open_count(Severity::Warning), 1);
        assert_eq!(m.open_count(Severity::Info), 0);
    }

    #[test]
    fn resolve_lifecycle() {
        let m = IncidentManager::new();
        let id = m.raise(Severity::Info, "x", "r", "msg");
        assert!(m.resolve(id));
        assert!(!m.resolve(id), "double resolve is a no-op");
        assert!(!m.resolve(999), "unknown id");
        assert!(m.open().is_empty());
        assert_eq!(m.all().len(), 1);
    }

    #[test]
    fn concurrent_raises_get_unique_ids() {
        let m = IncidentManager::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..50 {
                        m.raise(Severity::Info, "t", "r", "m");
                    }
                });
            }
        });
        let mut ids: Vec<u64> = m.all().iter().map(|i| i.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 200);
    }
}
