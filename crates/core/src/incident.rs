//! Incident management.
//!
//! "Examples of incidents include missing or invalid input data, errors or
//! exceptions in any step of the pipeline, and failed model deployment"
//! (Section 2.2). Incidents raised here feed the dashboard and, in
//! production, the paging system.
//!
//! Raises are fingerprinted: a repeat of the same open
//! `(severity, source, region, message-key)` increments a count on the
//! existing incident instead of appending a duplicate row, so retry loops
//! cannot flood the log. The key defaults to the full message
//! ([`IncidentManager::raise`]); components with varying detail text pass a
//! stable key via [`IncidentManager::raise_keyed`].

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Incident severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Informational; no operator action expected.
    Info,
    /// Degraded but serving; worth a look.
    Warning,
    /// Requires operator attention (pages in production).
    Critical,
}

/// Incident lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IncidentState {
    /// Raised and not yet resolved.
    Open,
    /// Resolved; kept in the log for history.
    Resolved,
}

fn default_count() -> u32 {
    1
}

/// One incident.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Incident {
    /// Monotonically increasing id within one manager.
    pub id: u64,
    /// How bad it is.
    pub severity: Severity,
    /// The component that raised it (e.g. `"validation"`, `"deployment"`).
    pub source: String,
    /// Region the run belonged to.
    pub region: String,
    /// Latest human-readable description.
    pub message: String,
    /// Dedup fingerprint within `(severity, source, region)`; defaults to
    /// the message.
    #[serde(default)]
    pub message_key: String,
    /// How many times this incident was raised while open.
    #[serde(default = "default_count")]
    pub count: u32,
    /// Current lifecycle state.
    pub state: IncidentState,
}

/// One logical mutation of the incident log, as recorded by a journaling
/// manager (see [`IncidentManager::recording`]).
#[derive(Debug, Clone)]
enum IncidentEvent {
    Raise {
        severity: Severity,
        source: String,
        region: String,
        key: String,
        message: String,
    },
    ResolveMatching {
        source: String,
        region: String,
    },
}

#[derive(Default)]
struct Inner {
    incidents: Vec<Incident>,
    next_id: u64,
    /// `Some` when this manager journals its mutations for later replay
    /// onto another manager via [`IncidentManager::absorb`].
    journal: Option<Vec<IncidentEvent>>,
}

/// Thread-safe incident log shared across pipeline components.
#[derive(Clone, Default)]
pub struct IncidentManager {
    inner: Arc<RwLock<Inner>>,
}

impl IncidentManager {
    /// Creates an empty manager.
    pub fn new() -> IncidentManager {
        IncidentManager::default()
    }

    /// Creates an empty manager that journals every `raise*` and
    /// [`IncidentManager::resolve_matching`] call, so the sequence can later
    /// be replayed onto a shared manager with [`IncidentManager::absorb`].
    ///
    /// The fleet orchestrator hands each concurrent region run a recording
    /// scratch manager and absorbs them in region input order: the merged
    /// log (ids, dedup counts, resolutions of incidents open from earlier
    /// weeks) is then identical to a sequential run. Note [`IncidentManager::resolve`]
    /// by id is *not* journaled — ids are scratch-local; pipeline code uses
    /// the keyed/matching API.
    pub fn recording() -> IncidentManager {
        let m = IncidentManager::new();
        m.inner.write().journal = Some(Vec::new());
        m
    }

    /// Replays the journal of a [`IncidentManager::recording`] manager onto
    /// this one, applying the same dedup/resolution semantics as if the
    /// calls had been made here directly. Drains the other's journal.
    pub fn absorb(&self, other: &IncidentManager) {
        let events = {
            let mut inner = other.inner.write();
            inner
                .journal
                .as_mut()
                .map(std::mem::take)
                .unwrap_or_default()
        };
        for event in events {
            match event {
                IncidentEvent::Raise {
                    severity,
                    source,
                    region,
                    key,
                    message,
                } => {
                    self.raise_with_key(severity, &source, &region, key, message);
                }
                IncidentEvent::ResolveMatching { source, region } => {
                    self.resolve_matching(&source, &region);
                }
            }
        }
    }

    /// Raises an incident, returning its id. The message doubles as the
    /// dedup key: an identical open incident gains a count instead of a row.
    pub fn raise(
        &self,
        severity: Severity,
        source: &str,
        region: &str,
        message: impl Into<String>,
    ) -> u64 {
        let message = message.into();
        let key = message.clone();
        self.raise_with_key(severity, source, region, key, message)
    }

    /// Raises an incident with an explicit dedup key, for callers whose
    /// message carries varying detail (attempt counts, error text) that
    /// should still coalesce into one open incident.
    pub fn raise_keyed(
        &self,
        severity: Severity,
        source: &str,
        region: &str,
        key: impl Into<String>,
        message: impl Into<String>,
    ) -> u64 {
        self.raise_with_key(severity, source, region, key.into(), message.into())
    }

    fn raise_with_key(
        &self,
        severity: Severity,
        source: &str,
        region: &str,
        key: String,
        message: String,
    ) -> u64 {
        let mut inner = self.inner.write();
        if let Some(journal) = inner.journal.as_mut() {
            journal.push(IncidentEvent::Raise {
                severity,
                source: source.to_string(),
                region: region.to_string(),
                key: key.clone(),
                message: message.clone(),
            });
        }
        if let Some(existing) = inner.incidents.iter_mut().find(|i| {
            i.state == IncidentState::Open
                && i.severity == severity
                && i.source == source
                && i.region == region
                && i.message_key == key
        }) {
            existing.count += 1;
            // Keep the latest detail text.
            existing.message = message;
            return existing.id;
        }
        let id = inner.next_id;
        inner.next_id += 1;
        inner.incidents.push(Incident {
            id,
            severity,
            source: source.to_string(),
            region: region.to_string(),
            message,
            message_key: key,
            count: 1,
            state: IncidentState::Open,
        });
        id
    }

    /// Resolves an incident; returns whether it existed and was open.
    pub fn resolve(&self, id: u64) -> bool {
        let mut inner = self.inner.write();
        match inner.incidents.iter_mut().find(|i| i.id == id) {
            Some(i) if i.state == IncidentState::Open => {
                i.state = IncidentState::Resolved;
                true
            }
            _ => false,
        }
    }

    /// Resolves every open incident from `source` in `region`; returns how
    /// many were resolved. Used by the circuit breaker on recovery.
    pub fn resolve_matching(&self, source: &str, region: &str) -> usize {
        let mut inner = self.inner.write();
        if let Some(journal) = inner.journal.as_mut() {
            journal.push(IncidentEvent::ResolveMatching {
                source: source.to_string(),
                region: region.to_string(),
            });
        }
        let mut resolved = 0;
        for i in inner.incidents.iter_mut() {
            if i.state == IncidentState::Open && i.source == source && i.region == region {
                i.state = IncidentState::Resolved;
                resolved += 1;
            }
        }
        resolved
    }

    /// All incidents (snapshot).
    pub fn all(&self) -> Vec<Incident> {
        self.inner.read().incidents.clone()
    }

    /// Open incidents (snapshot).
    pub fn open(&self) -> Vec<Incident> {
        self.inner
            .read()
            .incidents
            .iter()
            .filter(|i| i.state == IncidentState::Open)
            .cloned()
            .collect()
    }

    /// Count by severity, open incidents only.
    pub fn open_count(&self, severity: Severity) -> usize {
        self.inner
            .read()
            .incidents
            .iter()
            .filter(|i| i.state == IncidentState::Open && i.severity == severity)
            .count()
    }

    /// Open incidents across all severities.
    pub fn open_total(&self) -> usize {
        self.inner
            .read()
            .incidents
            .iter()
            .filter(|i| i.state == IncidentState::Open)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raise_and_list() {
        let m = IncidentManager::new();
        let a = m.raise(Severity::Warning, "validation", "west", "bound anomaly");
        let b = m.raise(Severity::Critical, "deployment", "west", "deploy failed");
        assert_ne!(a, b);
        assert_eq!(m.all().len(), 2);
        assert_eq!(m.open_count(Severity::Critical), 1);
        assert_eq!(m.open_count(Severity::Warning), 1);
        assert_eq!(m.open_count(Severity::Info), 0);
        assert_eq!(m.open_total(), 2);
    }

    #[test]
    fn resolve_lifecycle() {
        let m = IncidentManager::new();
        let id = m.raise(Severity::Info, "x", "r", "msg");
        assert!(m.resolve(id));
        assert!(!m.resolve(id), "double resolve is a no-op");
        assert!(!m.resolve(999), "unknown id");
        assert!(m.open().is_empty());
        assert_eq!(m.all().len(), 1);
    }

    #[test]
    fn duplicate_raises_coalesce() {
        let m = IncidentManager::new();
        let a = m.raise(Severity::Warning, "validation", "west", "bound anomaly");
        let b = m.raise(Severity::Warning, "validation", "west", "bound anomaly");
        assert_eq!(a, b, "repeat raise returns the open incident's id");
        assert_eq!(m.all().len(), 1);
        assert_eq!(m.all()[0].count, 2);

        // Different region, severity, or message each open a fresh row.
        m.raise(Severity::Warning, "validation", "east", "bound anomaly");
        m.raise(Severity::Critical, "validation", "west", "bound anomaly");
        m.raise(Severity::Warning, "validation", "west", "other anomaly");
        assert_eq!(m.all().len(), 4);
    }

    #[test]
    fn keyed_raises_keep_latest_detail() {
        let m = IncidentManager::new();
        let a = m.raise_keyed(
            Severity::Critical,
            "train",
            "west",
            "train-failed",
            "attempt 1",
        );
        let b = m.raise_keyed(
            Severity::Critical,
            "train",
            "west",
            "train-failed",
            "attempt 2",
        );
        assert_eq!(a, b);
        let all = m.all();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].count, 2);
        assert_eq!(all[0].message, "attempt 2");
    }

    #[test]
    fn resolved_incidents_do_not_absorb_new_raises() {
        let m = IncidentManager::new();
        let a = m.raise(Severity::Warning, "s", "r", "m");
        assert!(m.resolve(a));
        let b = m.raise(Severity::Warning, "s", "r", "m");
        assert_ne!(a, b, "a resolved incident stays closed; a new row opens");
        assert_eq!(m.all().len(), 2);
        assert_eq!(m.open_total(), 1);
    }

    #[test]
    fn resolve_matching_scopes_by_source_and_region() {
        let m = IncidentManager::new();
        m.raise(Severity::Critical, "breaker", "west", "tripped");
        m.raise(Severity::Warning, "breaker", "west", "probe failed");
        m.raise(Severity::Critical, "breaker", "east", "tripped");
        m.raise(Severity::Critical, "ingestion", "west", "missing blob");
        assert_eq!(m.resolve_matching("breaker", "west"), 2);
        assert_eq!(m.resolve_matching("breaker", "west"), 0, "already resolved");
        assert_eq!(m.open_total(), 2);
    }

    #[test]
    fn absorb_replays_dedup_and_cross_manager_resolution() {
        let shared = IncidentManager::new();
        // Open incident from an "earlier week" on the shared manager.
        shared.raise(Severity::Critical, "circuit-breaker", "west", "tripped");

        let scratch = IncidentManager::recording();
        scratch.raise(Severity::Warning, "validation", "west", "gap");
        scratch.raise(Severity::Warning, "validation", "west", "gap");
        // Recovery recorded in the scratch must resolve the shared
        // manager's open incident on replay.
        scratch.resolve_matching("circuit-breaker", "west");

        shared.absorb(&scratch);
        let all = shared.all();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].state, IncidentState::Resolved, "breaker resolved");
        assert_eq!(all[1].source, "validation");
        assert_eq!(all[1].count, 2, "dedup preserved through replay");

        // Journal drained: a second absorb is a no-op.
        shared.absorb(&scratch);
        assert_eq!(shared.all().len(), 2);
    }

    #[test]
    fn absorb_in_region_order_matches_sequential() {
        let sequential = IncidentManager::new();
        sequential.raise(Severity::Warning, "ingestion", "region-a", "m");
        sequential.raise(Severity::Critical, "train", "region-b", "m");

        let merged = IncidentManager::new();
        let a = IncidentManager::recording();
        a.raise(Severity::Warning, "ingestion", "region-a", "m");
        let b = IncidentManager::recording();
        b.raise(Severity::Critical, "train", "region-b", "m");
        merged.absorb(&a);
        merged.absorb(&b);
        assert_eq!(sequential.all(), merged.all());
    }

    #[test]
    fn concurrent_duplicate_raises_coalesce_into_one() {
        let m = IncidentManager::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..50 {
                        m.raise(Severity::Info, "t", "r", "m");
                    }
                });
            }
        });
        let all = m.all();
        assert_eq!(all.len(), 1, "identical raises dedup to one incident");
        assert_eq!(all[0].count, 200);
    }
}
