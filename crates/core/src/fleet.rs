//! Fleet-wide execution facade.
//!
//! [`FleetRunner`] pairs an [`AmlPipeline`] with the fixed set of regions it
//! is responsible for and drives whole fleet-weeks through
//! [`AmlPipeline::run_fleet_week`]: regions fan out across the persistent
//! worker pool, per-region observability is merged deterministically, and
//! the shared warm-model cache is evicted and exported once per week at the
//! orchestrator barrier.
//!
//! The runner is a thin veneer — everything it does can be done against the
//! pipeline directly — but it gives experiments and benches one obvious
//! handle for "run the whole fleet" plus the read-side accessors they
//! report from (reports, cache statistics, the merged [`Obs`]).
//!
//! # Resumable fleet-weeks
//!
//! With [`FleetRunner::with_checkpoints`], the runner persists a per-region
//! *completion marker* the moment each region's run finishes (via
//! [`AmlPipeline::run_fleet_week_with`]), and consults those markers before
//! fanning out: a restarted run skips regions whose marker is present and
//! intact, re-running only the regions that were still in flight when the
//! process died. Markers are single-record [`Journal`] blobs, so a marker
//! torn mid-write fails checksum verification on replay and the region is
//! simply re-run — pipeline runs are idempotent per `(region, week)`, so a
//! re-run after a crash converges on the same predictions and deployments
//! as an uninterrupted run.
use crate::pipeline::{AmlPipeline, PipelineRunReport};
use bytes::Bytes;
use seagull_forecast::CacheStats;
use seagull_obs::Obs;
use seagull_telemetry::blobstore::{BlobKey, BlobStore};
use seagull_telemetry::journal::{replay, Journal};
use std::sync::Arc;

/// Blob kind under which per-region completion markers are stored.
pub const CHECKPOINT_KIND: &str = "checkpoint";

/// The blob key of one region-week completion marker.
pub fn checkpoint_key(region: &str, week_start_day: i64) -> BlobKey {
    BlobKey {
        kind: CHECKPOINT_KIND.into(),
        region: region.into(),
        week: week_start_day,
    }
}

/// Encodes a completion marker for a finished region run: a single-record
/// journal whose payload names the region, week, deployed version (`-1`
/// when the run kept last-known-good), and server count.
fn encode_marker(report: &PipelineRunReport) -> Bytes {
    let mut journal = Journal::new();
    let payload = format!(
        "{}\n{}\n{}\n{}",
        report.region,
        report.week_start_day,
        report.deployed_version.map_or(-1, |v| v as i64),
        report.servers,
    );
    journal.append(payload.as_bytes());
    journal.encoded()
}

/// Whether a marker blob is an intact completion marker for this region and
/// week. Torn, truncated, or mismatched markers are not trusted: the region
/// is treated as incomplete and re-run.
fn marker_valid(blob: &[u8], region: &str, week_start_day: i64) -> bool {
    let Ok(r) = replay(blob) else { return false };
    if r.torn() || r.records.len() != 1 {
        return false;
    }
    let Ok(text) = std::str::from_utf8(&r.records[0]) else {
        return false;
    };
    let mut lines = text.lines();
    lines.next() == Some(region)
        && lines.next().and_then(|l| l.parse::<i64>().ok()) == Some(week_start_day)
}

/// Drives an [`AmlPipeline`] over a fixed region set, one fleet-week at a
/// time.
pub struct FleetRunner {
    pipeline: AmlPipeline,
    regions: Vec<String>,
    /// When set, completed region-weeks are marked here and skipped on
    /// restart (see the module docs).
    checkpoints: Option<Arc<dyn BlobStore>>,
}

impl FleetRunner {
    /// Wraps a pipeline and the regions it schedules.
    pub fn new(pipeline: AmlPipeline, regions: Vec<String>) -> FleetRunner {
        FleetRunner {
            pipeline,
            regions,
            checkpoints: None,
        }
    }

    /// Enables resumable fleet-weeks: every finished region run writes a
    /// completion marker to `store`, and [`FleetRunner::run_week`] skips
    /// regions whose marker for that week is already present and intact.
    pub fn with_checkpoints(mut self, store: Arc<dyn BlobStore>) -> FleetRunner {
        self.checkpoints = Some(store);
        self
    }

    /// The underlying pipeline (doc store, registry, incidents, …).
    pub fn pipeline(&self) -> &AmlPipeline {
        &self.pipeline
    }

    /// The regions this runner schedules, in fan-out (and report) order.
    pub fn regions(&self) -> &[String] {
        &self.regions
    }

    /// Whether `region` already has an intact completion marker for the
    /// week. Always false without a checkpoint store.
    pub fn completed(&self, region: &str, week_start_day: i64) -> bool {
        let Some(store) = &self.checkpoints else {
            return false;
        };
        store
            .get(&checkpoint_key(region, week_start_day))
            .is_ok_and(|blob| marker_valid(&blob, region, week_start_day))
    }

    /// Runs one week for every region; reports come back in region order.
    ///
    /// With a checkpoint store attached, regions already marked complete for
    /// this week are skipped (no report is produced for them), and each
    /// region that does run writes its marker the moment it finishes — so a
    /// crash mid-fleet loses only the in-flight regions, and the restarted
    /// week re-runs exactly those.
    pub fn run_week(&self, week_start_day: i64) -> Vec<PipelineRunReport> {
        let Some(store) = self.checkpoints.clone() else {
            return self.pipeline.run_fleet_week(&self.regions, week_start_day);
        };
        let pending: Vec<String> = self
            .regions
            .iter()
            .filter(|r| !self.completed(r, week_start_day))
            .cloned()
            .collect();
        let skipped = self.regions.len() - pending.len();
        if skipped > 0 {
            self.pipeline
                .obs
                .registry()
                .counter("seagull_checkpoint_regions_skipped_total", &[])
                .add(skipped as u64);
        }
        if pending.is_empty() {
            return Vec::new();
        }
        let reports = self
            .pipeline
            .run_fleet_week_with(&pending, week_start_day, |_, report| {
                // A marker is written only after the region's run fully
                // completed (deployments announced, documents stored); a
                // crash between completion and the marker write just re-runs
                // the region, which is idempotent.
                let _ = store.put(
                    &checkpoint_key(&report.region, week_start_day),
                    encode_marker(report),
                );
            });
        self.pipeline
            .obs
            .registry()
            .counter("seagull_checkpoint_markers_written_total", &[])
            .add(reports.len() as u64);
        reports
    }

    /// Runs the given weeks in order, each as one fleet-week (honouring
    /// checkpoints per week when enabled).
    pub fn run_schedule(&self, week_start_days: &[i64]) -> Vec<PipelineRunReport> {
        if self.checkpoints.is_none() {
            return self.pipeline.run_schedule(&self.regions, week_start_days);
        }
        let mut reports = Vec::with_capacity(self.regions.len() * week_start_days.len());
        for &week in week_start_days {
            reports.extend(self.run_week(week));
        }
        reports
    }

    /// Point-in-time statistics of the shared warm-model cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.pipeline.cache.stats()
    }

    /// The pipeline's (merged) observability handle.
    pub fn obs(&self) -> &Obs {
        &self.pipeline.obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;
    use seagull_telemetry::blobstore::MemoryBlobStore;
    use seagull_telemetry::extract::LoadExtraction;
    use seagull_telemetry::fleet::{FleetGenerator, FleetSpec};
    use std::sync::Arc;

    fn runner(threads: usize, weeks: usize) -> (FleetRunner, Vec<i64>) {
        let mut spec = FleetSpec::small_region(417);
        spec.regions[0].servers = 12;
        let start = spec.start_day;
        let fleet = FleetGenerator::new(spec).generate_weeks(weeks);
        let store = Arc::new(MemoryBlobStore::new());
        let week_days: Vec<i64> = (0..weeks as i64).map(|w| start + 7 * w).collect();
        let regions = vec!["region-a".to_string()];
        LoadExtraction::default()
            .run(&fleet, &regions, &week_days, store.as_ref())
            .unwrap();
        let config = PipelineConfig {
            threads,
            ..PipelineConfig::production()
        };
        let pipeline = AmlPipeline::new(config, store);
        (FleetRunner::new(pipeline, regions), week_days)
    }

    #[test]
    fn runner_schedules_all_weeks_in_region_order() {
        let (runner, weeks) = runner(2, 2);
        let reports = runner.run_schedule(&weeks);
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| r.region == "region-a"));
        assert_eq!(reports[0].week_start_day, weeks[0]);
        assert_eq!(reports[1].week_start_day, weeks[1]);
    }

    #[test]
    fn second_week_hits_the_warm_cache() {
        let (runner, weeks) = runner(1, 2);
        runner.run_week(weeks[0]);
        let cold = runner.cache_stats();
        assert_eq!(cold.hits, 0, "first week is all cold misses");
        assert!(cold.misses_cold > 0);
        runner.run_week(weeks[1]);
        let warm = runner.cache_stats();
        assert!(
            warm.hits > 0,
            "a stable fleet's second week should reuse cached fits: {warm:?}"
        );
    }

    #[test]
    fn cache_metrics_are_exported_at_the_weekly_barrier() {
        let (runner, weeks) = runner(1, 1);
        runner.run_week(weeks[0]);
        let export = runner.obs().stable_export();
        assert!(
            export.contains("seagull_model_cache_misses_total"),
            "cache counters missing from export:\n{export}"
        );
    }

    #[test]
    fn checkpointed_run_writes_markers_and_skips_on_rerun() {
        let (base, weeks) = runner(1, 1);
        let marks = Arc::new(MemoryBlobStore::new());
        let runner = FleetRunner::new(base.pipeline.clone(), base.regions.clone())
            .with_checkpoints(Arc::clone(&marks) as Arc<dyn BlobStore>);
        let first = runner.run_week(weeks[0]);
        assert_eq!(first.len(), 1);
        assert!(runner.completed("region-a", weeks[0]));
        let marker = marks.get(&checkpoint_key("region-a", weeks[0])).unwrap();
        assert!(marker_valid(&marker, "region-a", weeks[0]));
        // A restarted week skips the completed region entirely.
        let again = runner.run_week(weeks[0]);
        assert!(again.is_empty(), "completed region must be skipped");
        let export = runner.obs().stable_export();
        assert!(export.contains("seagull_checkpoint_markers_written_total"));
        assert!(export.contains("seagull_checkpoint_regions_skipped_total"));
    }

    #[test]
    fn torn_marker_is_not_trusted() {
        let (base, weeks) = runner(1, 1);
        let marks = Arc::new(MemoryBlobStore::new());
        let runner = FleetRunner::new(base.pipeline.clone(), base.regions.clone())
            .with_checkpoints(Arc::clone(&marks) as Arc<dyn BlobStore>);
        runner.run_week(weeks[0]);
        let key = checkpoint_key("region-a", weeks[0]);
        let whole = marks.get(&key).unwrap();
        // Tear the marker mid-record, as a crash during the put would.
        marks.put(&key, whole.slice(0..whole.len() - 3)).unwrap();
        assert!(!runner.completed("region-a", weeks[0]));
        // Markers for the wrong week are also not trusted.
        marks.put(&checkpoint_key("region-a", 9999), whole).unwrap();
        assert!(!runner.completed("region-a", 9999));
    }
}
