//! Fleet-wide execution facade.
//!
//! [`FleetRunner`] pairs an [`AmlPipeline`] with the fixed set of regions it
//! is responsible for and drives whole fleet-weeks through
//! [`AmlPipeline::run_fleet_week`]: regions fan out across the persistent
//! worker pool, per-region observability is merged deterministically, and
//! the shared warm-model cache is evicted and exported once per week at the
//! orchestrator barrier.
//!
//! The runner is a thin veneer — everything it does can be done against the
//! pipeline directly — but it gives experiments and benches one obvious
//! handle for "run the whole fleet" plus the read-side accessors they
//! report from (reports, cache statistics, the merged [`Obs`]).

use crate::pipeline::{AmlPipeline, PipelineRunReport};
use seagull_forecast::CacheStats;
use seagull_obs::Obs;

/// Drives an [`AmlPipeline`] over a fixed region set, one fleet-week at a
/// time.
pub struct FleetRunner {
    pipeline: AmlPipeline,
    regions: Vec<String>,
}

impl FleetRunner {
    /// Wraps a pipeline and the regions it schedules.
    pub fn new(pipeline: AmlPipeline, regions: Vec<String>) -> FleetRunner {
        FleetRunner { pipeline, regions }
    }

    /// The underlying pipeline (doc store, registry, incidents, …).
    pub fn pipeline(&self) -> &AmlPipeline {
        &self.pipeline
    }

    /// The regions this runner schedules, in fan-out (and report) order.
    pub fn regions(&self) -> &[String] {
        &self.regions
    }

    /// Runs one week for every region; reports come back in region order.
    pub fn run_week(&self, week_start_day: i64) -> Vec<PipelineRunReport> {
        self.pipeline.run_fleet_week(&self.regions, week_start_day)
    }

    /// Runs the given weeks in order, each as one fleet-week.
    pub fn run_schedule(&self, week_start_days: &[i64]) -> Vec<PipelineRunReport> {
        self.pipeline.run_schedule(&self.regions, week_start_days)
    }

    /// Point-in-time statistics of the shared warm-model cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.pipeline.cache.stats()
    }

    /// The pipeline's (merged) observability handle.
    pub fn obs(&self) -> &Obs {
        &self.pipeline.obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;
    use seagull_telemetry::blobstore::MemoryBlobStore;
    use seagull_telemetry::extract::LoadExtraction;
    use seagull_telemetry::fleet::{FleetGenerator, FleetSpec};
    use std::sync::Arc;

    fn runner(threads: usize, weeks: usize) -> (FleetRunner, Vec<i64>) {
        let mut spec = FleetSpec::small_region(417);
        spec.regions[0].servers = 12;
        let start = spec.start_day;
        let fleet = FleetGenerator::new(spec).generate_weeks(weeks);
        let store = Arc::new(MemoryBlobStore::new());
        let week_days: Vec<i64> = (0..weeks as i64).map(|w| start + 7 * w).collect();
        let regions = vec!["region-a".to_string()];
        LoadExtraction::default()
            .run(&fleet, &regions, &week_days, store.as_ref())
            .unwrap();
        let config = PipelineConfig {
            threads,
            ..PipelineConfig::production()
        };
        let pipeline = AmlPipeline::new(config, store);
        (FleetRunner::new(pipeline, regions), week_days)
    }

    #[test]
    fn runner_schedules_all_weeks_in_region_order() {
        let (runner, weeks) = runner(2, 2);
        let reports = runner.run_schedule(&weeks);
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| r.region == "region-a"));
        assert_eq!(reports[0].week_start_day, weeks[0]);
        assert_eq!(reports[1].week_start_day, weeks[1]);
    }

    #[test]
    fn second_week_hits_the_warm_cache() {
        let (runner, weeks) = runner(1, 2);
        runner.run_week(weeks[0]);
        let cold = runner.cache_stats();
        assert_eq!(cold.hits, 0, "first week is all cold misses");
        assert!(cold.misses_cold > 0);
        runner.run_week(weeks[1]);
        let warm = runner.cache_stats();
        assert!(
            warm.hits > 0,
            "a stable fleet's second week should reuse cached fits: {warm:?}"
        );
    }

    #[test]
    fn cache_metrics_are_exported_at_the_weekly_barrier() {
        let (runner, weeks) = runner(1, 1);
        runner.run_week(weeks[0]);
        let export = runner.obs().stable_export();
        assert!(
            export.contains("seagull_model_cache_misses_total"),
            "cache counters missing from export:\n{export}"
        );
    }
}
