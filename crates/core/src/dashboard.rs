//! The Application Insights substitute: run monitoring and summaries.
//!
//! "Application Insights Dashboard provides summarized view of the pipeline
//! runs to facilitate real-time monitoring and incident management"
//! (Section 2.2).

use crate::incident::{IncidentManager, Severity};
use crate::pipeline::PipelineRunReport;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

/// Aggregated view over recorded runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DashboardSummary {
    pub runs: usize,
    pub blocked_runs: usize,
    pub total_predictions: usize,
    pub total_evaluations: usize,
    /// Mean stage duration across runs, by stage name.
    pub mean_stage_duration: Vec<(String, Duration)>,
    /// Latest accuracy per region: (region, window-correct %, load-accurate %).
    pub latest_accuracy: Vec<(String, f64, f64)>,
    pub open_warnings: usize,
    pub open_criticals: usize,
}

/// Collects run reports and renders operator summaries.
#[derive(Clone, Default)]
pub struct Dashboard {
    runs: Arc<RwLock<Vec<PipelineRunReport>>>,
}

impl Dashboard {
    /// Creates an empty dashboard.
    pub fn new() -> Dashboard {
        Dashboard::default()
    }

    /// Records one run.
    pub fn record(&self, report: PipelineRunReport) {
        self.runs.write().push(report);
    }

    /// Number of recorded runs.
    pub fn len(&self) -> usize {
        self.runs.read().len()
    }

    /// True if nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.runs.read().is_empty()
    }

    /// Builds the aggregate summary (joining the incident log for the alert
    /// counters).
    pub fn summary(&self, incidents: &IncidentManager) -> DashboardSummary {
        let runs = self.runs.read();
        let mut stage_totals: BTreeMap<String, (Duration, u32)> = BTreeMap::new();
        let mut latest: BTreeMap<String, (i64, f64, f64)> = BTreeMap::new();
        let mut blocked = 0usize;
        let mut predictions = 0usize;
        let mut evaluations = 0usize;
        for r in runs.iter() {
            if r.blocked {
                blocked += 1;
            }
            predictions += r.predictions_written;
            evaluations += r.evaluations;
            for s in &r.stages {
                let entry = stage_totals
                    .entry(s.stage.clone())
                    .or_insert((Duration::ZERO, 0));
                entry.0 += s.duration;
                entry.1 += 1;
            }
            if let Some(acc) = &r.accuracy {
                let entry = latest
                    .entry(r.region.clone())
                    .or_insert((i64::MIN, 0.0, 0.0));
                if r.week_start_day > entry.0 {
                    *entry = (
                        r.week_start_day,
                        acc.window_correct_pct,
                        acc.load_accurate_pct,
                    );
                }
            }
        }
        DashboardSummary {
            runs: runs.len(),
            blocked_runs: blocked,
            total_predictions: predictions,
            total_evaluations: evaluations,
            mean_stage_duration: stage_totals
                .into_iter()
                .map(|(k, (total, n))| (k, total / n.max(1)))
                .collect(),
            latest_accuracy: latest
                .into_iter()
                .map(|(region, (_, w, l))| (region, w, l))
                .collect(),
            open_warnings: incidents.open_count(Severity::Warning),
            open_criticals: incidents.open_count(Severity::Critical),
        }
    }

    /// Renders a plain-text operator view.
    pub fn render(&self, incidents: &IncidentManager) -> String {
        let s = self.summary(incidents);
        let mut out = String::new();
        let _ = writeln!(out, "=== Seagull pipeline dashboard ===");
        let _ = writeln!(
            out,
            "runs: {} ({} blocked) | predictions: {} | evaluations: {}",
            s.runs, s.blocked_runs, s.total_predictions, s.total_evaluations
        );
        let _ = writeln!(
            out,
            "open incidents: {} critical, {} warning",
            s.open_criticals, s.open_warnings
        );
        let _ = writeln!(out, "mean stage runtime:");
        for (stage, d) in &s.mean_stage_duration {
            let _ = writeln!(out, "  {stage:<14} {:>10.3} ms", d.as_secs_f64() * 1e3);
        }
        let _ = writeln!(out, "latest accuracy per region:");
        for (region, w, l) in &s.latest_accuracy {
            let _ = writeln!(
                out,
                "  {region:<14} LL windows {w:>6.2}% | in-window load {l:>6.2}%"
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::AccuracySummary;
    use crate::pipeline::StageTiming;

    fn run(region: &str, week: i64, blocked: bool, acc: Option<(f64, f64)>) -> PipelineRunReport {
        PipelineRunReport {
            region: region.into(),
            week_start_day: week,
            input_bytes: 10,
            stages: vec![
                StageTiming {
                    stage: "ingestion".into(),
                    duration: Duration::from_millis(10),
                },
                StageTiming {
                    stage: "validation".into(),
                    duration: Duration::from_millis(30),
                },
            ],
            servers: 5,
            anomalies: 0,
            blocked,
            predictions_written: 5,
            evaluations: if acc.is_some() { 5 } else { 0 },
            accuracy: acc.map(|(w, l)| AccuracySummary {
                servers: 5,
                evaluated: 5,
                window_correct_pct: w,
                load_accurate_pct: l,
            }),
            deployed_version: Some(1),
            degraded: None,
        }
    }

    #[test]
    fn aggregates_runs() {
        let d = Dashboard::new();
        let inc = IncidentManager::new();
        assert!(d.is_empty());
        d.record(run("west", 100, false, None));
        d.record(run("west", 107, false, Some((99.0, 96.0))));
        d.record(run("east", 100, true, None));
        let s = d.summary(&inc);
        assert_eq!(s.runs, 3);
        assert_eq!(s.blocked_runs, 1);
        assert_eq!(s.total_predictions, 15);
        assert_eq!(s.total_evaluations, 5);
        // Mean of three 10 ms ingestion stages.
        let (stage, dur) = &s.mean_stage_duration[0];
        assert_eq!(stage, "ingestion");
        assert_eq!(*dur, Duration::from_millis(10));
        assert_eq!(s.latest_accuracy, vec![("west".to_string(), 99.0, 96.0)]);
    }

    #[test]
    fn latest_accuracy_wins_by_week() {
        let d = Dashboard::new();
        let inc = IncidentManager::new();
        d.record(run("west", 107, false, Some((90.0, 90.0))));
        d.record(run("west", 100, false, Some((50.0, 50.0))));
        let s = d.summary(&inc);
        assert_eq!(s.latest_accuracy[0].1, 90.0);
    }

    #[test]
    fn render_contains_key_lines() {
        let d = Dashboard::new();
        let inc = IncidentManager::new();
        inc.raise(Severity::Warning, "validation", "west", "x");
        d.record(run("west", 100, false, Some((99.0, 96.0))));
        let text = d.render(&inc);
        assert!(text.contains("Seagull pipeline dashboard"));
        assert!(text.contains("1 warning"));
        assert!(text.contains("west"));
        assert!(text.contains("99.00%"));
    }
}
