//! The Application Insights substitute: run monitoring and summaries.
//!
//! "Application Insights Dashboard provides summarized view of the pipeline
//! runs to facilitate real-time monitoring and incident management"
//! (Section 2.2).
//!
//! The dashboard is a thin view over a [`seagull_obs::Registry`]:
//! [`Dashboard::record`] folds each run report into counters, gauges, and
//! per-stage histograms, and [`Dashboard::summary`] renders the aggregate
//! back out of the registry joined with the incident log. Sharing the
//! pipeline's [`Obs`] handle (via [`Dashboard::with_obs`]) makes the run
//! counters, breaker gauges, and dashboard aggregates land in one exportable
//! registry.
//!
//! Ordering in [`DashboardSummary`] is fully deterministic:
//! `mean_stage_duration` lists stages in canonical pipeline order (unknown
//! stages after, alphabetically) and `latest_accuracy` is sorted by region.

use crate::incident::{IncidentManager, Severity};
use crate::pipeline::PipelineRunReport;
use seagull_obs::{Obs, SampleValue, Stability};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

/// Canonical pipeline stage order for summary rendering; stages not listed
/// here sort after these, alphabetically.
const STAGE_ORDER: [&str; 7] = [
    "ingestion",
    "validation",
    "features",
    "train-infer",
    "docstore-write",
    "deployment",
    "accuracy-eval",
];

fn stage_rank(stage: &str) -> usize {
    STAGE_ORDER
        .iter()
        .position(|s| *s == stage)
        .unwrap_or(STAGE_ORDER.len())
}

/// Aggregated view over recorded runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DashboardSummary {
    /// Pipeline runs recorded.
    pub runs: usize,
    /// Runs blocked before producing predictions.
    pub blocked_runs: usize,
    /// Prediction documents written across all runs.
    pub total_predictions: usize,
    /// Accuracy evaluations performed across all runs.
    pub total_evaluations: usize,
    /// Mean stage duration across runs, by stage name, in canonical
    /// pipeline order (unknown stages last, alphabetically).
    pub mean_stage_duration: Vec<(String, Duration)>,
    /// Latest accuracy per region, sorted by region:
    /// (region, window-correct %, load-accurate %).
    pub latest_accuracy: Vec<(String, f64, f64)>,
    /// Open Warning-severity incidents.
    pub open_warnings: usize,
    /// Open Critical-severity incidents.
    pub open_criticals: usize,
}

/// Collects run reports into a metrics registry and renders operator
/// summaries from it.
#[derive(Clone, Default)]
pub struct Dashboard {
    obs: Obs,
}

// Metric names the dashboard owns. Stage-duration histograms and the
// per-region accuracy gauges carry labels; the rest are unlabelled totals.
const RUNS: &str = "seagull_dashboard_runs_total";
const BLOCKED: &str = "seagull_dashboard_blocked_total";
const PREDICTIONS: &str = "seagull_dashboard_predictions_total";
const EVALUATIONS: &str = "seagull_dashboard_evaluations_total";
const STAGE_SECONDS: &str = "seagull_dashboard_stage_seconds";
const ACCURACY_WEEK: &str = "seagull_dashboard_accuracy_week";
const WINDOW_PCT: &str = "seagull_dashboard_window_correct_pct";
const LOAD_PCT: &str = "seagull_dashboard_load_accurate_pct";

impl Dashboard {
    /// Creates a dashboard over a private registry.
    pub fn new() -> Dashboard {
        Dashboard::default()
    }

    /// Creates a dashboard over a shared observability handle (typically
    /// the pipeline's, so one registry holds everything).
    pub fn with_obs(obs: Obs) -> Dashboard {
        Dashboard { obs }
    }

    /// The dashboard's observability handle.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Records one run: counters for run/blocked/prediction/evaluation
    /// totals, per-stage duration histograms (volatile — wall time), and
    /// latest-week accuracy gauges per region.
    pub fn record(&self, report: PipelineRunReport) {
        let reg = self.obs.registry();
        reg.counter(RUNS, &[]).inc();
        // Unconditional add(0) so the counter exists after the first record:
        // metric presence must depend on the recorded data, never on whether
        // a summary was rendered in between (the read path get-or-creates).
        reg.counter(BLOCKED, &[]).add(u64::from(report.blocked));
        reg.counter(PREDICTIONS, &[])
            .add(report.predictions_written as u64);
        reg.counter(EVALUATIONS, &[]).add(report.evaluations as u64);
        for s in &report.stages {
            reg.histogram_with(STAGE_SECONDS, &[("stage", &s.stage)], Stability::Volatile)
                .observe(s.duration.as_secs_f64());
        }
        if let Some(acc) = &report.accuracy {
            // The week gauge stores week + 1 so its zero default reads as
            // "no accuracy recorded yet" (pipeline weeks are day indices,
            // never negative).
            let labels = [("region", report.region.as_str())];
            let week_gauge = reg.gauge(ACCURACY_WEEK, &labels);
            let incoming = (report.week_start_day + 1).max(0) as f64;
            if incoming > week_gauge.get() {
                week_gauge.set(incoming);
                reg.gauge(WINDOW_PCT, &labels).set(acc.window_correct_pct);
                reg.gauge(LOAD_PCT, &labels).set(acc.load_accurate_pct);
            }
        }
    }

    /// Number of recorded runs.
    pub fn len(&self) -> usize {
        self.obs.registry().counter(RUNS, &[]).get() as usize
    }

    /// True if nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Builds the aggregate summary out of the registry, joining the
    /// incident log for the alert counters. Ordering is deterministic: see
    /// [`DashboardSummary`].
    pub fn summary(&self, incidents: &IncidentManager) -> DashboardSummary {
        let reg = self.obs.registry();
        let mut stages: Vec<(String, Duration)> = Vec::new();
        let mut accuracy: BTreeMap<String, (f64, f64)> = BTreeMap::new();
        for sample in reg.snapshot() {
            match (sample.id.name.as_str(), &sample.value) {
                (STAGE_SECONDS, SampleValue::Histogram(h)) if h.count > 0 => {
                    if let Some((_, stage)) = sample.id.labels.iter().find(|(k, _)| k == "stage") {
                        let mean = h.sum / h.count as f64;
                        stages.push((stage.clone(), Duration::from_secs_f64(mean)));
                    }
                }
                (WINDOW_PCT, SampleValue::Gauge(w)) => {
                    if let Some((_, region)) = sample.id.labels.iter().find(|(k, _)| k == "region")
                    {
                        accuracy.entry(region.clone()).or_insert((0.0, 0.0)).0 = *w;
                    }
                }
                (LOAD_PCT, SampleValue::Gauge(l)) => {
                    if let Some((_, region)) = sample.id.labels.iter().find(|(k, _)| k == "region")
                    {
                        accuracy.entry(region.clone()).or_insert((0.0, 0.0)).1 = *l;
                    }
                }
                _ => {}
            }
        }
        stages.sort_by(|(a, _), (b, _)| stage_rank(a).cmp(&stage_rank(b)).then(a.cmp(b)));
        DashboardSummary {
            runs: self.len(),
            blocked_runs: reg.counter(BLOCKED, &[]).get() as usize,
            total_predictions: reg.counter(PREDICTIONS, &[]).get() as usize,
            total_evaluations: reg.counter(EVALUATIONS, &[]).get() as usize,
            mean_stage_duration: stages,
            latest_accuracy: accuracy
                .into_iter()
                .map(|(region, (w, l))| (region, w, l))
                .collect(),
            open_warnings: incidents.open_count(Severity::Warning),
            open_criticals: incidents.open_count(Severity::Critical),
        }
    }

    /// Renders a plain-text operator view.
    pub fn render(&self, incidents: &IncidentManager) -> String {
        let s = self.summary(incidents);
        let mut out = String::new();
        let _ = writeln!(out, "=== Seagull pipeline dashboard ===");
        let _ = writeln!(
            out,
            "runs: {} ({} blocked) | predictions: {} | evaluations: {}",
            s.runs, s.blocked_runs, s.total_predictions, s.total_evaluations
        );
        let _ = writeln!(
            out,
            "open incidents: {} critical, {} warning",
            s.open_criticals, s.open_warnings
        );
        let _ = writeln!(out, "mean stage runtime:");
        for (stage, d) in &s.mean_stage_duration {
            let _ = writeln!(out, "  {stage:<14} {:>10.3} ms", d.as_secs_f64() * 1e3);
        }
        let _ = writeln!(out, "latest accuracy per region:");
        for (region, w, l) in &s.latest_accuracy {
            let _ = writeln!(
                out,
                "  {region:<14} LL windows {w:>6.2}% | in-window load {l:>6.2}%"
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::AccuracySummary;
    use crate::pipeline::StageTiming;

    fn run(region: &str, week: i64, blocked: bool, acc: Option<(f64, f64)>) -> PipelineRunReport {
        PipelineRunReport {
            region: region.into(),
            week_start_day: week,
            input_bytes: 10,
            stages: vec![
                StageTiming {
                    stage: "ingestion".into(),
                    duration: Duration::from_millis(10),
                },
                StageTiming {
                    stage: "validation".into(),
                    duration: Duration::from_millis(30),
                },
            ],
            servers: 5,
            anomalies: 0,
            blocked,
            predictions_written: 5,
            evaluations: if acc.is_some() { 5 } else { 0 },
            accuracy: acc.map(|(w, l)| AccuracySummary {
                servers: 5,
                evaluated: 5,
                window_correct_pct: w,
                load_accurate_pct: l,
            }),
            deployed_version: Some(1),
            degraded: None,
        }
    }

    #[test]
    fn aggregates_runs() {
        let d = Dashboard::new();
        let inc = IncidentManager::new();
        assert!(d.is_empty());
        d.record(run("west", 100, false, None));
        d.record(run("west", 107, false, Some((99.0, 96.0))));
        d.record(run("east", 100, true, None));
        let s = d.summary(&inc);
        assert_eq!(s.runs, 3);
        assert_eq!(s.blocked_runs, 1);
        assert_eq!(s.total_predictions, 15);
        assert_eq!(s.total_evaluations, 5);
        // Mean of three 10 ms ingestion stages.
        let (stage, dur) = &s.mean_stage_duration[0];
        assert_eq!(stage, "ingestion");
        assert_eq!(*dur, Duration::from_millis(10));
        assert_eq!(s.latest_accuracy, vec![("west".to_string(), 99.0, 96.0)]);
    }

    #[test]
    fn latest_accuracy_wins_by_week() {
        let d = Dashboard::new();
        let inc = IncidentManager::new();
        d.record(run("west", 107, false, Some((90.0, 90.0))));
        d.record(run("west", 100, false, Some((50.0, 50.0))));
        let s = d.summary(&inc);
        assert_eq!(s.latest_accuracy[0].1, 90.0);
    }

    #[test]
    fn summary_ordering_is_canonical_and_deterministic() {
        // Stages arrive in a scrambled, non-alphabetical order; the summary
        // must pin canonical pipeline order with unknown stages last, and
        // sort accuracy rows by region.
        let d = Dashboard::new();
        let inc = IncidentManager::new();
        let mut r = run("zeta", 100, false, Some((80.0, 70.0)));
        r.stages = [
            "accuracy-eval",
            "deployment",
            "custom-export",
            "train-infer",
            "features",
            "validation",
            "ingestion",
        ]
        .iter()
        .map(|s| StageTiming {
            stage: (*s).into(),
            duration: Duration::from_millis(1),
        })
        .collect();
        d.record(r);
        d.record(run("alpha", 100, false, Some((60.0, 50.0))));
        let s = d.summary(&inc);
        let order: Vec<&str> = s
            .mean_stage_duration
            .iter()
            .map(|(name, _)| name.as_str())
            .collect();
        assert_eq!(
            order,
            vec![
                "ingestion",
                "validation",
                "features",
                "train-infer",
                "deployment",
                "accuracy-eval",
                "custom-export",
            ]
        );
        let regions: Vec<&str> = s
            .latest_accuracy
            .iter()
            .map(|(r, _, _)| r.as_str())
            .collect();
        assert_eq!(regions, vec!["alpha", "zeta"]);
        // Same inputs, same summary: the ordering never depends on
        // insertion order.
        let d2 = Dashboard::new();
        d2.record(run("alpha", 100, false, Some((60.0, 50.0))));
        let mut r2 = run("zeta", 100, false, Some((80.0, 70.0)));
        r2.stages = [
            "ingestion",
            "validation",
            "features",
            "train-infer",
            "deployment",
            "accuracy-eval",
            "custom-export",
        ]
        .iter()
        .map(|s| StageTiming {
            stage: (*s).into(),
            duration: Duration::from_millis(1),
        })
        .collect();
        d2.record(r2);
        let s2 = d2.summary(&inc);
        assert_eq!(s, s2);
    }

    #[test]
    fn dashboard_renders_from_shared_registry() {
        // Sharing the pipeline's Obs puts dashboard aggregates next to
        // pipeline metrics in one registry.
        let obs = Obs::new();
        let d = Dashboard::with_obs(obs.clone());
        d.record(run("west", 100, false, None));
        assert_eq!(
            obs.registry().counter(RUNS, &[]).get(),
            1,
            "dashboard counters live in the shared registry"
        );
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn render_contains_key_lines() {
        let d = Dashboard::new();
        let inc = IncidentManager::new();
        inc.raise(Severity::Warning, "validation", "west", "x");
        d.record(run("west", 100, false, Some((99.0, 96.0))));
        let text = d.render(&inc);
        assert!(text.contains("Seagull pipeline dashboard"));
        assert!(text.contains("1 warning"));
        assert!(text.contains("west"));
        assert!(text.contains("99.00%"));
    }
}
