//! Property-based tests for the persistent work-stealing pool: the parallel
//! map must be an order-preserving, exactly-once map for *any* item count
//! (including 0 and 1) and *any* thread count, and the profiled variant's
//! accounting must cover every item.

use proptest::prelude::*;
use seagull_core::par::{parallel_map, parallel_map_profiled};
use std::sync::atomic::{AtomicU64, Ordering};

fn items_strategy() -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::vec(-1_000_000i64..1_000_000, 0..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// parallel_map == serial map, for arbitrary items and thread counts.
    /// Output order follows input order regardless of which worker ran what.
    #[test]
    fn parallel_map_matches_serial_map(
        items in items_strategy(),
        threads in 0usize..9,
    ) {
        let serial: Vec<i64> = items.iter().map(|x| x.wrapping_mul(3) - 7).collect();
        let parallel = parallel_map(&items, threads, |x| x.wrapping_mul(3) - 7);
        prop_assert_eq!(parallel, serial);
    }

    /// The closure runs exactly once per item — no drops, no double runs —
    /// even when threads far exceed items.
    #[test]
    fn every_item_maps_exactly_once(
        items in items_strategy(),
        threads in 1usize..9,
    ) {
        let calls = AtomicU64::new(0);
        let out = parallel_map(&items, threads, |x| {
            calls.fetch_add(1, Ordering::Relaxed);
            *x
        });
        prop_assert_eq!(out.len(), items.len());
        prop_assert_eq!(calls.load(Ordering::Relaxed), items.len() as u64);
    }

    /// The profiled variant returns the same results and its per-worker item
    /// counts sum to the input length: every item is attributed to exactly
    /// one worker.
    #[test]
    fn profile_accounts_for_every_item(
        items in items_strategy(),
        threads in 1usize..9,
    ) {
        let (out, profile) = parallel_map_profiled(&items, threads, |x| x + 1);
        let serial: Vec<i64> = items.iter().map(|x| x + 1).collect();
        prop_assert_eq!(out, serial);
        prop_assert_eq!(profile.total_items(), items.len() as u64);
        // Never more participants than requested (threads >= 1 here).
        prop_assert!(profile.workers.len() <= threads.max(1));
    }
}

/// Degenerate sizes, pinned explicitly (proptest may shrink past them).
#[test]
fn empty_and_single_item_inputs() {
    for threads in [0usize, 1, 2, 8] {
        let empty: Vec<u32> = Vec::new();
        assert_eq!(parallel_map(&empty, threads, |x| x * 2), Vec::<u32>::new());
        assert_eq!(parallel_map(&[5u32], threads, |x| x * 2), vec![10]);
        let (out, profile) = parallel_map_profiled(&[9u32], threads, |x| x + 1);
        assert_eq!(out, vec![10]);
        assert_eq!(profile.total_items(), 1);
    }
}

/// The same input mapped at different thread counts is bit-identical — the
/// determinism contract the fleet orchestrator builds on.
#[test]
fn thread_count_is_unobservable_in_results() {
    let items: Vec<u64> = (0..257).collect();
    let baseline = parallel_map(&items, 1, |x| x.wrapping_mul(0x9E37_79B9) >> 3);
    for threads in [2usize, 3, 4, 8] {
        let got = parallel_map(&items, threads, |x| x.wrapping_mul(0x9E37_79B9) >> 3);
        assert_eq!(got, baseline, "results diverged at threads={threads}");
    }
}
