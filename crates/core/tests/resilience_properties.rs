//! Property-based tests for the resilience primitives: retry backoff
//! determinism and bounds, and the circuit breaker's state-machine
//! invariants under arbitrary event sequences.

use proptest::prelude::*;
use seagull_core::incident::IncidentManager;
use seagull_core::resilience::{
    BreakerConfig, BreakerState, CircuitBreaker, RetryPolicy, StageError,
};

fn policy_strategy() -> impl Strategy<Value = RetryPolicy> {
    (
        1u32..12,
        0u64..200,
        1.0f64..4.0,
        1u64..2_000,
        0.0f64..1.0,
        0u64..100_000,
    )
        .prop_map(
            |(max_attempts, base_delay_ms, multiplier, cap_ms, jitter_frac, budget_ms)| {
                RetryPolicy {
                    max_attempts,
                    base_delay_ms,
                    multiplier,
                    cap_ms,
                    jitter_frac,
                    budget_ms,
                }
            },
        )
}

/// A breaker event: `true` = the guarded op succeeded, `false` = it failed.
fn event_strategy() -> impl Strategy<Value = Vec<bool>> {
    proptest::collection::vec(any::<bool>(), 1..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The same seed always produces the same backoff schedule.
    #[test]
    fn backoff_is_deterministic_per_seed(policy in policy_strategy(), seed in any::<u64>()) {
        prop_assert_eq!(policy.delays_ms(seed), policy.delays_ms(seed));
    }

    /// Every jittered delay is bounded by the cap, and the un-jittered
    /// schedule is monotone non-decreasing.
    #[test]
    fn backoff_is_bounded_and_monotone(policy in policy_strategy(), seed in any::<u64>()) {
        let delays = policy.delays_ms(seed);
        for &d in &delays {
            prop_assert!(d <= policy.cap_ms, "delay {d} exceeds cap {}", policy.cap_ms);
        }
        let raw: Vec<u64> = (0..policy.max_attempts.saturating_sub(1))
            .map(|i| policy.raw_delay_ms(i))
            .collect();
        for pair in raw.windows(2) {
            prop_assert!(pair[0] <= pair[1], "raw schedule not monotone: {raw:?}");
        }
        // Jitter only subtracts from the raw delay.
        for (jittered, raw) in delays.iter().zip(&raw) {
            prop_assert!(jittered <= raw);
        }
    }

    /// The retry loop never exceeds max_attempts, never spends backoff past
    /// the budget, and a success stops it immediately.
    #[test]
    fn retry_loop_respects_attempts_and_budget(
        policy in policy_strategy(),
        seed in any::<u64>(),
        fail_first in 0u32..20,
    ) {
        let mut calls = 0u32;
        let result = policy.run(seed, |attempt| {
            calls += 1;
            if attempt <= fail_first {
                Err(StageError::transient("down"))
            } else {
                Ok(attempt)
            }
        });
        prop_assert_eq!(result.attempts, calls);
        prop_assert!(result.attempts <= policy.max_attempts.max(1));
        if policy.budget_ms > 0 {
            prop_assert!(result.backoff_ms <= policy.budget_ms);
        }
        if let Ok(succeeded_at) = result.outcome {
            prop_assert_eq!(succeeded_at, fail_first + 1, "stops at first success");
        }
    }

    /// State-machine invariant: the breaker never transitions open → closed
    /// without passing through half-open, trips only at the configured
    /// threshold, and only `allow` (cooldown expiry) leaves the open state.
    #[test]
    fn breaker_never_skips_half_open(
        events in event_strategy(),
        trip_threshold in 1u32..6,
        cooldown in 1i64..20,
        tick_step in 1i64..10,
    ) {
        let incidents = IncidentManager::new();
        let breaker = CircuitBreaker::new(BreakerConfig {
            trip_threshold,
            cooldown_ticks: cooldown,
        });
        let mut tick = 0i64;
        let mut prev = breaker.state("k");
        let mut streak = 0u32;
        for &ok in &events {
            tick += tick_step;
            let admitted = breaker.allow("k", tick);
            let after_allow = breaker.state("k");
            // allow() may only move open → half-open, nothing else.
            match (prev, after_allow) {
                (a, b) if a == b => {}
                (BreakerState::Open, BreakerState::HalfOpen) => {
                    prop_assert!(admitted, "the half-open transition admits the probe");
                }
                (a, b) => prop_assert!(false, "allow() moved {a:?} -> {b:?}"),
            }
            prop_assert_eq!(
                admitted,
                after_allow != BreakerState::Open,
                "exactly the non-open states admit"
            );
            if admitted {
                if ok {
                    breaker.record_success("k", tick, &incidents);
                } else {
                    breaker.record_failure("k", tick, &incidents);
                }
            }
            let after_record = breaker.state("k");
            // record_*() transitions, from the post-allow state.
            match (after_allow, after_record) {
                (a, b) if a == b => {}
                (BreakerState::HalfOpen, BreakerState::Closed) => {
                    prop_assert!(admitted && ok, "half-open closes only on probe success");
                }
                (BreakerState::HalfOpen, BreakerState::Open) => {
                    prop_assert!(admitted && !ok, "half-open re-opens only on probe failure");
                }
                (BreakerState::Closed, BreakerState::Open) => {
                    prop_assert!(admitted && !ok, "closed trips only on a recorded failure");
                }
                (a, b) => prop_assert!(false, "record moved {a:?} -> {b:?}"),
            }
            // Trip-threshold accounting (closed-state failures only).
            if after_allow == BreakerState::Closed && admitted {
                streak = if ok { 0 } else { streak + 1 };
                if streak >= trip_threshold {
                    prop_assert_eq!(after_record, BreakerState::Open, "threshold must trip");
                    streak = 0;
                } else {
                    prop_assert_eq!(after_record, BreakerState::Closed);
                }
            } else if after_allow == BreakerState::HalfOpen && admitted {
                streak = 0;
            }
            prev = after_record;
        }
    }

    /// Seeds differ → schedules eventually differ (jitter is actually
    /// seeded, not constant). Checked over a batch of seeds to avoid flaking
    /// on collisions.
    #[test]
    fn jitter_depends_on_seed(base in any::<u64>()) {
        let policy = RetryPolicy {
            max_attempts: 8,
            base_delay_ms: 1_000,
            multiplier: 2.0,
            cap_ms: 60_000,
            jitter_frac: 0.5,
            budget_ms: 0,
        };
        let first = policy.delays_ms(base);
        let any_differ = (1u64..32).any(|off| policy.delays_ms(base.wrapping_add(off)) != first);
        prop_assert!(any_differ, "32 consecutive seeds all produced identical jitter");
    }
}
