//! Fault-injection coverage for the columnar ingest path: a torn read of a
//! columnar blob must surface as a checksum failure — a retryable transient
//! stage error — and never as a silently truncated batch or a quarantined
//! poison server.

use seagull_core::incident::Severity;
use seagull_core::pipeline::{collections, AmlPipeline, PipelineConfig};
use seagull_telemetry::blobstore::{BlobKey, BlobStore, MemoryBlobStore};
use seagull_telemetry::chaos::{ChaosBlobStore, ChaosConfig};
use seagull_telemetry::columnar::ColumnarError;
use seagull_telemetry::extract::{LoadExtraction, RegionWeekBatch, RegionWeekError};
use seagull_telemetry::fleet::{FleetGenerator, FleetSpec, ServerTelemetry};
use std::sync::Arc;

fn columnar_store(servers: usize, seed: u64) -> (Arc<MemoryBlobStore>, i64, Vec<ServerTelemetry>) {
    let mut spec = FleetSpec::small_region(seed);
    spec.regions[0].servers = servers;
    let start = spec.start_day;
    let fleet = FleetGenerator::new(spec).generate_weeks(1);
    let store = Arc::new(MemoryBlobStore::new());
    LoadExtraction::columnar(5)
        .run(&fleet, &["region-a".into()], &[start], store.as_ref())
        .unwrap();
    (store, start, fleet)
}

/// Every torn read either fails the decode loudly or returns the full batch —
/// a truncated blob can never decode to a *shorter* valid batch.
#[test]
fn torn_columnar_read_fails_checksum_never_truncates() {
    let (inner, start, _fleet) = columnar_store(12, 23);
    let key = BlobKey::extracted("region-a", start);
    let full = match RegionWeekBatch::decode(&inner.get(&key).unwrap()).unwrap() {
        RegionWeekBatch::Columnar(batch) => batch.len(),
        other => panic!("expected columnar blob, got {:?}", other.format()),
    };
    assert!(full > 0);

    let chaos = ChaosBlobStore::new(
        inner,
        ChaosConfig {
            seed: 5,
            torn_read_prob: 0.7,
            ..ChaosConfig::default()
        },
    );
    let mut checksum_failures = 0;
    let mut clean_reads = 0;
    for _ in 0..40 {
        let blob = chaos.get(&key).unwrap();
        match RegionWeekBatch::decode(&blob) {
            Ok(RegionWeekBatch::Columnar(batch)) => {
                assert_eq!(batch.len(), full, "decode must be all-or-nothing");
                clean_reads += 1;
            }
            Ok(RegionWeekBatch::Csv(_)) => panic!("torn columnar blob sniffed as CSV rows"),
            Err(RegionWeekError::Columnar(ColumnarError::ChecksumMismatch { .. })) => {
                checksum_failures += 1;
            }
            // Cuts inside the header/footer or before the magic fail with
            // other structural errors; any loud failure is acceptable.
            Err(_) => {}
        }
    }
    assert!(chaos.stats().torn_reads > 0, "schedule never tore a read");
    assert!(clean_reads > 0, "some reads must come back whole");
    assert!(
        checksum_failures > 0,
        "torn blobs must be rejected by the checksum footer"
    );
}

/// The pipeline retries a torn columnar read via its resilience policy and
/// completes the run; nothing lands in the dead-letter quarantine.
#[test]
fn pipeline_retries_torn_columnar_read() {
    let (inner, start, _fleet) = columnar_store(12, 23);
    let chaos = Arc::new(ChaosBlobStore::new(
        inner,
        ChaosConfig {
            seed: 40,
            torn_read_prob: 0.5,
            ..ChaosConfig::default()
        },
    ));
    let pipeline = AmlPipeline::new(PipelineConfig::production(), chaos.clone());
    let report = pipeline.run_region_week("region-a", start);

    assert!(chaos.stats().torn_reads > 0, "schedule never tore a read");
    assert!(!report.blocked, "torn read must be retried, not fatal");
    assert!(report.servers > 0);
    assert!(report.predictions_written > 0);
    let degraded = report.degraded.expect("retries must be recorded");
    assert!(
        degraded.retries.get("ingestion").copied().unwrap_or(0) >= 1,
        "ingestion must retry the checksum failure: {degraded:?}"
    );
    assert!(degraded.exhausted_stages.is_empty());
    // A transient decode failure is not poison input: the quarantine stays
    // empty and no critical incident is raised.
    assert_eq!(pipeline.docs.count(collections::DEAD_LETTER), 0);
    assert_eq!(pipeline.incidents.open_count(Severity::Critical), 0);
}
