//! Summary statistics over value slices.

use serde::{Deserialize, Serialize};

/// Arithmetic mean. Returns NaN for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population standard deviation. Returns NaN for an empty slice.
pub fn stddev(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64;
    var.sqrt()
}

/// Minimum, ignoring NaN. Returns NaN if the slice is empty or all-NaN.
pub fn min(values: &[f64]) -> f64 {
    values
        .iter()
        .copied()
        .filter(|v| !v.is_nan())
        .fold(
            f64::NAN,
            |acc, v| if acc.is_nan() || v < acc { v } else { acc },
        )
}

/// Maximum, ignoring NaN. Returns NaN if the slice is empty or all-NaN.
pub fn max(values: &[f64]) -> f64 {
    values
        .iter()
        .copied()
        .filter(|v| !v.is_nan())
        .fold(
            f64::NAN,
            |acc, v| if acc.is_nan() || v > acc { v } else { acc },
        )
}

/// Quantile via linear interpolation on sorted data, `q` in `[0, 1]`.
/// Returns NaN for an empty slice. NaNs in the input are ignored.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
    if sorted.is_empty() {
        return f64::NAN;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaNs filtered"));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// A bundle of summary statistics computed in one pass (plus a sort for the
/// quantiles). Used by the feature-extraction module.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SummaryStats {
    pub count: usize,
    pub missing: usize,
    pub mean: f64,
    pub stddev: f64,
    pub min: f64,
    pub max: f64,
    pub p50: f64,
    pub p95: f64,
}

impl SummaryStats {
    /// Computes statistics over `values`, treating NaN as missing.
    pub fn compute(values: &[f64]) -> SummaryStats {
        let present: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
        SummaryStats {
            count: values.len(),
            missing: values.len() - present.len(),
            mean: mean(&present),
            stddev: stddev(&present),
            min: min(&present),
            max: max(&present),
            p50: quantile(&present, 0.5),
            p95: quantile(&present, 0.95),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert!(mean(&[]).is_nan());
        assert_eq!(stddev(&[5.0, 5.0, 5.0]), 0.0);
        let s = stddev(&[2.0, 4.0]);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_max_ignore_nan() {
        assert_eq!(min(&[3.0, f64::NAN, 1.0]), 1.0);
        assert_eq!(max(&[3.0, f64::NAN, 1.0]), 3.0);
        assert!(min(&[]).is_nan());
        assert!(max(&[f64::NAN]).is_nan());
    }

    #[test]
    fn quantiles() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 4.0);
        assert_eq!(quantile(&v, 0.5), 2.5);
        assert!(quantile(&[], 0.5).is_nan());
        // Out-of-range q is clamped.
        assert_eq!(quantile(&v, 2.0), 4.0);
        assert_eq!(quantile(&v, -1.0), 1.0);
    }

    #[test]
    fn quantile_unsorted_input() {
        let v = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(quantile(&v, 0.5), 2.5);
    }

    #[test]
    fn summary_counts_missing() {
        let s = SummaryStats::compute(&[1.0, f64::NAN, 3.0]);
        assert_eq!(s.count, 3);
        assert_eq!(s.missing, 1);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
    }
}
