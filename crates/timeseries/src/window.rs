//! Sliding-window primitives.
//!
//! The lowest-load window search (paper Definition 7) is a minimum-mean
//! fixed-length window over a day of load samples; [`min_mean_window`] is the
//! O(n) prefix-sum implementation used by `seagull-core::metrics`.

use serde::{Deserialize, Serialize};

/// Result of a window scan: the starting index of the chosen window and the
/// mean of the values inside it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowStat {
    /// Index of the first point in the window.
    pub start_index: usize,
    /// Mean of the `len` values starting at `start_index`.
    pub mean: f64,
}

/// Finds the contiguous window of `len` points with the minimal mean.
///
/// Ties are broken in favor of the earliest window, which makes the search
/// deterministic. Returns `None` when `len` is zero or exceeds the slice.
/// NaN values poison any window containing them (such windows never win),
/// so callers must gap-fill first if they want those regions considered.
pub fn min_mean_window(values: &[f64], len: usize) -> Option<WindowStat> {
    if len == 0 || len > values.len() {
        return None;
    }
    // Prefix sums give O(n) scanning. NaNs (missing samples) are tracked in a
    // separate count prefix so a single gap does not poison every window that
    // follows it; windows containing any NaN are skipped.
    let mut prefix = Vec::with_capacity(values.len() + 1);
    let mut nan_prefix = Vec::with_capacity(values.len() + 1);
    prefix.push(0.0);
    nan_prefix.push(0usize);
    let mut acc = 0.0;
    let mut nans = 0usize;
    for &v in values {
        if v.is_nan() {
            nans += 1;
        } else {
            acc += v;
        }
        prefix.push(acc);
        nan_prefix.push(nans);
    }
    let mut best: Option<WindowStat> = None;
    for start in 0..=(values.len() - len) {
        if nan_prefix[start + len] - nan_prefix[start] > 0 {
            continue;
        }
        let sum = prefix[start + len] - prefix[start];
        let mean = sum / len as f64;
        match best {
            Some(b) if b.mean <= mean => {}
            _ => {
                best = Some(WindowStat {
                    start_index: start,
                    mean,
                })
            }
        }
    }
    best
}

/// Rolling mean with a centered-less window: output `i` is the mean of
/// `values[i..i+len]`; the output has `values.len() - len + 1` entries.
/// Returns an empty vector when `len` is zero or exceeds the input.
pub fn rolling_mean(values: &[f64], len: usize) -> Vec<f64> {
    if len == 0 || len > values.len() {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(values.len() - len + 1);
    let mut sum: f64 = values[..len].iter().sum();
    out.push(sum / len as f64);
    for i in len..values.len() {
        sum += values[i] - values[i - len];
        out.push(sum / len as f64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_minimum_mean() {
        let v = [5.0, 1.0, 1.0, 5.0, 0.0, 0.5];
        let w = min_mean_window(&v, 2).unwrap();
        assert_eq!(w.start_index, 4);
        assert!((w.mean - 0.25).abs() < 1e-12);
    }

    #[test]
    fn tie_breaks_earliest() {
        let v = [1.0, 1.0, 2.0, 1.0, 1.0];
        let w = min_mean_window(&v, 2).unwrap();
        assert_eq!(w.start_index, 0);
    }

    #[test]
    fn window_length_equals_input() {
        let v = [2.0, 4.0];
        let w = min_mean_window(&v, 2).unwrap();
        assert_eq!(w.start_index, 0);
        assert_eq!(w.mean, 3.0);
    }

    #[test]
    fn degenerate_lengths() {
        assert!(min_mean_window(&[1.0], 0).is_none());
        assert!(min_mean_window(&[1.0], 2).is_none());
        assert!(min_mean_window(&[], 1).is_none());
    }

    #[test]
    fn nan_windows_are_skipped() {
        let v = [f64::NAN, 5.0, 1.0, 1.0];
        let w = min_mean_window(&v, 2).unwrap();
        assert_eq!(w.start_index, 2);
    }

    #[test]
    fn all_nan_returns_none() {
        let v = [f64::NAN, f64::NAN];
        assert!(min_mean_window(&v, 1).is_none());
    }

    #[test]
    fn rolling_mean_matches_naive() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        let r = rolling_mean(&v, 3);
        assert_eq!(r, vec![2.0, 3.0, 4.0]);
        assert!(rolling_mean(&v, 0).is_empty());
        assert!(rolling_mean(&v, 6).is_empty());
    }

    #[test]
    fn min_mean_window_agrees_with_rolling_mean() {
        let v: Vec<f64> = (0..50).map(|i| ((i * 37) % 17) as f64).collect();
        for len in 1..=10 {
            let w = min_mean_window(&v, len).unwrap();
            let roll = rolling_mean(&v, len);
            let (bi, bv) = roll
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(a.0.cmp(&b.0)))
                .unwrap();
            assert_eq!(w.start_index, bi);
            assert!((w.mean - bv).abs() < 1e-9);
        }
    }
}
