//! # seagull-timeseries
//!
//! Time-series substrate for the Seagull reproduction.
//!
//! Seagull consumes *regularly gridded* telemetry: average customer CPU load
//! percentage per five minutes for PostgreSQL/MySQL servers (Section 2.2 of
//! the paper) and per fifteen minutes for SQL databases (Appendix A). This
//! crate provides the [`TimeSeries`] type used everywhere downstream, plus
//! calendar math (backup *days*, days of week, week alignment), resampling of
//! raw irregular telemetry onto the grid, gap filling, rolling windows, and
//! summary statistics.
//!
//! Timestamps are minutes since the Unix epoch ([`Timestamp`]); all paper
//! experiments operate at minute granularity, so this representation is exact
//! and cheap (a single `i64`).

pub mod anomaly;
pub mod calendar;
pub mod decompose;
pub mod resample;
pub mod series;
pub mod stats;
pub mod time;
pub mod window;

pub use anomaly::{detect_anomalies, AnomalyConfig, LoadAnomaly};
pub use calendar::{DayOfWeek, MINUTES_PER_DAY, MINUTES_PER_HOUR, MINUTES_PER_WEEK};
pub use decompose::{decompose, Decomposition};
pub use resample::{fill_gaps, resample_mean, GapFill, RawPoint};
pub use series::{TimeSeries, TimeSeriesError};
pub use stats::{max, mean, min, quantile, stddev, SummaryStats};
pub use time::Timestamp;
pub use window::{min_mean_window, rolling_mean, WindowStat};
