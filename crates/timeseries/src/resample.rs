//! Resampling raw telemetry onto a regular grid, and gap filling.
//!
//! Production telemetry arrives as irregular per-event samples; the Load
//! Extraction module (paper Section 2.2) aggregates them to "average customer
//! CPU load percentage per five minutes". [`resample_mean`] performs that
//! aggregation; [`fill_gaps`] repairs the missing buckets that the Data
//! Validation module tolerates below its alert threshold.

use crate::series::{TimeSeries, TimeSeriesError};
use crate::time::Timestamp;

/// One raw telemetry sample before gridding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RawPoint {
    pub at: Timestamp,
    pub value: f64,
}

/// Buckets raw points onto a `step_min` grid spanning `[start, end)` and
/// averages within each bucket. Buckets without samples become NaN (missing).
///
/// `start` must be aligned to the grid; points outside the range are ignored.
pub fn resample_mean(
    points: &[RawPoint],
    start: Timestamp,
    end: Timestamp,
    step_min: u32,
) -> Result<TimeSeries, TimeSeriesError> {
    let span = end - start;
    if span < 0 || span % step_min as i64 != 0 {
        return Err(TimeSeriesError::MisalignedStart {
            start: end,
            step_min,
        });
    }
    let n = (span / step_min as i64) as usize;
    let mut sums = vec![0.0f64; n];
    let mut counts = vec![0u32; n];
    for p in points {
        let delta = p.at - start;
        if delta < 0 || delta >= span {
            continue;
        }
        let idx = (delta / step_min as i64) as usize;
        sums[idx] += p.value;
        counts[idx] += 1;
    }
    let values = sums
        .into_iter()
        .zip(counts)
        .map(|(s, c)| if c == 0 { f64::NAN } else { s / c as f64 })
        .collect();
    TimeSeries::new(start, step_min, values)
}

/// Strategy for repairing missing (NaN) samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GapFill {
    /// Linear interpolation between the nearest present neighbors; edges are
    /// extended from the nearest present value.
    Linear,
    /// Carry the previous present value forward; a leading gap is filled
    /// backward from the first present value.
    Forward,
    /// Replace every gap with a constant.
    Constant(u32),
}

/// Fills NaN gaps in-place according to the strategy. A series with *no*
/// present values is left untouched (the validation module rejects it
/// upstream).
///
/// A gap-free series is also left untouched *without* taking a mutable view,
/// so series sharing a decode buffer (columnar ingest) stay zero-copy in the
/// common complete-telemetry case.
pub fn fill_gaps(series: &mut TimeSeries, strategy: GapFill) {
    if series.missing_count() == 0 {
        return;
    }
    let values = series.values_mut();
    let first_present = match values.iter().position(|v| !v.is_nan()) {
        Some(i) => i,
        None => return,
    };
    match strategy {
        GapFill::Constant(c) => {
            for v in values.iter_mut() {
                if v.is_nan() {
                    *v = c as f64;
                }
            }
        }
        GapFill::Forward => {
            let head = values[first_present];
            for v in values[..first_present].iter_mut() {
                *v = head;
            }
            let mut last = head;
            for v in values.iter_mut() {
                if v.is_nan() {
                    *v = last;
                } else {
                    last = *v;
                }
            }
        }
        GapFill::Linear => {
            let head = values[first_present];
            for v in values[..first_present].iter_mut() {
                *v = head;
            }
            let mut i = first_present;
            while i < values.len() {
                if !values[i].is_nan() {
                    i += 1;
                    continue;
                }
                // `i` starts a gap; find the next present value.
                let gap_start = i;
                let left = values[gap_start - 1];
                let right_idx = values[gap_start..].iter().position(|v| !v.is_nan());
                match right_idx {
                    Some(off) => {
                        let right_idx = gap_start + off;
                        let right = values[right_idx];
                        let span = (right_idx - (gap_start - 1)) as f64;
                        for (k, v) in values[gap_start..right_idx].iter_mut().enumerate() {
                            let frac = (k + 1) as f64 / span;
                            *v = left * (1.0 - frac) + right * frac;
                        }
                        i = right_idx;
                    }
                    None => {
                        // Trailing gap: extend the last present value.
                        for v in values[gap_start..].iter_mut() {
                            *v = left;
                        }
                        break;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(min: i64, v: f64) -> RawPoint {
        RawPoint {
            at: Timestamp::from_minutes(min),
            value: v,
        }
    }

    #[test]
    fn resample_averages_buckets() {
        let pts = [pt(0, 2.0), pt(1, 4.0), pt(5, 10.0), pt(14, 20.0)];
        let s = resample_mean(&pts, Timestamp::EPOCH, Timestamp::from_minutes(15), 5).unwrap();
        assert_eq!(s.values()[0], 3.0);
        assert_eq!(s.values()[1], 10.0);
        assert_eq!(s.values()[2], 20.0);
    }

    #[test]
    fn resample_marks_empty_buckets_missing() {
        let pts = [pt(0, 1.0)];
        let s = resample_mean(&pts, Timestamp::EPOCH, Timestamp::from_minutes(10), 5).unwrap();
        assert_eq!(s.values()[0], 1.0);
        assert!(s.values()[1].is_nan());
    }

    #[test]
    fn resample_ignores_out_of_range() {
        let pts = [pt(-1, 100.0), pt(10, 100.0), pt(5, 7.0)];
        let s = resample_mean(&pts, Timestamp::EPOCH, Timestamp::from_minutes(10), 5).unwrap();
        assert!(s.values()[0].is_nan());
        assert_eq!(s.values()[1], 7.0);
    }

    #[test]
    fn resample_rejects_bad_range() {
        assert!(resample_mean(&[], Timestamp::EPOCH, Timestamp::from_minutes(-5), 5).is_err());
        assert!(resample_mean(&[], Timestamp::EPOCH, Timestamp::from_minutes(7), 5).is_err());
    }

    fn series_with(vals: &[f64]) -> TimeSeries {
        TimeSeries::new(Timestamp::EPOCH, 5, vals.to_vec()).unwrap()
    }

    #[test]
    fn linear_fill_interpolates() {
        let mut s = series_with(&[1.0, f64::NAN, f64::NAN, 4.0]);
        fill_gaps(&mut s, GapFill::Linear);
        assert_eq!(s.values(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn linear_fill_extends_edges() {
        let mut s = series_with(&[f64::NAN, 2.0, f64::NAN]);
        fill_gaps(&mut s, GapFill::Linear);
        assert_eq!(s.values(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn forward_fill() {
        let mut s = series_with(&[f64::NAN, 2.0, f64::NAN, 5.0, f64::NAN]);
        fill_gaps(&mut s, GapFill::Forward);
        assert_eq!(s.values(), &[2.0, 2.0, 2.0, 5.0, 5.0]);
    }

    #[test]
    fn constant_fill() {
        let mut s = series_with(&[f64::NAN, 2.0]);
        fill_gaps(&mut s, GapFill::Constant(0));
        assert_eq!(s.values(), &[0.0, 2.0]);
    }

    #[test]
    fn all_missing_untouched() {
        let mut s = series_with(&[f64::NAN, f64::NAN]);
        fill_gaps(&mut s, GapFill::Linear);
        assert_eq!(s.missing_count(), 2);
    }

    #[test]
    fn no_gaps_is_noop() {
        let mut s = series_with(&[1.0, 2.0]);
        fill_gaps(&mut s, GapFill::Linear);
        assert_eq!(s.values(), &[1.0, 2.0]);
    }

    #[test]
    fn no_gaps_keeps_shared_storage() {
        let base = series_with(&[1.0, 2.0, 3.0]);
        let mut view = base.slice(base.start(), base.end()).unwrap();
        fill_gaps(&mut view, GapFill::Linear);
        assert!(
            base.shares_storage(&view),
            "gap-free fill must not detach the view"
        );
    }
}
