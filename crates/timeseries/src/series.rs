//! The regular-grid [`TimeSeries`] type.
//!
//! Storage is a shared `Arc<[f64]>` plus an `(offset, len)` view, so slicing
//! a series — a day window, a training history, a forecast input — shares the
//! parent's buffer instead of cloning it. Mutation copies the view out first
//! (copy-on-write), so sharing is never observable through the API.

use crate::calendar::MINUTES_PER_DAY;
use crate::time::Timestamp;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Errors produced by [`TimeSeries`] constructors and combinators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimeSeriesError {
    /// The step must be a positive number of minutes that divides a day, so
    /// that whole-day slicing (backup days, daily patterns) is exact.
    InvalidStep { step_min: u32 },
    /// The start timestamp must lie on the step grid.
    MisalignedStart { start: Timestamp, step_min: u32 },
    /// Two series that must share a grid do not.
    GridMismatch,
    /// A requested time range is not covered by the series.
    OutOfRange { requested: Timestamp },
    /// A value was not finite (NaN or infinite) where finiteness is required.
    NonFiniteValue { index: usize },
    /// A shared-storage view does not fit inside its buffer.
    ViewOutOfBounds {
        offset: usize,
        len: usize,
        storage_len: usize,
    },
}

impl fmt::Display for TimeSeriesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeSeriesError::InvalidStep { step_min } => {
                write!(f, "step of {step_min} min must be positive and divide 1440")
            }
            TimeSeriesError::MisalignedStart { start, step_min } => {
                write!(
                    f,
                    "start {start} is not aligned to a {step_min}-minute grid"
                )
            }
            TimeSeriesError::GridMismatch => write!(f, "series grids do not match"),
            TimeSeriesError::OutOfRange { requested } => {
                write!(f, "timestamp {requested} is outside the series")
            }
            TimeSeriesError::NonFiniteValue { index } => {
                write!(f, "non-finite value at index {index}")
            }
            TimeSeriesError::ViewOutOfBounds {
                offset,
                len,
                storage_len,
            } => {
                write!(
                    f,
                    "view [{offset}, {offset}+{len}) exceeds shared storage of {storage_len} points"
                )
            }
        }
    }
}

impl std::error::Error for TimeSeriesError {}

/// A time series on a regular minute grid.
///
/// ```
/// use seagull_timeseries::{TimeSeries, Timestamp};
/// // Two hours of 5-minute samples starting at midnight of day 100.
/// let s = TimeSeries::from_fn(Timestamp::from_days(100), 5, 24, |t| {
///     t.minute_of_day() as f64
/// }).unwrap();
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.value_at(Timestamp::from_days(100) + 60), Some(60.0));
/// assert_eq!(s.end() - s.start(), 120);
/// ```
///
/// Invariants (enforced at construction):
/// * `step_min > 0` and `step_min` divides 1440 (whole-day slicing is exact);
/// * `start` lies on the `step_min` grid;
/// * the `(offset, len)` view fits inside the shared storage.
///
/// Values are allowed to be NaN to represent *missing telemetry*; the data
/// validation module of `seagull-core` detects and reports them, and
/// [`crate::resample::fill_gaps`] repairs them.
///
/// Cloning and slicing are cheap: [`slice`](TimeSeries::slice),
/// [`day`](TimeSeries::day), and [`shifted`](TimeSeries::shifted) return
/// views over the same `Arc<[f64]>` buffer
/// ([`shares_storage`](TimeSeries::shares_storage) observes this). Serde and
/// `PartialEq` see only the viewed values, so views are indistinguishable
/// from owned series.
#[derive(Clone)]
pub struct TimeSeries {
    start: Timestamp,
    step_min: u32,
    storage: Arc<[f64]>,
    offset: usize,
    len: usize,
}

/// The serde-facing shape of a [`TimeSeries`]. Kept identical to the
/// pre-view representation (`start`, `step_min`, `values`) so documents and
/// exports are unchanged by the shared-storage refactor.
#[derive(Serialize, Deserialize)]
struct SeriesRepr {
    start: Timestamp,
    step_min: u32,
    values: Vec<f64>,
}

impl Serialize for TimeSeries {
    fn serialize<S>(&self, serializer: S) -> Result<S::Ok, S::Error>
    where
        S: serde::Serializer,
    {
        SeriesRepr {
            start: self.start,
            step_min: self.step_min,
            values: self.values().to_vec(),
        }
        .serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for TimeSeries {
    fn deserialize<D>(deserializer: D) -> Result<TimeSeries, D::Error>
    where
        D: serde::Deserializer<'de>,
    {
        let repr = SeriesRepr::deserialize(deserializer)?;
        TimeSeries::new(repr.start, repr.step_min, repr.values).map_err(serde::de::Error::custom)
    }
}

impl fmt::Debug for TimeSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TimeSeries")
            .field("start", &self.start)
            .field("step_min", &self.step_min)
            .field("values", &self.values())
            .finish()
    }
}

/// Equality compares the *viewed* values, so a zero-copy view equals an
/// owned series with the same grid and contents.
impl PartialEq for TimeSeries {
    fn eq(&self, other: &TimeSeries) -> bool {
        self.start == other.start
            && self.step_min == other.step_min
            && self.values() == other.values()
    }
}

impl TimeSeries {
    fn validate_grid(start: Timestamp, step_min: u32) -> Result<(), TimeSeriesError> {
        if step_min == 0 || MINUTES_PER_DAY % step_min as i64 != 0 {
            return Err(TimeSeriesError::InvalidStep { step_min });
        }
        if !start.is_aligned(step_min) {
            return Err(TimeSeriesError::MisalignedStart { start, step_min });
        }
        Ok(())
    }

    /// Creates a series from a start timestamp, grid step, and values.
    pub fn new(
        start: Timestamp,
        step_min: u32,
        values: Vec<f64>,
    ) -> Result<TimeSeries, TimeSeriesError> {
        Self::validate_grid(start, step_min)?;
        let len = values.len();
        Ok(TimeSeries {
            start,
            step_min,
            storage: values.into(),
            offset: 0,
            len,
        })
    }

    /// Creates a series as a view over `storage[offset..offset + len]`
    /// without copying. This is how the columnar blob decoder hands every
    /// server a window into one shared buffer.
    pub fn from_shared(
        start: Timestamp,
        step_min: u32,
        storage: Arc<[f64]>,
        offset: usize,
        len: usize,
    ) -> Result<TimeSeries, TimeSeriesError> {
        Self::validate_grid(start, step_min)?;
        if offset
            .checked_add(len)
            .is_none_or(|end| end > storage.len())
        {
            return Err(TimeSeriesError::ViewOutOfBounds {
                offset,
                len,
                storage_len: storage.len(),
            });
        }
        Ok(TimeSeries {
            start,
            step_min,
            storage,
            offset,
            len,
        })
    }

    /// Creates an empty series with the given grid.
    pub fn empty(start: Timestamp, step_min: u32) -> Result<TimeSeries, TimeSeriesError> {
        Self::new(start, step_min, Vec::new())
    }

    /// Builds a series by evaluating `f` at each grid timestamp.
    pub fn from_fn(
        start: Timestamp,
        step_min: u32,
        len: usize,
        mut f: impl FnMut(Timestamp) -> f64,
    ) -> Result<TimeSeries, TimeSeriesError> {
        let mut values = Vec::with_capacity(len);
        for i in 0..len {
            values.push(f(start + i as i64 * step_min as i64));
        }
        Self::new(start, step_min, values)
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the series holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Grid step in minutes.
    #[inline]
    pub fn step_min(&self) -> u32 {
        self.step_min
    }

    /// Grid points per day (e.g. 288 for a 5-minute grid).
    #[inline]
    pub fn points_per_day(&self) -> usize {
        (MINUTES_PER_DAY / self.step_min as i64) as usize
    }

    /// Timestamp of the first point.
    #[inline]
    pub fn start(&self) -> Timestamp {
        self.start
    }

    /// Timestamp one step past the last point (exclusive end).
    #[inline]
    pub fn end(&self) -> Timestamp {
        self.start + self.len as i64 * self.step_min as i64
    }

    /// The values as a slice.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.storage[self.offset..self.offset + self.len]
    }

    /// The values as a mutable slice. If the storage is shared with other
    /// series (views), the viewed range is copied out first so mutation
    /// never affects them (copy-on-write).
    pub fn values_mut(&mut self) -> &mut [f64] {
        if Arc::get_mut(&mut self.storage).is_none() {
            let owned: Arc<[f64]> = self.storage[self.offset..self.offset + self.len].into();
            self.storage = owned;
            self.offset = 0;
        }
        let (offset, len) = (self.offset, self.len);
        &mut Arc::get_mut(&mut self.storage).expect("storage is uniquely owned")
            [offset..offset + len]
    }

    /// Consumes the series, returning its values.
    #[inline]
    pub fn into_values(self) -> Vec<f64> {
        self.values().to_vec()
    }

    /// The shared backing buffer. Views produced by
    /// [`slice`](TimeSeries::slice) / [`day`](TimeSeries::day) return the
    /// same `Arc` as their parent (`Arc::ptr_eq`); use
    /// [`shares_storage`](TimeSeries::shares_storage) to test that.
    #[inline]
    pub fn storage(&self) -> &Arc<[f64]> {
        &self.storage
    }

    /// True if `self` and `other` are views over the same allocation.
    #[inline]
    pub fn shares_storage(&self, other: &TimeSeries) -> bool {
        Arc::ptr_eq(&self.storage, &other.storage)
    }

    /// Timestamp of point `i` (which need not be in bounds).
    #[inline]
    pub fn timestamp_at(&self, i: usize) -> Timestamp {
        self.start + i as i64 * self.step_min as i64
    }

    /// Index of the grid point at timestamp `ts`, if `ts` is on the grid and
    /// within the series.
    pub fn index_of(&self, ts: Timestamp) -> Option<usize> {
        let delta = ts - self.start;
        if delta < 0 || delta % self.step_min as i64 != 0 {
            return None;
        }
        let idx = (delta / self.step_min as i64) as usize;
        (idx < self.len).then_some(idx)
    }

    /// Value at timestamp `ts`, if covered.
    pub fn value_at(&self, ts: Timestamp) -> Option<f64> {
        self.index_of(ts).map(|i| self.values()[i])
    }

    /// Iterates over `(timestamp, value)` pairs.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (Timestamp, f64)> + '_ {
        self.values()
            .iter()
            .enumerate()
            .map(move |(i, &v)| (self.timestamp_at(i), v))
    }

    /// True if `other` shares this series' step.
    #[inline]
    pub fn same_grid(&self, other: &TimeSeries) -> bool {
        self.step_min == other.step_min && (self.start - other.start) % self.step_min as i64 == 0
    }

    /// Returns the sub-series covering `[from, to)` as a zero-copy view
    /// sharing this series' storage, or an error if the range is not fully
    /// covered or misaligned.
    pub fn slice(&self, from: Timestamp, to: Timestamp) -> Result<TimeSeries, TimeSeriesError> {
        let (i, n) = self.view_range(from, to)?;
        Ok(TimeSeries {
            start: from,
            step_min: self.step_min,
            storage: Arc::clone(&self.storage),
            offset: self.offset + i,
            len: n,
        })
    }

    /// Resolves `[from, to)` to a `(start index, point count)` pair within
    /// the view, validating coverage and alignment.
    fn view_range(
        &self,
        from: Timestamp,
        to: Timestamp,
    ) -> Result<(usize, usize), TimeSeriesError> {
        if to < from {
            return Err(TimeSeriesError::OutOfRange { requested: to });
        }
        let i = self
            .index_of(from)
            .ok_or(TimeSeriesError::OutOfRange { requested: from })?;
        if (to - from) % self.step_min as i64 != 0 {
            return Err(TimeSeriesError::MisalignedStart {
                start: to,
                step_min: self.step_min,
            });
        }
        let n = ((to - from) / self.step_min as i64) as usize;
        if i + n > self.len {
            return Err(TimeSeriesError::OutOfRange { requested: to });
        }
        Ok((i, n))
    }

    /// Borrowed view of the values covering `[from, to)`.
    pub fn slice_values(&self, from: Timestamp, to: Timestamp) -> Result<&[f64], TimeSeriesError> {
        let (i, n) = self.view_range(from, to)?;
        Ok(&self.values()[i..i + n])
    }

    /// The values for the calendar day with the given day index, if the series
    /// fully covers that day.
    pub fn day_values(&self, day_index: i64) -> Option<&[f64]> {
        let from = Timestamp::from_days(day_index);
        let to = Timestamp::from_days(day_index + 1);
        self.slice_values(from, to).ok()
    }

    /// The sub-series for a calendar day, if fully covered. Like
    /// [`slice`](TimeSeries::slice), the result is a view sharing storage.
    pub fn day(&self, day_index: i64) -> Option<TimeSeries> {
        let from = Timestamp::from_days(day_index);
        let to = Timestamp::from_days(day_index + 1);
        self.slice(from, to).ok()
    }

    /// First calendar day fully covered by this series, if any.
    pub fn first_full_day(&self) -> Option<i64> {
        let d = if self.start.minute_of_day() == 0 {
            self.start.day_index()
        } else {
            self.start.day_index() + 1
        };
        self.day_values(d).map(|_| d)
    }

    /// Last calendar day fully covered by this series, if any.
    pub fn last_full_day(&self) -> Option<i64> {
        if self.is_empty() {
            return None;
        }
        // The last candidate day ends at or before `end()`.
        let d = self.end().day_index() - 1;
        self.day_values(d).map(|_| d)
    }

    /// Iterates over the day indices fully covered by this series.
    pub fn full_days(&self) -> impl Iterator<Item = i64> + '_ {
        match (self.first_full_day(), self.last_full_day()) {
            (Some(a), Some(b)) => a..=b,
            #[allow(clippy::reversed_empty_ranges)]
            _ => 1..=0, // canonical empty RangeInclusive
        }
    }

    /// Appends another series that starts exactly where this one ends.
    /// Rebuilds the backing buffer; appending detaches from any shared
    /// storage.
    pub fn append(&mut self, tail: &TimeSeries) -> Result<(), TimeSeriesError> {
        if tail.step_min != self.step_min {
            return Err(TimeSeriesError::GridMismatch);
        }
        if !self.is_empty() && tail.start != self.end() {
            return Err(TimeSeriesError::GridMismatch);
        }
        let start = if self.is_empty() {
            tail.start
        } else {
            self.start
        };
        let mut values = Vec::with_capacity(self.len + tail.len);
        values.extend_from_slice(self.values());
        values.extend_from_slice(tail.values());
        self.start = start;
        self.storage = values.into();
        self.offset = 0;
        self.len = self.storage.len();
        Ok(())
    }

    /// Pushes one value at the end of the grid. Rebuilds the backing buffer;
    /// pushing detaches from any shared storage.
    pub fn push(&mut self, value: f64) {
        let mut values = Vec::with_capacity(self.len + 1);
        values.extend_from_slice(self.values());
        values.push(value);
        self.storage = values.into();
        self.offset = 0;
        self.len = self.storage.len();
    }

    /// Returns a view shifted forward in time by `minutes` (which must be a
    /// multiple of the step). The *values* are shared unchanged; only the
    /// timestamps move. This is the primitive behind persistent forecasting:
    /// yesterday's load shifted forward by one day *is* the prediction for
    /// today.
    pub fn shifted(&self, minutes: i64) -> Result<TimeSeries, TimeSeriesError> {
        if minutes % self.step_min as i64 != 0 {
            return Err(TimeSeriesError::MisalignedStart {
                start: self.start + minutes,
                step_min: self.step_min,
            });
        }
        Ok(TimeSeries {
            start: self.start + minutes,
            step_min: self.step_min,
            storage: Arc::clone(&self.storage),
            offset: self.offset,
            len: self.len,
        })
    }

    /// Number of NaN (missing) values.
    pub fn missing_count(&self) -> usize {
        self.values().iter().filter(|v| v.is_nan()).count()
    }

    /// Verifies every value is finite.
    pub fn check_finite(&self) -> Result<(), TimeSeriesError> {
        match self.values().iter().position(|v| !v.is_finite()) {
            Some(index) => Err(TimeSeriesError::NonFiniteValue { index }),
            None => Ok(()),
        }
    }

    /// Mean of the values (NaN-free input assumed; NaNs propagate).
    pub fn mean(&self) -> f64 {
        crate::stats::mean(self.values())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(vals: &[f64]) -> TimeSeries {
        TimeSeries::new(Timestamp::from_days(10), 5, vals.to_vec()).unwrap()
    }

    #[test]
    fn construction_validates_grid() {
        assert!(matches!(
            TimeSeries::new(Timestamp::EPOCH, 0, vec![]),
            Err(TimeSeriesError::InvalidStep { .. })
        ));
        assert!(matches!(
            TimeSeries::new(Timestamp::EPOCH, 7, vec![]),
            Err(TimeSeriesError::InvalidStep { .. })
        ));
        assert!(matches!(
            TimeSeries::new(Timestamp::from_minutes(3), 5, vec![]),
            Err(TimeSeriesError::MisalignedStart { .. })
        ));
        assert!(TimeSeries::new(Timestamp::from_minutes(15), 5, vec![1.0]).is_ok());
    }

    #[test]
    fn indexing_round_trips() {
        let s = ts(&[1.0, 2.0, 3.0, 4.0]);
        for i in 0..s.len() {
            assert_eq!(s.index_of(s.timestamp_at(i)), Some(i));
        }
        assert_eq!(s.value_at(s.timestamp_at(2)), Some(3.0));
        assert_eq!(s.index_of(s.start() - 5), None);
        assert_eq!(s.index_of(s.end()), None);
        assert_eq!(s.index_of(s.start() + 1), None);
    }

    #[test]
    fn end_is_exclusive() {
        let s = ts(&[1.0, 2.0]);
        assert_eq!(s.end() - s.start(), 10);
    }

    #[test]
    fn slicing() {
        let s = ts(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let from = s.timestamp_at(1);
        let to = s.timestamp_at(4);
        let sub = s.slice(from, to).unwrap();
        assert_eq!(sub.values(), &[2.0, 3.0, 4.0]);
        assert_eq!(sub.start(), from);
        assert!(s.slice(from, s.end() + 5).is_err());
        assert!(s.slice(s.start() - 5, to).is_err());
    }

    #[test]
    fn slicing_is_zero_copy() {
        let s = ts(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let sub = s.slice(s.timestamp_at(1), s.timestamp_at(4)).unwrap();
        assert!(Arc::ptr_eq(s.storage(), sub.storage()));
        assert!(s.shares_storage(&sub));
        // A view of a view still shares the root storage.
        let subsub = sub.slice(sub.timestamp_at(1), sub.timestamp_at(2)).unwrap();
        assert!(Arc::ptr_eq(s.storage(), subsub.storage()));
        assert_eq!(subsub.values(), &[3.0]);
    }

    #[test]
    fn day_slicing_is_zero_copy() {
        let n = 2 * 288;
        let s =
            TimeSeries::from_fn(Timestamp::from_days(10), 5, n, |t| t.day_index() as f64).unwrap();
        let day = s.day(11).unwrap();
        assert!(
            Arc::ptr_eq(s.storage(), day.storage()),
            "day() must be a view into the parent buffer"
        );
        assert_eq!(day.len(), 288);
        // shifted() shares storage too: persistent forecasting moves
        // timestamps without touching the buffer.
        let tomorrow = day.shifted(MINUTES_PER_DAY).unwrap();
        assert!(s.shares_storage(&tomorrow));
    }

    #[test]
    fn mutation_detaches_shared_views() {
        let s = ts(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let mut sub = s.slice(s.timestamp_at(1), s.timestamp_at(4)).unwrap();
        sub.values_mut()[0] = 99.0;
        // The parent is untouched; the view copied out before writing.
        assert_eq!(s.values(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(sub.values(), &[99.0, 3.0, 4.0]);
        assert!(!s.shares_storage(&sub));
    }

    #[test]
    fn unique_series_mutates_in_place() {
        let mut s = ts(&[1.0, 2.0]);
        let before = Arc::as_ptr(s.storage());
        s.values_mut()[1] = 7.0;
        assert_eq!(Arc::as_ptr(s.storage()), before, "no spurious copy");
        assert_eq!(s.values(), &[1.0, 7.0]);
    }

    #[test]
    fn view_equality_ignores_sharing() {
        let s = ts(&[1.0, 2.0, 3.0, 4.0]);
        let view = s.slice(s.timestamp_at(1), s.timestamp_at(3)).unwrap();
        let owned = TimeSeries::new(s.timestamp_at(1), 5, vec![2.0, 3.0]).unwrap();
        assert_eq!(view, owned);
    }

    #[test]
    fn from_shared_validates_bounds() {
        let storage: Arc<[f64]> = vec![1.0, 2.0, 3.0].into();
        let v = TimeSeries::from_shared(Timestamp::from_days(1), 5, Arc::clone(&storage), 1, 2)
            .unwrap();
        assert_eq!(v.values(), &[2.0, 3.0]);
        assert!(Arc::ptr_eq(v.storage(), &storage));
        assert!(matches!(
            TimeSeries::from_shared(Timestamp::from_days(1), 5, Arc::clone(&storage), 2, 2),
            Err(TimeSeriesError::ViewOutOfBounds { .. })
        ));
    }

    #[test]
    fn day_slicing() {
        // Two full days at 5-minute resolution starting at day 10.
        let n = 2 * 288;
        let s =
            TimeSeries::from_fn(Timestamp::from_days(10), 5, n, |t| t.day_index() as f64).unwrap();
        assert_eq!(s.day_values(10).unwrap().len(), 288);
        assert!(s.day_values(10).unwrap().iter().all(|&v| v == 10.0));
        assert!(s.day_values(11).unwrap().iter().all(|&v| v == 11.0));
        assert!(s.day_values(12).is_none());
        assert_eq!(s.first_full_day(), Some(10));
        assert_eq!(s.last_full_day(), Some(11));
        assert_eq!(s.full_days().collect::<Vec<_>>(), vec![10, 11]);
    }

    #[test]
    fn partial_day_coverage() {
        // Starts mid-day: first full day is the next one.
        let start = Timestamp::from_days(10) + 720;
        let s = TimeSeries::from_fn(start, 5, 288 + 144, |_| 0.0).unwrap();
        assert_eq!(s.first_full_day(), Some(11));
        assert_eq!(s.last_full_day(), Some(11));
        assert!(s.day_values(10).is_none());
    }

    #[test]
    fn empty_series_days() {
        let s = TimeSeries::empty(Timestamp::EPOCH, 5).unwrap();
        assert_eq!(s.first_full_day(), None);
        assert_eq!(s.last_full_day(), None);
        assert_eq!(s.full_days().count(), 0);
    }

    #[test]
    fn append_contiguous() {
        let mut a = ts(&[1.0, 2.0]);
        let b = TimeSeries::new(a.end(), 5, vec![3.0]).unwrap();
        a.append(&b).unwrap();
        assert_eq!(a.values(), &[1.0, 2.0, 3.0]);

        let gap = TimeSeries::new(a.end() + 5, 5, vec![9.0]).unwrap();
        assert!(a.append(&gap).is_err());

        let mut empty = TimeSeries::empty(Timestamp::EPOCH, 5).unwrap();
        empty.append(&a).unwrap();
        assert_eq!(empty.start(), a.start());
        assert_eq!(empty.len(), 3);
    }

    #[test]
    fn append_and_push_preserve_shared_views() {
        let base = ts(&[1.0, 2.0, 3.0]);
        let view = base
            .slice(base.timestamp_at(0), base.timestamp_at(2))
            .unwrap();
        let mut grown = base.clone();
        grown.push(4.0);
        assert_eq!(grown.values(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(base.values(), &[1.0, 2.0, 3.0]);
        assert_eq!(view.values(), &[1.0, 2.0]);
    }

    #[test]
    fn shifted_moves_timestamps_not_values() {
        let s = ts(&[1.0, 2.0]);
        let t = s.shifted(MINUTES_PER_DAY).unwrap();
        assert_eq!(t.values(), s.values());
        assert_eq!(t.start(), s.start() + MINUTES_PER_DAY);
        assert!(s.shifted(3).is_err());
    }

    #[test]
    fn missing_and_finite_checks() {
        let s = ts(&[1.0, f64::NAN, 3.0]);
        assert_eq!(s.missing_count(), 2 - 1);
        assert!(matches!(
            s.check_finite(),
            Err(TimeSeriesError::NonFiniteValue { index: 1 })
        ));
        assert!(ts(&[1.0, 2.0]).check_finite().is_ok());
    }

    #[test]
    fn iter_pairs() {
        let s = ts(&[1.0, 2.0]);
        let pairs: Vec<_> = s.iter().collect();
        assert_eq!(pairs[0], (s.start(), 1.0));
        assert_eq!(pairs[1], (s.start() + 5, 2.0));
    }

    #[test]
    fn same_grid() {
        let a = ts(&[1.0]);
        let b = TimeSeries::new(a.start() + 25, 5, vec![2.0]).unwrap();
        let c = TimeSeries::new(a.start(), 15, vec![2.0]).unwrap();
        assert!(a.same_grid(&b));
        assert!(!a.same_grid(&c));
    }
}
