//! Minute-resolution timestamps.

use crate::calendar::{DayOfWeek, MINUTES_PER_DAY, MINUTES_PER_WEEK};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in time with minute resolution, stored as minutes since the Unix
/// epoch (1970-01-01 00:00 UTC).
///
/// All Seagull telemetry is gridded at five- or fifteen-minute resolution
/// (paper Sections 2.2 and A.1), so minutes are exact. Negative values are
/// permitted (times before the epoch) although they never occur in practice.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Timestamp(pub i64);

impl Timestamp {
    /// The Unix epoch: 1970-01-01 00:00, a Thursday.
    pub const EPOCH: Timestamp = Timestamp(0);

    /// Creates a timestamp from minutes since the epoch.
    #[inline]
    pub const fn from_minutes(minutes: i64) -> Self {
        Timestamp(minutes)
    }

    /// Creates a timestamp from whole days since the epoch.
    #[inline]
    pub const fn from_days(days: i64) -> Self {
        Timestamp(days * MINUTES_PER_DAY)
    }

    /// Minutes since the epoch.
    #[inline]
    pub const fn minutes(self) -> i64 {
        self.0
    }

    /// The day index (days since the epoch), floor semantics for negative
    /// timestamps.
    #[inline]
    pub const fn day_index(self) -> i64 {
        self.0.div_euclid(MINUTES_PER_DAY)
    }

    /// Minute of the day, in `0..1440`.
    #[inline]
    pub const fn minute_of_day(self) -> i64 {
        self.0.rem_euclid(MINUTES_PER_DAY)
    }

    /// Minute of the week, in `0..10080`, where minute 0 is Monday 00:00.
    #[inline]
    pub const fn minute_of_week(self) -> i64 {
        // Epoch day (1970-01-01) is a Thursday; shift so Monday begins a week.
        (self.0 - 4 * MINUTES_PER_DAY).rem_euclid(MINUTES_PER_WEEK)
    }

    /// Day of week for this timestamp.
    #[inline]
    pub fn day_of_week(self) -> DayOfWeek {
        DayOfWeek::from_day_index(self.day_index())
    }

    /// The midnight starting this timestamp's day.
    #[inline]
    pub const fn start_of_day(self) -> Timestamp {
        Timestamp(self.day_index() * MINUTES_PER_DAY)
    }

    /// Rounds down to a multiple of `step_min` minutes from the epoch.
    #[inline]
    pub const fn align_down(self, step_min: u32) -> Timestamp {
        let s = step_min as i64;
        Timestamp(self.0.div_euclid(s) * s)
    }

    /// Rounds up to a multiple of `step_min` minutes from the epoch.
    #[inline]
    pub const fn align_up(self, step_min: u32) -> Timestamp {
        let s = step_min as i64;
        Timestamp(self.0.div_euclid(s) * s + if self.0.rem_euclid(s) == 0 { 0 } else { s })
    }

    /// True if this timestamp lies on the `step_min` grid.
    #[inline]
    pub const fn is_aligned(self, step_min: u32) -> bool {
        self.0.rem_euclid(step_min as i64) == 0
    }
}

impl Add<i64> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn add(self, minutes: i64) -> Timestamp {
        Timestamp(self.0 + minutes)
    }
}

impl AddAssign<i64> for Timestamp {
    #[inline]
    fn add_assign(&mut self, minutes: i64) {
        self.0 += minutes;
    }
}

impl Sub<i64> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn sub(self, minutes: i64) -> Timestamp {
        Timestamp(self.0 - minutes)
    }
}

impl SubAssign<i64> for Timestamp {
    #[inline]
    fn sub_assign(&mut self, minutes: i64) {
        self.0 -= minutes;
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = i64;
    /// Difference in minutes.
    #[inline]
    fn sub(self, rhs: Timestamp) -> i64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let day = self.day_index();
        let mod_day = self.minute_of_day();
        write!(f, "d{}+{:02}:{:02}", day, mod_day / 60, mod_day % 60)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_thursday() {
        assert_eq!(Timestamp::EPOCH.day_of_week(), DayOfWeek::Thursday);
    }

    #[test]
    fn day_index_and_minute_of_day() {
        let t = Timestamp::from_minutes(3 * MINUTES_PER_DAY + 125);
        assert_eq!(t.day_index(), 3);
        assert_eq!(t.minute_of_day(), 125);
        assert_eq!(t.start_of_day(), Timestamp::from_days(3));
    }

    #[test]
    fn negative_timestamps_floor() {
        let t = Timestamp::from_minutes(-1);
        assert_eq!(t.day_index(), -1);
        assert_eq!(t.minute_of_day(), MINUTES_PER_DAY - 1);
    }

    #[test]
    fn minute_of_week_starts_monday() {
        // Day 4 after the epoch is Monday 1970-01-05.
        let monday = Timestamp::from_days(4);
        assert_eq!(monday.day_of_week(), DayOfWeek::Monday);
        assert_eq!(monday.minute_of_week(), 0);
        assert_eq!((monday + 61).minute_of_week(), 61);
        assert_eq!((monday - 1).minute_of_week(), MINUTES_PER_WEEK - 1);
    }

    #[test]
    fn alignment() {
        let t = Timestamp::from_minutes(17);
        assert_eq!(t.align_down(5).minutes(), 15);
        assert_eq!(t.align_up(5).minutes(), 20);
        assert!(Timestamp::from_minutes(20).is_aligned(5));
        assert!(!t.is_aligned(5));
        assert_eq!(Timestamp::from_minutes(20).align_up(5).minutes(), 20);
        assert_eq!(Timestamp::from_minutes(-17).align_down(5).minutes(), -20);
        assert_eq!(Timestamp::from_minutes(-17).align_up(5).minutes(), -15);
    }

    #[test]
    fn arithmetic() {
        let t = Timestamp::from_minutes(100);
        assert_eq!((t + 5).minutes(), 105);
        assert_eq!((t - 5).minutes(), 95);
        assert_eq!(t + 5 - t, 5);
        let mut u = t;
        u += 10;
        u -= 4;
        assert_eq!(u.minutes(), 106);
    }

    #[test]
    fn display_format() {
        let t = Timestamp::from_minutes(MINUTES_PER_DAY + 65);
        assert_eq!(t.to_string(), "d1+01:05");
    }
}
