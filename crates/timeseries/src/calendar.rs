//! Calendar constants and day-of-week math.
//!
//! Seagull schedules backups per *day* and recognizes *daily* and *weekly*
//! load patterns (paper Definitions 5 and 6), so whole-day and whole-week
//! arithmetic shows up throughout the system.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Minutes in an hour.
pub const MINUTES_PER_HOUR: i64 = 60;
/// Minutes in a day.
pub const MINUTES_PER_DAY: i64 = 24 * MINUTES_PER_HOUR;
/// Minutes in a week.
pub const MINUTES_PER_WEEK: i64 = 7 * MINUTES_PER_DAY;

/// Day of the week. The Unix epoch (1970-01-01) is a Thursday.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DayOfWeek {
    Monday,
    Tuesday,
    Wednesday,
    Thursday,
    Friday,
    Saturday,
    Sunday,
}

impl DayOfWeek {
    /// All days, Monday first.
    pub const ALL: [DayOfWeek; 7] = [
        DayOfWeek::Monday,
        DayOfWeek::Tuesday,
        DayOfWeek::Wednesday,
        DayOfWeek::Thursday,
        DayOfWeek::Friday,
        DayOfWeek::Saturday,
        DayOfWeek::Sunday,
    ];

    /// Day of week for a day index (days since the epoch).
    #[inline]
    pub fn from_day_index(day_index: i64) -> DayOfWeek {
        // Day 0 is Thursday => shift by 3 so that 0 maps to Monday-based 3.
        Self::ALL[(day_index + 3).rem_euclid(7) as usize]
    }

    /// Monday-based index in `0..7`.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// True for Saturday and Sunday.
    #[inline]
    pub fn is_weekend(self) -> bool {
        matches!(self, DayOfWeek::Saturday | DayOfWeek::Sunday)
    }
}

impl fmt::Display for DayOfWeek {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DayOfWeek::Monday => "Mon",
            DayOfWeek::Tuesday => "Tue",
            DayOfWeek::Wednesday => "Wed",
            DayOfWeek::Thursday => "Thu",
            DayOfWeek::Friday => "Fri",
            DayOfWeek::Saturday => "Sat",
            DayOfWeek::Sunday => "Sun",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_day_is_thursday() {
        assert_eq!(DayOfWeek::from_day_index(0), DayOfWeek::Thursday);
        assert_eq!(DayOfWeek::from_day_index(1), DayOfWeek::Friday);
        assert_eq!(DayOfWeek::from_day_index(4), DayOfWeek::Monday);
        assert_eq!(DayOfWeek::from_day_index(-1), DayOfWeek::Wednesday);
        assert_eq!(DayOfWeek::from_day_index(-4), DayOfWeek::Sunday);
    }

    #[test]
    fn weekly_periodicity() {
        for d in -20..20 {
            assert_eq!(
                DayOfWeek::from_day_index(d),
                DayOfWeek::from_day_index(d + 7)
            );
        }
    }

    #[test]
    fn weekend_flag() {
        assert!(DayOfWeek::Saturday.is_weekend());
        assert!(DayOfWeek::Sunday.is_weekend());
        assert!(!DayOfWeek::Monday.is_weekend());
        assert!(!DayOfWeek::Friday.is_weekend());
    }

    #[test]
    fn indices_monday_based() {
        assert_eq!(DayOfWeek::Monday.index(), 0);
        assert_eq!(DayOfWeek::Sunday.index(), 6);
        for (i, d) in DayOfWeek::ALL.iter().enumerate() {
            assert_eq!(d.index(), i);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(DayOfWeek::Wednesday.to_string(), "Wed");
    }
}
