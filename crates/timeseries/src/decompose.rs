//! Classical seasonal–trend decomposition.
//!
//! Used by the Feature Extraction module to quantify *how* seasonal a
//! server's load is (the paper separates servers with daily/weekly patterns
//! from pattern-free ones; seasonal strength is the continuous version of
//! that distinction, one of the "other features to improve accuracy" the
//! paper plans to add).
//!
//! The method is the classical additive decomposition: trend by centered
//! moving average over one period, seasonal component by per-phase means of
//! the detrended series, residual as what remains.

use crate::series::TimeSeries;
use serde::{Deserialize, Serialize};

/// An additive decomposition `value = trend + seasonal + residual`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Decomposition {
    /// Period in grid points.
    pub period: usize,
    /// Trend component (same length as the input; edges extended).
    pub trend: Vec<f64>,
    /// Seasonal component (repeats with `period`; zero-mean).
    pub seasonal: Vec<f64>,
    /// Residual.
    pub residual: Vec<f64>,
}

impl Decomposition {
    /// Seasonal strength in `[0, 1]`: `max(0, 1 - var(resid)/var(seasonal +
    /// resid))` (Hyndman's definition). Near 1 for strongly periodic load,
    /// near 0 for pattern-free load.
    pub fn seasonal_strength(&self) -> f64 {
        let var = |xs: &[f64]| {
            let m = crate::stats::mean(xs);
            xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len().max(1) as f64
        };
        let detrended: Vec<f64> = self
            .seasonal
            .iter()
            .zip(&self.residual)
            .map(|(s, r)| s + r)
            .collect();
        let denom = var(&detrended);
        if denom <= 1e-12 {
            return 0.0;
        }
        (1.0 - var(&self.residual) / denom).max(0.0)
    }

    /// Trend strength in `[0, 1]`, analogous to seasonal strength.
    pub fn trend_strength(&self) -> f64 {
        let var = |xs: &[f64]| {
            let m = crate::stats::mean(xs);
            xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len().max(1) as f64
        };
        let deseasonalized: Vec<f64> = self
            .trend
            .iter()
            .zip(&self.residual)
            .map(|(t, r)| t + r)
            .collect();
        let denom = var(&deseasonalized);
        if denom <= 1e-12 {
            return 0.0;
        }
        (1.0 - var(&self.residual) / denom).max(0.0)
    }
}

/// Decomposes a series with the given period (in grid points).
///
/// Returns `None` when the series is shorter than two periods, contains
/// NaNs, or `period < 2` — the decomposition would be meaningless.
pub fn decompose(series: &TimeSeries, period: usize) -> Option<Decomposition> {
    let n = series.len();
    if period < 2 || n < 2 * period || series.values().iter().any(|v| v.is_nan()) {
        return None;
    }
    let values = series.values();

    // Trend: centered moving average of one period (even periods use the
    // standard half-weight endpoints).
    let half = period / 2;
    let trend: Vec<f64> = (0..n)
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half).min(n - 1);
            // Edge windows shrink; interior windows are exactly one period.
            crate::stats::mean(&values[lo..=hi])
        })
        .collect();

    // Seasonal: per-phase mean of the detrended series, centered to zero.
    let mut phase_sum = vec![0.0f64; period];
    let mut phase_cnt = vec![0usize; period];
    for i in 0..n {
        let phase = i % period;
        phase_sum[phase] += values[i] - trend[i];
        phase_cnt[phase] += 1;
    }
    let mut phase_mean: Vec<f64> = phase_sum
        .iter()
        .zip(&phase_cnt)
        .map(|(s, c)| s / (*c).max(1) as f64)
        .collect();
    let grand = crate::stats::mean(&phase_mean);
    for p in &mut phase_mean {
        *p -= grand;
    }

    let seasonal: Vec<f64> = (0..n).map(|i| phase_mean[i % period]).collect();
    let residual: Vec<f64> = (0..n).map(|i| values[i] - trend[i] - seasonal[i]).collect();
    Some(Decomposition {
        period,
        trend,
        seasonal,
        residual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;

    fn series(n: usize, f: impl Fn(usize) -> f64) -> TimeSeries {
        TimeSeries::new(Timestamp::from_days(10), 5, (0..n).map(f).collect()).unwrap()
    }

    #[test]
    fn pure_sine_has_high_seasonal_strength() {
        let period = 48;
        let s = series(480, |i| {
            20.0 + 10.0 * (2.0 * std::f64::consts::PI * i as f64 / period as f64).sin()
        });
        let d = decompose(&s, period).unwrap();
        assert!(d.seasonal_strength() > 0.95, "{}", d.seasonal_strength());
        // Components sum back to the signal.
        for i in 0..s.len() {
            let sum = d.trend[i] + d.seasonal[i] + d.residual[i];
            assert!((sum - s.values()[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_series_has_no_seasonality() {
        let s = series(200, |_| 42.0);
        let d = decompose(&s, 20).unwrap();
        assert_eq!(d.seasonal_strength(), 0.0);
        assert!(d.seasonal.iter().all(|v| v.abs() < 1e-9));
    }

    #[test]
    fn noise_has_low_seasonal_strength() {
        // Deterministic pseudo-noise with no period-48 structure.
        let s = series(480, |i| {
            ((i as u64).wrapping_mul(0x9e3779b97f4a7c15) >> 40) as f64 / 1e5
        });
        let d = decompose(&s, 48).unwrap();
        assert!(d.seasonal_strength() < 0.4, "{}", d.seasonal_strength());
    }

    #[test]
    fn trend_strength_detects_slopes() {
        let s = series(300, |i| i as f64 * 0.1);
        let d = decompose(&s, 30).unwrap();
        assert!(d.trend_strength() > 0.95, "{}", d.trend_strength());
    }

    #[test]
    fn degenerate_inputs_rejected() {
        let s = series(30, |i| i as f64);
        assert!(decompose(&s, 1).is_none());
        assert!(decompose(&s, 20).is_none(), "needs two full periods");
        let mut nan = series(100, |i| i as f64);
        nan.values_mut()[5] = f64::NAN;
        assert!(decompose(&nan, 10).is_none());
    }

    #[test]
    fn seasonal_component_is_periodic() {
        let s = series(400, |i| (i % 40) as f64);
        let d = decompose(&s, 40).unwrap();
        for i in 0..s.len() - 40 {
            assert!((d.seasonal[i] - d.seasonal[i + 40]).abs() < 1e-12);
        }
    }
}
