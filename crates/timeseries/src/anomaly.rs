//! Load-anomaly detection: robust spike/level-shift detection on gridded
//! telemetry.
//!
//! The Data Validation module detects *data* anomalies; this detector flags
//! *load* anomalies — points far outside the series' own robust dispersion —
//! which the paper's incident pipeline surfaces as "unexpected change of
//! customer behavior" (the residual 2.1 % of mischosen windows in Fig. 13(a)
//! are attributed to exactly these).
//!
//! The detector is the classic rolling-median / MAD rule: a point is
//! anomalous when it deviates from the window median by more than
//! `threshold` robust standard deviations. Medians make it immune to the
//! spikes it is hunting.

use crate::series::TimeSeries;
use serde::{Deserialize, Serialize};

/// Detector parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnomalyConfig {
    /// Rolling window half-width in grid points (window = 2w+1 points).
    pub half_window: usize,
    /// Robust z-score threshold.
    pub threshold: f64,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        AnomalyConfig {
            half_window: 12, // ±1 hour at 5-minute granularity
            threshold: 6.0,
        }
    }
}

/// One detected anomaly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadAnomaly {
    /// Index into the series.
    pub index: usize,
    /// The offending value.
    pub value: f64,
    /// The local median it deviates from.
    pub local_median: f64,
    /// Robust z-score magnitude.
    pub score: f64,
}

/// Scans a series for anomalous points. NaN points are skipped (they are
/// data anomalies, handled by validation).
pub fn detect_anomalies(series: &TimeSeries, config: &AnomalyConfig) -> Vec<LoadAnomaly> {
    let values = series.values();
    let n = values.len();
    if n == 0 || config.half_window == 0 {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut window_buf: Vec<f64> = Vec::with_capacity(2 * config.half_window + 1);
    for i in 0..n {
        let v = values[i];
        if v.is_nan() {
            continue;
        }
        let lo = i.saturating_sub(config.half_window);
        let hi = (i + config.half_window).min(n - 1);
        window_buf.clear();
        window_buf.extend(values[lo..=hi].iter().copied().filter(|x| !x.is_nan()));
        if window_buf.len() < 3 {
            continue;
        }
        let median = median_of(&mut window_buf);
        // MAD with the Gaussian consistency constant 1.4826.
        let mut deviations: Vec<f64> = window_buf.iter().map(|x| (x - median).abs()).collect();
        let mad = median_of(&mut deviations).max(1e-6) * 1.4826;
        let score = (v - median).abs() / mad;
        if score > config.threshold {
            out.push(LoadAnomaly {
                index: i,
                value: v,
                local_median: median,
                score,
            });
        }
    }
    out
}

/// In-place median (reorders the buffer).
fn median_of(buf: &mut [f64]) -> f64 {
    let mid = buf.len() / 2;
    buf.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in buffer"));
    if buf.len() % 2 == 1 {
        buf[mid]
    } else {
        0.5 * (buf[mid - 1] + buf[mid])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;

    fn series(values: Vec<f64>) -> TimeSeries {
        TimeSeries::new(Timestamp::from_days(2), 5, values).unwrap()
    }

    #[test]
    fn flat_series_with_spike() {
        let mut values = vec![20.0; 200];
        values[100] = 95.0;
        let anomalies = detect_anomalies(&series(values), &AnomalyConfig::default());
        assert_eq!(anomalies.len(), 1);
        assert_eq!(anomalies[0].index, 100);
        assert!(anomalies[0].score > 6.0);
        assert!((anomalies[0].local_median - 20.0).abs() < 1.0);
    }

    #[test]
    fn smooth_wave_is_clean() {
        let values: Vec<f64> = (0..288)
            .map(|i| 30.0 + 20.0 * (2.0 * std::f64::consts::PI * i as f64 / 288.0).sin())
            .collect();
        let anomalies = detect_anomalies(&series(values), &AnomalyConfig::default());
        assert!(anomalies.is_empty(), "{anomalies:?}");
    }

    #[test]
    fn multiple_spikes_found() {
        let mut values = vec![10.0; 300];
        for &i in &[50usize, 150, 250] {
            values[i] = 80.0;
        }
        let anomalies = detect_anomalies(&series(values), &AnomalyConfig::default());
        let idxs: Vec<usize> = anomalies.iter().map(|a| a.index).collect();
        assert_eq!(idxs, vec![50, 150, 250]);
    }

    #[test]
    fn nan_points_skipped() {
        let mut values = vec![10.0; 100];
        values[50] = f64::NAN;
        values[70] = 90.0;
        let anomalies = detect_anomalies(&series(values), &AnomalyConfig::default());
        assert_eq!(anomalies.len(), 1);
        assert_eq!(anomalies[0].index, 70);
    }

    #[test]
    fn threshold_tunes_sensitivity() {
        let mut values = vec![10.0f64; 100];
        // Mild bump over a noisy-ish base.
        for (i, v) in values.iter_mut().enumerate() {
            *v += (i % 3) as f64;
        }
        values[50] = 25.0;
        let strict = AnomalyConfig {
            threshold: 20.0,
            ..AnomalyConfig::default()
        };
        let lax = AnomalyConfig {
            threshold: 3.0,
            ..AnomalyConfig::default()
        };
        assert!(detect_anomalies(&series(values.clone()), &strict).is_empty());
        assert!(!detect_anomalies(&series(values), &lax).is_empty());
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty = TimeSeries::empty(Timestamp::EPOCH, 5).unwrap();
        assert!(detect_anomalies(&empty, &AnomalyConfig::default()).is_empty());
        let tiny = series(vec![1.0, 2.0]);
        assert!(detect_anomalies(&tiny, &AnomalyConfig::default()).is_empty());
    }
}
