//! Property-based tests for the telemetry substrate: CSV codec, blob store,
//! and extraction invariants under randomized inputs.

use proptest::prelude::*;
use seagull_telemetry::blobstore::{BlobKey, BlobStore, MemoryBlobStore};
use seagull_telemetry::columnar::ColumnarBatch;
use seagull_telemetry::extract::{parse_record_rows, parse_region_week};
use seagull_telemetry::record::{LoadRecord, RecordBatch};
use seagull_telemetry::server::ServerId;

fn record_strategy() -> impl Strategy<Value = LoadRecord> {
    (0u64..50, 0i64..2000, 0.0f64..100.0, 0i64..10_000, 1i64..500).prop_map(
        |(server, slot, cpu, bstart, blen)| LoadRecord {
            server_id: ServerId(server),
            // Timestamps always on the 5-minute grid for codec tests.
            timestamp_min: slot * 5,
            // Two-decimal values survive the codec exactly.
            avg_cpu: (cpu * 100.0).round() / 100.0,
            default_backup_start: bstart,
            default_backup_end: bstart + blen,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSV encode/decode is the identity on grid-aligned, two-decimal rows.
    #[test]
    fn csv_round_trip(records in proptest::collection::vec(record_strategy(), 0..60)) {
        let batch = RecordBatch::new(records);
        let decoded = RecordBatch::from_csv(&batch.to_csv()).unwrap();
        prop_assert_eq!(decoded, batch);
    }

    /// Parsing reassembles exactly the set of (server, timestamp, value)
    /// triples that went in, regardless of row order.
    #[test]
    fn parse_preserves_points(mut records in proptest::collection::vec(record_strategy(), 1..60), seed in 0u64..1000) {
        // Deduplicate (server, ts) pairs — parse keeps the last write; make
        // inputs unique so set-equality is exact.
        records.sort_by_key(|r| (r.server_id.0, r.timestamp_min));
        records.dedup_by_key(|r| (r.server_id.0, r.timestamp_min));
        // Shuffle deterministically.
        let n = records.len();
        for i in (1..n).rev() {
            let j = ((seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(i as u64)) % (i as u64 + 1)) as usize;
            records.swap(i, j);
        }
        let servers = parse_record_rows(&RecordBatch::new(records.clone()), 5);
        let mut reassembled: Vec<(u64, i64, f64)> = Vec::new();
        for s in &servers {
            for (t, v) in s.series.iter() {
                if !v.is_nan() {
                    reassembled.push((s.id.0, t.minutes(), v));
                }
            }
        }
        let mut expected: Vec<(u64, i64, f64)> = records
            .iter()
            .map(|r| (r.server_id.0, r.timestamp_min, r.avg_cpu))
            .collect();
        expected.sort_by_key(|e| (e.0, e.1));
        reassembled.sort_by_key(|e| (e.0, e.1));
        prop_assert_eq!(reassembled.len(), expected.len());
        for (got, want) in reassembled.iter().zip(&expected) {
            prop_assert_eq!(got.0, want.0);
            prop_assert_eq!(got.1, want.1);
            prop_assert!((got.2 - want.2).abs() < 1e-9);
        }
    }

    /// The same record batch encoded as CSV and as columnar yields identical
    /// extracted series through the format-sniffing parse, and the columnar
    /// encoding itself is byte-stable (same input, same bytes).
    #[test]
    fn csv_columnar_extraction_parity(records in proptest::collection::vec(record_strategy(), 0..60)) {
        let batch = RecordBatch::new(records);
        let csv_blob = batch.to_csv();
        let columnar = ColumnarBatch::from_records(&batch, 5);
        let col_blob = columnar.encode();
        prop_assert_eq!(&col_blob, &ColumnarBatch::from_records(&batch, 5).encode());

        let from_csv = parse_region_week(&csv_blob, 5).unwrap();
        let from_col = parse_region_week(&col_blob, 5).unwrap();
        prop_assert_eq!(from_csv, from_col);

        // Decode is the inverse of encode on the block level too.
        let decoded = ColumnarBatch::decode(&col_blob).unwrap();
        prop_assert_eq!(decoded.blocks(), columnar.blocks());
    }

    /// Blob store: last write wins, reads return exactly what was written.
    #[test]
    fn blobstore_last_write_wins(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..200), 1..10),
        week in 0i64..100,
    ) {
        let store = MemoryBlobStore::new();
        let key = BlobKey::extracted("prop-region", week);
        for p in &payloads {
            store.put(&key, bytes::Bytes::from(p.clone())).unwrap();
        }
        let got = store.get(&key).unwrap();
        prop_assert_eq!(&got[..], &payloads.last().unwrap()[..]);
        prop_assert_eq!(store.size(&key).unwrap() as usize, payloads.last().unwrap().len());
    }
}
