//! Property-based tests for the `SGJL` append-only journal codec: arbitrary
//! record sequences round-trip, arbitrary truncation recovers exactly the
//! longest valid record prefix, and corruption anywhere in the blob never
//! panics and never yields a torn (partially decoded) record.

use proptest::prelude::*;
use seagull_telemetry::journal::{replay, Journal, HEADER_LEN};

fn records_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..200), 0..20)
}

/// Byte offsets at which each record's frame ends (cumulative), starting
/// after the header.
fn frame_ends(records: &[Vec<u8>]) -> Vec<usize> {
    let mut ends = Vec::with_capacity(records.len());
    let mut pos = HEADER_LEN;
    for r in records {
        pos += 4 + r.len() + 8;
        ends.push(pos);
    }
    ends
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Append-then-replay is the identity on any record sequence, including
    /// empty records and an empty journal.
    #[test]
    fn round_trip(records in records_strategy()) {
        let mut journal = Journal::new();
        for r in &records {
            journal.append(r);
        }
        let replayed = replay(journal.as_bytes()).unwrap();
        prop_assert_eq!(&replayed.records, &records);
        prop_assert!(!replayed.torn());
        prop_assert_eq!(replayed.journal.as_bytes(), journal.as_bytes());
    }

    /// Truncating the blob at ANY byte recovers exactly the records whose
    /// frames fit entirely before the cut — the longest valid prefix — and
    /// never errors or panics.
    #[test]
    fn truncation_recovers_longest_valid_prefix(
        records in records_strategy(),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut journal = Journal::new();
        for r in &records {
            journal.append(r);
        }
        let blob = journal.as_bytes();
        let cut = ((blob.len() as f64) * cut_frac) as usize;
        let replayed = replay(&blob[..cut]).unwrap();
        let ends = frame_ends(&records);
        let expect = ends.iter().filter(|&&e| e <= cut).count();
        prop_assert_eq!(replayed.records.len(), expect, "cut at {}", cut);
        prop_assert_eq!(&replayed.records[..], &records[..expect]);
        // Torn exactly when the cut strands bytes past the last whole frame
        // (a cut inside the header itself reads as an empty, clean journal).
        let keep = ends.get(expect.wrapping_sub(1)).copied().unwrap_or(HEADER_LEN);
        if cut >= HEADER_LEN {
            prop_assert_eq!(replayed.torn(), cut > keep);
        }
        // The replayed journal accepts further appends and round-trips.
        let mut healed = replayed.journal;
        healed.append(b"after-recovery");
        let again = replay(healed.as_bytes()).unwrap();
        prop_assert_eq!(again.records.len(), expect + 1);
    }

    /// Flipping one bit anywhere in the blob never panics, and every record
    /// that does replay is one of the originals, whole (checksummed frames
    /// cannot yield torn records) — except a flip inside a length prefix,
    /// which can only reframe the tail *after* the flip point.
    #[test]
    fn bit_flips_never_panic_or_tear(
        records in records_strategy(),
        flip_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut journal = Journal::new();
        for r in &records {
            journal.append(r);
        }
        let mut blob = journal.as_bytes().to_vec();
        if blob.is_empty() {
            return Ok(());
        }
        let idx = (((blob.len() - 1) as f64) * flip_frac) as usize;
        blob[idx] ^= 1 << bit;
        match replay(&blob) {
            Ok(replayed) => {
                let ends = frame_ends(&records);
                // Records framed entirely before the flipped byte are
                // untouched and must replay verbatim.
                let clean = ends.iter().filter(|&&e| e <= idx).count();
                prop_assert!(replayed.records.len() >= clean);
                prop_assert_eq!(&replayed.records[..clean], &records[..clean]);
            }
            // A flip inside the header surfaces as a typed error.
            Err(_) => prop_assert!(idx < HEADER_LEN),
        }
    }
}
