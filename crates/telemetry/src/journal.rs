//! The append-only, checksummed journal codec (`SGJL`).
//!
//! The durability layer needs a write-ahead record of every successful model
//! deploy so a restarted process can restore serving to last-known-good
//! (DESIGN.md §12). [`Journal`] frames opaque payloads the way
//! [`crate::columnar`] frames series data: a magic/version header followed by
//! length-prefixed records, each closed by a [`checksum64`] footer computed
//! over its own frame. The codec says nothing about how the image reaches
//! storage; the [`crate::blobstore::BlobStore`] trait has no append, so
//! callers pick a `put` discipline to match their crash-safety needs. A
//! single-record image written once (the fleet runner's completion markers)
//! is naturally safe. A growing log must NOT be rewritten in full on every
//! append: a torn rewrite truncates committed records, not just the one in
//! flight — the serving layer's deploy journal instead writes one
//! single-record segment blob per append, so a tear can only ever lose the
//! record being appended.
//!
//! [`replay`] is the recovery path: it walks frames from the front and keeps
//! the **longest valid prefix**. The first frame that is short, overruns the
//! blob, or fails its checksum ends the walk — everything from that byte on
//! is discarded as a torn tail, even if later bytes happen to look like valid
//! frames. A replayed record is therefore always a byte-exact payload that
//! was once appended; a torn record is never returned.
//!
//! ## Wire layout (version 1, all little-endian)
//!
//! ```text
//! [0..4)   magic  b"SGJL"
//! [4..6)   version u16 (= 1)
//! [6..8)   reserved u16 (= 0)
//! ...      records, each framed as:
//!            payload length u32
//!            payload bytes
//!            checksum u64 over [length u32 | payload]
//! ```
//!
//! [`checksum64`]: crate::columnar::checksum64

use crate::columnar::checksum64;
use bytes::Bytes;
use std::fmt;

/// Leading magic bytes of a journal blob.
pub const JOURNAL_MAGIC: [u8; 4] = *b"SGJL";
/// Current wire version.
pub const JOURNAL_VERSION: u16 = 1;

/// Fixed header length: magic, version, reserved.
pub const HEADER_LEN: usize = 8;
/// Frame overhead per record: length prefix plus checksum footer.
const FRAME_OVERHEAD: usize = 4 + 8;

fn header_bytes() -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[0..4].copy_from_slice(&JOURNAL_MAGIC);
    h[4..6].copy_from_slice(&JOURNAL_VERSION.to_le_bytes());
    // [6..8) reserved, zero.
    h
}

/// True if `blob` carries the journal magic (format sniffing).
pub fn is_journal(blob: &[u8]) -> bool {
    blob.len() >= JOURNAL_MAGIC.len() && blob[..JOURNAL_MAGIC.len()] == JOURNAL_MAGIC
}

/// A replay failure. Unlike a torn tail (which [`replay`] silently
/// truncates), these mean the blob was never a journal this build can read —
/// recovery must not guess at its contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// The magic bytes are present but wrong — this is not a journal.
    NotJournal,
    /// A version this build does not read.
    UnsupportedVersion {
        /// The version the header declared.
        version: u16,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::NotJournal => write!(f, "blob lacks the journal magic"),
            JournalError::UnsupportedVersion { version } => {
                write!(f, "unsupported journal version {version}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

/// An in-memory journal image: the header plus every appended record, framed
/// and checksummed, ready to be written as one blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Journal {
    bytes: Vec<u8>,
    records: usize,
}

impl Journal {
    /// An empty journal (header only).
    pub fn new() -> Journal {
        Journal {
            bytes: header_bytes().to_vec(),
            records: 0,
        }
    }

    /// Appends one record. The payload is opaque to the journal; callers
    /// bring their own record codec (e.g. the deploy record in
    /// `seagull-serve`). Payloads over `u32::MAX` bytes are unrepresentable
    /// in the frame and panic; deploy records are tens of bytes.
    pub fn append(&mut self, payload: &[u8]) {
        let len = u32::try_from(payload.len()).expect("journal payload over u32::MAX bytes");
        let frame_start = self.bytes.len();
        self.bytes.extend_from_slice(&len.to_le_bytes());
        self.bytes.extend_from_slice(payload);
        let checksum = checksum64(&self.bytes[frame_start..]);
        self.bytes.extend_from_slice(&checksum.to_le_bytes());
        self.records += 1;
    }

    /// Number of records appended (or retained by replay).
    pub fn record_count(&self) -> usize {
        self.records
    }

    /// Encoded size in bytes, header included.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// The encoded journal image.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The encoded journal image as an owned [`Bytes`] for a blob `put`.
    pub fn encoded(&self) -> Bytes {
        Bytes::from(self.bytes.clone())
    }
}

impl Default for Journal {
    fn default() -> Journal {
        Journal::new()
    }
}

/// The outcome of replaying a journal blob: the valid records in append
/// order, plus the repaired [`Journal`] to continue appending to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalReplay {
    /// Every fully-valid record payload, in append order.
    pub records: Vec<Vec<u8>>,
    /// The journal holding exactly the valid prefix; appending to it and
    /// rewriting the blob heals the torn tail.
    pub journal: Journal,
    /// Bytes discarded from the tail (0 when the blob was intact).
    pub truncated_bytes: usize,
}

impl JournalReplay {
    /// True when a torn tail was discarded.
    pub fn torn(&self) -> bool {
        self.truncated_bytes > 0
    }
}

/// Replays a journal blob, recovering the longest valid prefix.
///
/// Torn tails — a frame cut mid-write, a checksum that does not match, a
/// length prefix that overruns the blob — are truncated, not errors: the
/// records before the tear are returned and `truncated_bytes` reports what
/// was dropped. A header that is torn (shorter than 8 bytes but a byte-exact
/// prefix of a valid header) replays as an empty journal. Only a blob that
/// was never a readable journal — wrong magic, future version — is an error.
pub fn replay(blob: &[u8]) -> Result<JournalReplay, JournalError> {
    let header = header_bytes();
    if blob.len() < HEADER_LEN {
        // Possibly a header torn mid-write: valid only if it is a strict
        // prefix of the canonical header.
        if blob == &header[..blob.len()] {
            return Ok(JournalReplay {
                records: Vec::new(),
                journal: Journal::new(),
                truncated_bytes: blob.len(),
            });
        }
        return Err(JournalError::NotJournal);
    }
    if blob[..4] != JOURNAL_MAGIC {
        return Err(JournalError::NotJournal);
    }
    let version = u16::from_le_bytes([blob[4], blob[5]]);
    if version != JOURNAL_VERSION {
        return Err(JournalError::UnsupportedVersion { version });
    }

    let mut records = Vec::new();
    let mut journal = Journal::new();
    let mut offset = HEADER_LEN;
    loop {
        // Anything that stops the walk truncates here: `offset` is the end
        // of the last fully-valid frame.
        if offset == blob.len() {
            break; // clean end
        }
        if blob.len() - offset < 4 {
            break; // length prefix torn
        }
        let len = u32::from_le_bytes([
            blob[offset],
            blob[offset + 1],
            blob[offset + 2],
            blob[offset + 3],
        ]) as usize;
        let frame_len = match len.checked_add(FRAME_OVERHEAD) {
            Some(f) => f,
            None => break, // absurd length from a corrupt prefix
        };
        if blob.len() - offset < frame_len {
            break; // frame torn or length corrupt
        }
        let frame = &blob[offset..offset + frame_len];
        let stored = u64::from_le_bytes(frame[frame_len - 8..].try_into().expect("8-byte footer"));
        if checksum64(&frame[..frame_len - 8]) != stored {
            break; // payload or length corrupt
        }
        let payload = &frame[4..4 + len];
        journal.append(payload);
        records.push(payload.to_vec());
        offset += frame_len;
    }
    Ok(JournalReplay {
        records,
        journal,
        truncated_bytes: blob.len() - offset,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_journal_replays_empty() {
        let j = Journal::new();
        let r = replay(j.as_bytes()).unwrap();
        assert!(r.records.is_empty());
        assert!(!r.torn());
        assert_eq!(r.journal, j);
    }

    #[test]
    fn round_trip_preserves_records_in_order() {
        let mut j = Journal::new();
        let payloads: Vec<Vec<u8>> = vec![b"first".to_vec(), vec![], vec![0xFF; 300]];
        for p in &payloads {
            j.append(p);
        }
        assert_eq!(j.record_count(), 3);
        let r = replay(j.as_bytes()).unwrap();
        assert_eq!(r.records, payloads);
        assert!(!r.torn());
        assert_eq!(r.journal.as_bytes(), j.as_bytes());
    }

    #[test]
    fn torn_tail_truncates_to_last_valid_record() {
        let mut j = Journal::new();
        j.append(b"keep me");
        let keep_len = j.byte_len();
        j.append(b"lose me");
        for cut in keep_len..j.byte_len() {
            let r = replay(&j.as_bytes()[..cut]).unwrap();
            assert_eq!(r.records, vec![b"keep me".to_vec()], "cut at {cut}");
            assert_eq!(r.torn(), cut > keep_len, "cut at {cut}");
            assert_eq!(r.journal.byte_len(), keep_len);
            assert_eq!(r.truncated_bytes, cut - keep_len);
        }
    }

    #[test]
    fn corrupt_record_truncates_from_that_record_on() {
        let mut j = Journal::new();
        j.append(b"alpha");
        let first_end = j.byte_len();
        j.append(b"beta");
        j.append(b"gamma");
        let mut blob = j.as_bytes().to_vec();
        // Flip one payload bit inside "beta".
        blob[first_end + 5] ^= 0x01;
        let r = replay(&blob).unwrap();
        assert_eq!(r.records, vec![b"alpha".to_vec()]);
        assert!(r.torn());
    }

    #[test]
    fn corrupt_length_prefix_never_panics_or_over_reads() {
        let mut j = Journal::new();
        j.append(b"alpha");
        let first_end = j.byte_len();
        j.append(b"beta");
        let mut blob = j.as_bytes().to_vec();
        // Blow up the second record's declared length.
        blob[first_end..first_end + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let r = replay(&blob).unwrap();
        assert_eq!(r.records, vec![b"alpha".to_vec()]);
    }

    #[test]
    fn torn_header_replays_as_empty_journal() {
        let j = Journal::new();
        for cut in 0..HEADER_LEN {
            let r = replay(&j.as_bytes()[..cut]).unwrap();
            assert!(r.records.is_empty(), "cut at {cut}");
            assert_eq!(r.truncated_bytes, cut);
        }
    }

    #[test]
    fn wrong_magic_and_version_are_errors() {
        assert_eq!(replay(b"SGCBxxxx"), Err(JournalError::NotJournal));
        let mut h = header_bytes();
        h[4..6].copy_from_slice(&9u16.to_le_bytes());
        assert_eq!(
            replay(&h),
            Err(JournalError::UnsupportedVersion { version: 9 })
        );
    }

    #[test]
    fn replayed_journal_accepts_further_appends() {
        let mut j = Journal::new();
        j.append(b"one");
        let mut blob = j.as_bytes().to_vec();
        blob.extend_from_slice(b"torn tai"); // partial next frame
        let mut r = replay(&blob).unwrap();
        assert!(r.torn());
        r.journal.append(b"two");
        let again = replay(r.journal.as_bytes()).unwrap();
        assert_eq!(again.records, vec![b"one".to_vec(), b"two".to_vec()]);
        assert!(!again.torn());
    }
}
