//! Seeded fleet generation.
//!
//! The paper's input is "a random sample of several tens of thousands of
//! servers from four regions during one month in 2019" (Section 3.2). This
//! module regenerates such samples synthetically: a [`FleetSpec`] fixes the
//! population mix (defaults match the paper's measured Figure 3 exactly), the
//! per-region server counts, and the observation window; [`FleetGenerator`]
//! deterministically expands it into per-server metadata and gridded
//! telemetry.

use crate::server::{BackupConfig, GeneratedClass, ServerId, ServerMeta};
use crate::shape::{LoadShape, ShapeParams};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use seagull_timeseries::{TimeSeries, Timestamp};
use serde::{Deserialize, Serialize};

/// One region and its server count. Regions differ in size by orders of
/// magnitude in production ("the size of input files ranges from hundreds of
/// kilobytes to a few gigabytes").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionSpec {
    /// Region name (blob keys and pipeline runs are per region).
    pub name: String,
    /// Number of servers generated in the region.
    pub servers: usize,
}

/// Population mix of generated server classes. Fractions must sum to 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassMix {
    /// Servers that exist fewer than three weeks (paper: 42.1 %).
    pub short_lived: f64,
    /// Long-lived with near-constant load (paper: 53.5 %).
    pub stable: f64,
    /// Long-lived with a daily pattern (paper: ~0.2 %).
    pub daily: f64,
    /// Long-lived with a weekly pattern (paper: ~0.1 %).
    pub weekly: f64,
    /// Long-lived with no recognizable pattern (paper: 4.2 %).
    pub unstable: f64,
}

impl Default for ClassMix {
    /// The Figure 3 distribution.
    fn default() -> Self {
        ClassMix {
            short_lived: 0.421,
            stable: 0.535,
            daily: 0.002,
            weekly: 0.001,
            unstable: 0.041,
        }
    }
}

impl ClassMix {
    /// Checks the fractions are nonnegative and sum to ~1.
    pub fn validate(&self) -> Result<(), String> {
        let parts = [
            self.short_lived,
            self.stable,
            self.daily,
            self.weekly,
            self.unstable,
        ];
        if parts.iter().any(|p| *p < 0.0) {
            return Err("class fractions must be nonnegative".into());
        }
        let sum: f64 = parts.iter().sum();
        if (sum - 1.0).abs() > 1e-6 {
            return Err(format!("class fractions sum to {sum}, expected 1"));
        }
        Ok(())
    }
}

/// Full specification of a synthetic fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSpec {
    /// Master seed; everything downstream derives from it.
    pub seed: u64,
    /// Regions and their sizes.
    pub regions: Vec<RegionSpec>,
    /// First day (index) of the observation window. Long-lived servers are
    /// created at least four weeks before this day so that the three-week
    /// lifespan rule (Definition 3) can fire within the window.
    pub start_day: i64,
    /// Telemetry grid in minutes (5 for PostgreSQL/MySQL, 15 for SQL DBs).
    pub grid_min: u32,
    /// Population mix.
    pub mix: ClassMix,
    /// Fraction of servers whose weekly peak reaches CPU capacity
    /// (paper Fig. 13(b): 3.7 %).
    pub capacity_reaching: f64,
}

impl FleetSpec {
    /// A small single-region fleet for examples and tests.
    pub fn small_region(seed: u64) -> FleetSpec {
        FleetSpec {
            seed,
            regions: vec![RegionSpec {
                name: "region-a".into(),
                servers: 80,
            }],
            start_day: 18_000, // some day in 2019
            grid_min: 5,
            mix: ClassMix::default(),
            capacity_reaching: 0.037,
        }
    }

    /// The paper's four-region setup, scaled by `scale` servers per region
    /// unit (sizes vary by more than an order of magnitude, mirroring the
    /// "hundreds of kilobytes to a few gigabytes" spread).
    pub fn four_regions(seed: u64, scale: usize) -> FleetSpec {
        FleetSpec {
            seed,
            regions: vec![
                RegionSpec {
                    name: "region-xs".into(),
                    servers: scale,
                },
                RegionSpec {
                    name: "region-s".into(),
                    servers: scale * 4,
                },
                RegionSpec {
                    name: "region-m".into(),
                    servers: scale * 12,
                },
                RegionSpec {
                    name: "region-l".into(),
                    servers: scale * 40,
                },
            ],
            start_day: 18_000,
            grid_min: 5,
            mix: ClassMix::default(),
            capacity_reaching: 0.037,
        }
    }

    /// Total servers across all regions.
    pub fn total_servers(&self) -> usize {
        self.regions.iter().map(|r| r.servers).sum()
    }
}

/// One server's generated metadata and telemetry over the window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerTelemetry {
    /// Static metadata (identity, lifecycle, backup configuration).
    pub meta: ServerMeta,
    /// Gridded load covering the intersection of the server's lifetime with
    /// the observation window.
    pub series: TimeSeries,
    /// The ground-truth shape (kept so experiments can regenerate arbitrary
    /// extra days, e.g. "true" load on the backup day).
    pub shape: LoadShape,
}

impl ServerTelemetry {
    /// Regenerates the true load for an arbitrary day (even outside the
    /// stored series), if the server is alive on it.
    pub fn true_day(&self, day_index: i64) -> Option<TimeSeries> {
        if !self.meta.alive_on(day_index) {
            return None;
        }
        let n = (seagull_timeseries::MINUTES_PER_DAY / self.series.step_min() as i64) as usize;
        Some(
            TimeSeries::from_fn(
                Timestamp::from_days(day_index),
                self.series.step_min(),
                n,
                |t| self.shape.value(t),
            )
            .expect("day start is grid-aligned"),
        )
    }
}

/// Deterministic fleet expansion.
#[derive(Debug, Clone)]
pub struct FleetGenerator {
    spec: FleetSpec,
}

impl FleetGenerator {
    /// Creates a generator; panics if the class mix is invalid.
    pub fn new(spec: FleetSpec) -> FleetGenerator {
        spec.mix.validate().expect("invalid class mix");
        FleetGenerator { spec }
    }

    /// The spec.
    pub fn spec(&self) -> &FleetSpec {
        &self.spec
    }

    /// Generates every region over a window of `weeks` weeks.
    pub fn generate_weeks(&self, weeks: usize) -> Vec<ServerTelemetry> {
        (0..self.spec.regions.len())
            .flat_map(|r| self.generate_region(r, weeks))
            .collect()
    }

    /// Generates one region (by index into `spec.regions`) over `weeks` weeks.
    pub fn generate_region(&self, region_idx: usize, weeks: usize) -> Vec<ServerTelemetry> {
        let region = &self.spec.regions[region_idx];
        let window_start = self.spec.start_day;
        let window_end = window_start + (weeks * 7) as i64;
        // Global index offset so server ids are fleet-unique.
        let offset: usize = self.spec.regions[..region_idx]
            .iter()
            .map(|r| r.servers)
            .sum();
        (0..region.servers)
            .map(|i| self.generate_server(offset + i, &region.name, window_start, window_end))
            .collect()
    }

    fn generate_server(
        &self,
        index: usize,
        region: &str,
        window_start: i64,
        window_end: i64,
    ) -> ServerTelemetry {
        let mut rng = ChaCha8Rng::seed_from_u64(
            self.spec.seed ^ (index as u64).wrapping_mul(0x9e3779b97f4a7c15),
        );
        let mix = &self.spec.mix;

        // Draw lifecycle and class.
        let roll: f64 = rng.gen();
        let (short_lived, class) = if roll < mix.short_lived {
            // Short-lived servers reuse the long-lived conditional mix for
            // their shape; the lifecycle is what makes them short-lived.
            let long_total = mix.stable + mix.daily + mix.weekly + mix.unstable;
            let r2: f64 = rng.gen::<f64>() * long_total;
            let c = if r2 < mix.stable {
                GeneratedClass::Stable
            } else if r2 < mix.stable + mix.daily {
                GeneratedClass::DailyPattern
            } else if r2 < mix.stable + mix.daily + mix.weekly {
                GeneratedClass::WeeklyPattern
            } else {
                GeneratedClass::Unstable
            };
            (true, c)
        } else if roll < mix.short_lived + mix.stable {
            (false, GeneratedClass::Stable)
        } else if roll < mix.short_lived + mix.stable + mix.daily {
            (false, GeneratedClass::DailyPattern)
        } else if roll < mix.short_lived + mix.stable + mix.daily + mix.weekly {
            (false, GeneratedClass::WeeklyPattern)
        } else {
            (false, GeneratedClass::Unstable)
        };

        let (created_day, deleted_day) = if short_lived {
            // Created inside (or shortly before) the window, lives 1..=20 days.
            let created = window_start - 3 + rng.gen_range(0..(window_end - window_start + 3));
            let lifespan = rng.gen_range(1..=20);
            (created, Some(created + lifespan))
        } else {
            // Created 4..=30 weeks before the window; never deleted.
            (window_start - rng.gen_range(28..=210), None)
        };

        // Peak-load target (Fig. 13(b)): a small fraction reaches capacity.
        let reaches_capacity = rng.gen::<f64>() < self.spec.capacity_reaching;
        let target_peak: f64 = if reaches_capacity {
            rng.gen_range(98.0..=100.0)
        } else {
            rng.gen_range(15.0..90.0)
        };
        let noise_sigma = rng.gen_range(0.6..1.6);
        let params = match class {
            GeneratedClass::Stable => ShapeParams {
                base_load: (target_peak - 3.5 * noise_sigma).max(1.0),
                amplitude: 0.0,
                noise_sigma,
                weekend_scale: 1.0,
                phase_min: 0,
                capacity: 100.0,
            },
            GeneratedClass::DailyPattern | GeneratedClass::WeeklyPattern => {
                let base = rng.gen_range(3.0..12.0);
                ShapeParams {
                    base_load: base,
                    amplitude: (target_peak - base).max(15.0),
                    noise_sigma,
                    weekend_scale: if class == GeneratedClass::WeeklyPattern {
                        rng.gen_range(0.05..0.3)
                    } else {
                        1.0
                    },
                    phase_min: rng.gen_range(0..24) * 30,
                    capacity: 100.0,
                }
            }
            GeneratedClass::Unstable => {
                let base = rng.gen_range(3.0..12.0);
                ShapeParams {
                    base_load: base,
                    amplitude: (target_peak - base).max(15.0),
                    noise_sigma,
                    weekend_scale: 1.0,
                    phase_min: 0,
                    capacity: 100.0,
                }
            }
        };

        let grid = self.spec.grid_min;
        let backup = BackupConfig {
            default_start_minute: rng.gen_range(0..(1440 / grid)) * grid,
            duration_min: rng.gen_range(6..=36) * grid, // 30 min .. 3 h on a 5-min grid
            backup_weekday: rng.gen_range(0..7),
        };

        let meta = ServerMeta {
            id: ServerId(index as u64),
            region: region.to_string(),
            created_day,
            deleted_day,
            class,
            backup,
        };
        let shape = LoadShape::new(class, self.spec.seed ^ hash_index(index), params);

        // Telemetry covers lifetime ∩ window.
        let from = created_day.max(window_start);
        let to = deleted_day.unwrap_or(window_end).min(window_end);
        let n_days = (to - from).max(0) as usize;
        let points = n_days * (seagull_timeseries::MINUTES_PER_DAY / grid as i64) as usize;
        let series =
            TimeSeries::from_fn(Timestamp::from_days(from), grid, points, |t| shape.value(t))
                .expect("grid-aligned day start");

        ServerTelemetry {
            meta,
            series,
            shape,
        }
    }
}

fn hash_index(index: usize) -> u64 {
    let mut z = (index as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mix_is_figure3() {
        let mix = ClassMix::default();
        mix.validate().unwrap();
        assert!((mix.short_lived - 0.421).abs() < 1e-9);
        assert!((mix.stable - 0.535).abs() < 1e-9);
    }

    #[test]
    fn invalid_mix_rejected() {
        let mut mix = ClassMix::default();
        mix.stable += 0.5;
        assert!(mix.validate().is_err());
        mix.stable = -1.0;
        assert!(mix.validate().is_err());
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = FleetSpec::small_region(123);
        let a = FleetGenerator::new(spec.clone()).generate_weeks(1);
        let b = FleetGenerator::new(spec).generate_weeks(1);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.meta, y.meta);
            assert_eq!(x.series, y.series);
        }
    }

    #[test]
    fn ids_are_unique_across_regions() {
        let spec = FleetSpec::four_regions(7, 5);
        let fleet = FleetGenerator::new(spec).generate_weeks(1);
        let mut ids: Vec<u64> = fleet.iter().map(|s| s.meta.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), fleet.len());
    }

    #[test]
    fn class_mix_roughly_respected() {
        let mut spec = FleetSpec::small_region(9);
        spec.regions[0].servers = 4000;
        let fleet = FleetGenerator::new(spec.clone()).generate_weeks(4);
        let end = spec.start_day + 28;
        let short =
            fleet.iter().filter(|s| !s.meta.is_long_lived(end)).count() as f64 / fleet.len() as f64;
        assert!((short - 0.421).abs() < 0.04, "short-lived fraction {short}");
        let stable = fleet
            .iter()
            .filter(|s| s.meta.is_long_lived(end) && s.meta.class == GeneratedClass::Stable)
            .count() as f64
            / fleet.len() as f64;
        assert!((stable - 0.535).abs() < 0.04, "stable fraction {stable}");
    }

    #[test]
    fn long_lived_cover_full_window() {
        let spec = FleetSpec::small_region(5);
        let start = spec.start_day;
        let fleet = FleetGenerator::new(spec).generate_weeks(2);
        for s in &fleet {
            if s.meta.deleted_day.is_none() {
                assert_eq!(s.series.start(), Timestamp::from_days(start));
                assert_eq!(s.series.len(), 14 * 288);
            } else {
                assert!(s.series.len() <= 14 * 288);
            }
        }
    }

    #[test]
    fn short_lived_under_three_weeks() {
        let mut spec = FleetSpec::small_region(11);
        spec.regions[0].servers = 1000;
        let fleet = FleetGenerator::new(spec).generate_weeks(4);
        for s in &fleet {
            if let Some(del) = s.meta.deleted_day {
                assert!(del - s.meta.created_day <= 21);
            }
        }
    }

    #[test]
    fn true_day_matches_series() {
        let spec = FleetSpec::small_region(3);
        let start = spec.start_day;
        let fleet = FleetGenerator::new(spec).generate_weeks(1);
        let long = fleet.iter().find(|s| s.meta.deleted_day.is_none()).unwrap();
        let day = long.true_day(start).unwrap();
        assert_eq!(day.values(), long.series.day_values(start).unwrap());
        assert!(long.true_day(start - 1000).is_none());
    }

    #[test]
    fn capacity_reaching_fraction() {
        let mut spec = FleetSpec::small_region(17);
        spec.regions[0].servers = 3000;
        let fleet = FleetGenerator::new(spec).generate_weeks(1);
        let reaching = fleet
            .iter()
            .filter(|s| !s.series.is_empty())
            .filter(|s| seagull_timeseries::max(s.series.values()) >= 97.0)
            .count() as f64
            / fleet.len() as f64;
        // Expect ~3.7 % (stable near-capacity servers and bursty unstable
        // ones both contribute; tolerance is loose).
        assert!(reaching > 0.01 && reaching < 0.12, "reaching {reaching}");
    }
}
