//! Per-class load-shape models.
//!
//! Each simulated server owns a [`LoadShape`]: a *pure function* from
//! timestamp to average-customer-CPU-percentage. Purity (the value depends
//! only on the server seed and the timestamp) makes generation deterministic
//! and order-independent, so any slice of any server's telemetry can be
//! regenerated bit-identically by every experiment.
//!
//! The four archetypes mirror the paper's Section 3.2 classification:
//!
//! * **Stable** (Fig. 4) — near-constant load; the weekly average predicts it.
//! * **Daily pattern** (Fig. 5) — "such a precise daily pattern could be the
//!   result of an automated recurring workload": a diurnal curve repeated
//!   identically every day, with amplitude far exceeding the acceptable error
//!   bound so the server is *not* stable.
//! * **Weekly pattern** (Fig. 6) — weekday/weekend structure: previous
//!   equivalent day predicts it, previous day fails across the
//!   weekday/weekend boundary.
//! * **Unstable** (Fig. 7) — piecewise regime switches and bursts that follow
//!   neither pattern.

use crate::server::GeneratedClass;
use seagull_timeseries::{Timestamp, MINUTES_PER_DAY};
use serde::{Deserialize, Serialize};

/// Parameters of a server's load shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShapeParams {
    /// Baseline load level (CPU %).
    pub base_load: f64,
    /// Peak-to-baseline amplitude of the diurnal component (CPU %).
    pub amplitude: f64,
    /// Standard deviation of the per-sample Gaussian noise (CPU %).
    pub noise_sigma: f64,
    /// Multiplier applied to the diurnal component on weekends
    /// (`WeeklyPattern` only; 1.0 elsewhere).
    pub weekend_scale: f64,
    /// Phase shift of the diurnal curve in minutes (e.g. regional timezones).
    pub phase_min: i64,
    /// Hard capacity ceiling (CPU %); values clamp to `[0, capacity]`.
    pub capacity: f64,
}

impl Default for ShapeParams {
    fn default() -> Self {
        ShapeParams {
            base_load: 20.0,
            amplitude: 40.0,
            noise_sigma: 1.0,
            weekend_scale: 0.2,
            phase_min: 0,
            capacity: 100.0,
        }
    }
}

/// A deterministic load generator for one server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadShape {
    kind: GeneratedClass,
    seed: u64,
    params: ShapeParams,
}

impl LoadShape {
    /// Creates a shape of the given archetype.
    pub fn new(kind: GeneratedClass, seed: u64, params: ShapeParams) -> LoadShape {
        LoadShape { kind, seed, params }
    }

    /// The archetype.
    pub fn kind(&self) -> GeneratedClass {
        self.kind
    }

    /// The parameters.
    pub fn params(&self) -> &ShapeParams {
        &self.params
    }

    /// The load value at a timestamp, in `[0, capacity]`.
    pub fn value(&self, at: Timestamp) -> f64 {
        let p = &self.params;
        let noise = gaussian(self.seed ^ 0x6e6f_6973, at.minutes() as u64) * p.noise_sigma;
        let raw = match self.kind {
            GeneratedClass::Stable => p.base_load + noise,
            GeneratedClass::DailyPattern => {
                p.base_load + p.amplitude * diurnal(at, p.phase_min) + noise
            }
            GeneratedClass::WeeklyPattern => {
                let scale = if at.day_of_week().is_weekend() {
                    p.weekend_scale
                } else {
                    1.0
                };
                p.base_load + p.amplitude * scale * diurnal(at, p.phase_min) + noise
            }
            GeneratedClass::Unstable => self.unstable_value(at) + noise,
        };
        raw.clamp(0.0, p.capacity)
    }

    /// Unstable servers hold a random level for a random multi-hour regime,
    /// then jump; occasional bursts ride on top. Both the regime boundaries
    /// and the levels are pure functions of (seed, block index), so the shape
    /// conforms to neither a daily nor a weekly pattern.
    fn unstable_value(&self, at: Timestamp) -> f64 {
        let p = &self.params;
        // Regime blocks: fixed 6-hour micro-blocks grouped into regimes of
        // roughly 6-42 hours, decided by per-block hashes. Long enough that
        // adjacent days *sometimes* resemble each other (a minority of these
        // servers is borderline predictable, as in the paper), short enough
        // that no daily or weekly pattern ever holds across a whole window.
        let micro = at.minutes().div_euclid(360) as u64;
        // Walk back to the start of the current regime (at most 6 blocks).
        let mut start = micro;
        for _ in 0..6 {
            if start == 0 {
                break;
            }
            // A block begins a new regime with probability ~0.3.
            if uniform(self.seed ^ 0x7265_6769, start) < 0.3 {
                break;
            }
            start -= 1;
        }
        let level = p.base_load + uniform(self.seed ^ 0x6c65_766c, start) * p.amplitude;
        // Bursts: ~4 % of hour slots spike towards capacity.
        let slot = at.minutes().div_euclid(60) as u64;
        let burst = if uniform(self.seed ^ 0x6275_7273, slot) < 0.04 {
            0.6 * (p.capacity - level).max(0.0)
        } else {
            0.0
        };
        level + burst
    }
}

/// Smooth diurnal basis in `[0, 1]`: zero overnight, a raised-sine hump over
/// the 08:00–20:00 business window (peak at 14:00), shifted by `phase_min`.
fn diurnal(at: Timestamp, phase_min: i64) -> f64 {
    let m = (at.minute_of_day() - phase_min).rem_euclid(MINUTES_PER_DAY) as f64;
    let start = 8.0 * 60.0;
    let span = 12.0 * 60.0;
    if m < start || m > start + span {
        return 0.0;
    }
    ((m - start) / span * std::f64::consts::PI).sin()
}

/// SplitMix64 hash of two words: the pure-function randomness source.
fn hash64(a: u64, b: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(b)
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform in `[0, 1)` from a (seed, index) pair.
fn uniform(seed: u64, index: u64) -> f64 {
    (hash64(seed, index) >> 11) as f64 / (1u64 << 53) as f64
}

/// Standard Gaussian via Box–Muller on two independent uniforms.
fn gaussian(seed: u64, index: u64) -> f64 {
    let u1 = uniform(seed, index).max(1e-12);
    let u2 = uniform(seed ^ 0x5555_5555_5555_5555, index);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use seagull_timeseries::TimeSeries;

    fn shape(kind: GeneratedClass) -> LoadShape {
        LoadShape::new(kind, 7, ShapeParams::default())
    }

    fn gen_days(s: &LoadShape, from_day: i64, days: usize) -> TimeSeries {
        TimeSeries::from_fn(Timestamp::from_days(from_day), 5, days * 288, |t| {
            s.value(t)
        })
        .unwrap()
    }

    #[test]
    fn values_deterministic_and_bounded() {
        let s = shape(GeneratedClass::Unstable);
        let t = Timestamp::from_minutes(123_456_780);
        assert_eq!(s.value(t), s.value(t));
        for i in 0..2000 {
            let v = s.value(Timestamp::from_minutes(i * 5));
            assert!((0.0..=100.0).contains(&v), "value {v} out of range");
        }
    }

    #[test]
    fn stable_stays_near_base() {
        let s = shape(GeneratedClass::Stable);
        let ts = gen_days(&s, 100, 7);
        let mean = ts.mean();
        assert!((mean - 20.0).abs() < 1.0, "mean {mean}");
        // Nearly all points within a few sigma of base.
        let frac_close = ts
            .values()
            .iter()
            .filter(|&&v| (v - 20.0).abs() < 4.0)
            .count() as f64
            / ts.len() as f64;
        assert!(frac_close > 0.98);
    }

    #[test]
    fn daily_pattern_repeats_each_day() {
        let s = shape(GeneratedClass::DailyPattern);
        let ts = gen_days(&s, 100, 2);
        let d0 = ts.day_values(100).unwrap();
        let d1 = ts.day_values(101).unwrap();
        // The deterministic component repeats; only noise differs.
        for (a, b) in d0.iter().zip(d1) {
            assert!((a - b).abs() < 8.0, "daily repeat violated: {a} vs {b}");
        }
        // And it has real amplitude: the peak is far above the base.
        let max = seagull_timeseries::max(d0);
        assert!(max > 50.0, "max {max}");
    }

    #[test]
    fn weekly_pattern_weekend_differs() {
        let s = shape(GeneratedClass::WeeklyPattern);
        // Day 104 is a Monday (epoch day 0 = Thursday; 104 % 7 == 6 -> Wed?).
        // Compute explicitly instead.
        let mut weekday_peak = 0.0f64;
        let mut weekend_peak = 0.0f64;
        for d in 100..114 {
            let ts = gen_days(&s, d, 1);
            let peak = seagull_timeseries::max(ts.values());
            if Timestamp::from_days(d).day_of_week().is_weekend() {
                weekend_peak = weekend_peak.max(peak);
            } else {
                weekday_peak = weekday_peak.max(peak);
            }
        }
        assert!(
            weekday_peak > weekend_peak + 20.0,
            "weekday {weekday_peak} vs weekend {weekend_peak}"
        );
    }

    #[test]
    fn weekly_pattern_repeats_across_weeks() {
        let s = shape(GeneratedClass::WeeklyPattern);
        let a = gen_days(&s, 100, 1);
        let b = gen_days(&s, 107, 1);
        for (x, y) in a.values().iter().zip(b.values()) {
            assert!((x - y).abs() < 8.0);
        }
    }

    #[test]
    fn unstable_differs_day_to_day() {
        let s = shape(GeneratedClass::Unstable);
        let ts = gen_days(&s, 100, 2);
        let d0 = ts.day_values(100).unwrap();
        let d1 = ts.day_values(101).unwrap();
        // A large fraction of points should differ by more than the error
        // bound (else it would accidentally have a daily pattern).
        let big_diffs = d0
            .iter()
            .zip(d1)
            .filter(|(a, b)| (*a - *b).abs() > 10.0)
            .count() as f64
            / d0.len() as f64;
        assert!(big_diffs > 0.3, "only {big_diffs} of points differ");
    }

    #[test]
    fn diurnal_basis_properties() {
        let mk = |m: i64| diurnal(Timestamp::from_minutes(m), 0);
        assert_eq!(mk(0), 0.0); // midnight
        assert_eq!(mk(7 * 60), 0.0); // 07:00
        assert!((mk(14 * 60) - 1.0).abs() < 1e-9); // 14:00 peak
        assert!(mk(10 * 60) > 0.0);
        assert_eq!(mk(21 * 60), 0.0);
        // Phase shift moves the peak.
        let shifted = diurnal(Timestamp::from_minutes(16 * 60), 120);
        assert!((shifted - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gaussian_noise_moments() {
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|i| gaussian(99, i)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn different_seeds_decorrelate() {
        let a = LoadShape::new(GeneratedClass::Unstable, 1, ShapeParams::default());
        let b = LoadShape::new(GeneratedClass::Unstable, 2, ShapeParams::default());
        let ta = gen_days(&a, 50, 1);
        let tb = gen_days(&b, 50, 1);
        let same = ta
            .values()
            .iter()
            .zip(tb.values())
            .filter(|(x, y)| (*x - *y).abs() < 1.0)
            .count();
        assert!(same < ta.len() / 2);
    }
}
