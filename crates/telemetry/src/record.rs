//! Raw telemetry records and the CSV codec.
//!
//! The paper's per-region input files "are in csv format. They contain server
//! identifier, timestamp in minutes, average user CPU load percentage per
//! five minutes, default backup start and end timestamps" (Section 5.3.1).
//! [`LoadRecord`] is that row; [`RecordBatch`] encodes/decodes a blob of them.

use crate::server::ServerId;
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One telemetry row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadRecord {
    /// Server the sample belongs to.
    pub server_id: ServerId,
    /// Timestamp in minutes since the epoch.
    pub timestamp_min: i64,
    /// Average user CPU load percentage over the grid bucket.
    pub avg_cpu: f64,
    /// Default backup window start (minutes since epoch) on the server's
    /// next backup day.
    pub default_backup_start: i64,
    /// Default backup window end (minutes since epoch).
    pub default_backup_end: i64,
}

/// The canonical CSV header.
pub const CSV_HEADER: &str =
    "server_id,timestamp_min,avg_cpu_5min,default_backup_start,default_backup_end";

/// A decoded batch of rows plus helpers to move between rows and blobs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RecordBatch {
    /// The rows, in file order.
    pub records: Vec<LoadRecord>,
}

/// A CSV parse failure with its line number (1-based, counting the header).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    /// 1-based line number of the offending row (0 for whole-blob errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "csv parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CsvError {}

impl RecordBatch {
    /// Wraps rows in a batch.
    pub fn new(records: Vec<LoadRecord>) -> RecordBatch {
        RecordBatch { records }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Encodes the batch as a CSV blob (header + one line per record).
    pub fn to_csv(&self) -> Bytes {
        // ~48 bytes per row is a good initial estimate for this schema.
        let mut out = String::with_capacity(CSV_HEADER.len() + 1 + self.records.len() * 48);
        out.push_str(CSV_HEADER);
        out.push('\n');
        for r in &self.records {
            // Loads are percentages; two decimals keeps blobs compact without
            // observable metric impact (grid values are already averaged).
            let _ = writeln!(
                out,
                "{},{},{:.2},{},{}",
                r.server_id.0,
                r.timestamp_min,
                r.avg_cpu,
                r.default_backup_start,
                r.default_backup_end
            );
        }
        Bytes::from(out)
    }

    /// Decodes a CSV blob produced by [`RecordBatch::to_csv`]. The header is
    /// verified so schema drift is caught at the boundary (the Data
    /// Validation module re-checks semantics downstream).
    pub fn from_csv(blob: &[u8]) -> Result<RecordBatch, CsvError> {
        let text = std::str::from_utf8(blob).map_err(|e| CsvError {
            line: 0,
            message: format!("not utf-8: {e}"),
        })?;
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, header)) if header.trim() == CSV_HEADER => {}
            Some((_, header)) => {
                return Err(CsvError {
                    line: 1,
                    message: format!("unexpected header {header:?}"),
                })
            }
            None => {
                return Err(CsvError {
                    line: 1,
                    message: "empty blob".into(),
                })
            }
        }
        let mut records = Vec::new();
        for (idx, line) in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut fields = line.split(',');
            let mut next = |name: &str| {
                fields.next().ok_or(CsvError {
                    line: idx + 1,
                    message: format!("missing field {name}"),
                })
            };
            let server_id: u64 = parse(next("server_id")?, idx + 1)?;
            let timestamp_min: i64 = parse(next("timestamp_min")?, idx + 1)?;
            let avg_cpu: f64 = parse(next("avg_cpu_5min")?, idx + 1)?;
            let start: i64 = parse(next("default_backup_start")?, idx + 1)?;
            let end: i64 = parse(next("default_backup_end")?, idx + 1)?;
            if fields.next().is_some() {
                return Err(CsvError {
                    line: idx + 1,
                    message: "too many fields".into(),
                });
            }
            records.push(LoadRecord {
                server_id: ServerId(server_id),
                timestamp_min,
                avg_cpu,
                default_backup_start: start,
                default_backup_end: end,
            });
        }
        Ok(RecordBatch { records })
    }
}

fn parse<T: std::str::FromStr>(s: &str, line: usize) -> Result<T, CsvError>
where
    T::Err: std::fmt::Display,
{
    s.parse().map_err(|e| CsvError {
        line,
        message: format!("bad value {s:?}: {e}"),
    })
}

/// The value a load takes after a round trip through
/// [`RecordBatch::to_csv`] / [`RecordBatch::from_csv`] (two-decimal fixed
/// formatting). The columnar codec applies the same quantization at encode
/// time so both blob formats hand the pipeline bit-identical series.
pub fn csv_quantized(v: f64) -> f64 {
    if !v.is_finite() {
        return v;
    }
    format!("{v:.2}").parse().expect("fixed-format float")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RecordBatch {
        RecordBatch::new(vec![
            LoadRecord {
                server_id: ServerId(1),
                timestamp_min: 100,
                avg_cpu: 12.34,
                default_backup_start: 5000,
                default_backup_end: 5060,
            },
            LoadRecord {
                server_id: ServerId(2),
                timestamp_min: 105,
                avg_cpu: 0.0,
                default_backup_start: 6000,
                default_backup_end: 6120,
            },
        ])
    }

    #[test]
    fn round_trip() {
        let batch = sample();
        let blob = batch.to_csv();
        let back = RecordBatch::from_csv(&blob).unwrap();
        assert_eq!(back, batch);
    }

    #[test]
    fn empty_batch_round_trips() {
        let blob = RecordBatch::default().to_csv();
        let back = RecordBatch::from_csv(&blob).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn header_verified() {
        let err = RecordBatch::from_csv(b"wrong,header\n1,2,3,4,5\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(RecordBatch::from_csv(b"").is_err());
    }

    #[test]
    fn bad_field_reported_with_line() {
        let blob = format!("{CSV_HEADER}\n1,100,not_a_number,0,0\n");
        let err = RecordBatch::from_csv(blob.as_bytes()).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("not_a_number"));
    }

    #[test]
    fn field_count_enforced() {
        let short = format!("{CSV_HEADER}\n1,100,2.0,0\n");
        assert!(RecordBatch::from_csv(short.as_bytes()).is_err());
        let long = format!("{CSV_HEADER}\n1,100,2.0,0,0,99\n");
        assert!(RecordBatch::from_csv(long.as_bytes()).is_err());
    }

    #[test]
    fn blank_lines_skipped() {
        let blob = format!("{CSV_HEADER}\n\n1,100,2.00,0,60\n\n");
        let back = RecordBatch::from_csv(blob.as_bytes()).unwrap();
        assert_eq!(back.len(), 1);
    }

    #[test]
    fn non_utf8_rejected() {
        assert!(RecordBatch::from_csv(&[0xff, 0xfe, 0x00]).is_err());
    }
}
