//! Additional telemetry signals — the Section 2.2 extension.
//!
//! "For the backup scheduling scenario, we have selected the average customer
//! CPU load percentage per five minutes as an indicator of customer activity.
//! Other signals (memory, I/O, number of active connections, etc.) can be
//! added to improve accuracy." This module generates those signals,
//! correlated with the CPU shape the way real database telemetry is:
//!
//! * **memory** tracks a smoothed (slow-moving) version of CPU on top of a
//!   resident baseline — buffer pools fill under load and drain slowly;
//! * **connections** scale with instantaneous CPU plus count noise;
//! * **disk I/O** follows CPU with multiplicative burstiness.
//!
//! Each signal is a pure function of (server seed, timestamp), like the CPU
//! shape itself, so any window of any signal can be regenerated exactly.

use crate::shape::LoadShape;
use seagull_timeseries::{TimeSeries, Timestamp};
use serde::{Deserialize, Serialize};

/// The telemetry signals Seagull can consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SignalKind {
    /// Average customer CPU load percentage (the paper's deployed signal).
    Cpu,
    /// Memory utilization percentage.
    Memory,
    /// Active connection count.
    Connections,
    /// Disk I/O throughput, MB per minute.
    DiskIo,
}

impl SignalKind {
    /// All signals.
    pub const ALL: [SignalKind; 4] = [
        SignalKind::Cpu,
        SignalKind::Memory,
        SignalKind::Connections,
        SignalKind::DiskIo,
    ];

    /// Column label for extracts.
    pub fn label(self) -> &'static str {
        match self {
            SignalKind::Cpu => "avg_cpu",
            SignalKind::Memory => "avg_memory",
            SignalKind::Connections => "active_connections",
            SignalKind::DiskIo => "disk_io_mb_min",
        }
    }
}

/// Generates the full signal set for one server from its CPU shape.
#[derive(Debug, Clone, Copy)]
pub struct SignalGenerator {
    shape: LoadShape,
    seed: u64,
}

impl SignalGenerator {
    /// Wraps a server's CPU shape.
    pub fn new(shape: LoadShape, seed: u64) -> SignalGenerator {
        SignalGenerator { shape, seed }
    }

    /// The value of `kind` at `at`.
    pub fn value(&self, kind: SignalKind, at: Timestamp) -> f64 {
        let cpu = self.shape.value(at);
        match kind {
            SignalKind::Cpu => cpu,
            SignalKind::Memory => {
                // Resident baseline + exponentially smoothed CPU: average the
                // CPU over a trailing 2-hour comb (cheap deterministic proxy
                // for a low-pass filter).
                let mut acc = 0.0;
                let mut weight = 0.0;
                for (i, w) in [1.0f64, 0.8, 0.6, 0.4, 0.2].iter().enumerate() {
                    acc += w * self.shape.value(at - (i as i64 * 30));
                    weight += w;
                }
                let smoothed = acc / weight;
                (35.0 + 0.6 * smoothed).clamp(0.0, 100.0)
            }
            SignalKind::Connections => {
                // ~1.5 connections per CPU point plus a small floor and
                // deterministic count noise.
                let noise = (hash_at(self.seed ^ 0x636f_6e6e, at) % 5) as f64;
                (3.0 + 1.5 * cpu + noise).floor()
            }
            SignalKind::DiskIo => {
                // I/O tracks CPU with multiplicative burstiness in [0.5, 1.5].
                let u = (hash_at(self.seed ^ 0x6469_736b, at) % 1024) as f64 / 1024.0;
                (0.5 + u) * 4.0 * cpu
            }
        }
    }

    /// A gridded series of `kind` covering `[start, start + len·step)`.
    pub fn series(
        &self,
        kind: SignalKind,
        start: Timestamp,
        step_min: u32,
        len: usize,
    ) -> TimeSeries {
        TimeSeries::from_fn(start, step_min, len, |t| self.value(kind, t))
            .expect("caller passes a grid-aligned start")
    }
}

fn hash_at(seed: u64, at: Timestamp) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(at.minutes() as u64);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::GeneratedClass;
    use crate::shape::ShapeParams;

    fn generator() -> SignalGenerator {
        SignalGenerator::new(
            LoadShape::new(GeneratedClass::DailyPattern, 11, ShapeParams::default()),
            11,
        )
    }

    #[test]
    fn signals_are_deterministic() {
        let g = generator();
        let t = Timestamp::from_minutes(10_000_000);
        for kind in SignalKind::ALL {
            assert_eq!(g.value(kind, t), g.value(kind, t));
        }
    }

    #[test]
    fn cpu_signal_matches_shape() {
        let g = generator();
        let t = Timestamp::from_days(700) + 600;
        assert_eq!(
            g.value(SignalKind::Cpu, t),
            LoadShape::new(GeneratedClass::DailyPattern, 11, ShapeParams::default()).value(t)
        );
    }

    #[test]
    fn memory_is_bounded_and_smoother_than_cpu() {
        let g = generator();
        let start = Timestamp::from_days(700);
        let cpu = g.series(SignalKind::Cpu, start, 5, 288);
        let mem = g.series(SignalKind::Memory, start, 5, 288);
        for v in mem.values() {
            assert!((0.0..=100.0).contains(v));
        }
        // Smoothness: mean absolute first difference must be smaller.
        let rough = |s: &TimeSeries| {
            s.values()
                .windows(2)
                .map(|w| (w[1] - w[0]).abs())
                .sum::<f64>()
                / (s.len() - 1) as f64
        };
        assert!(rough(&mem) < rough(&cpu));
    }

    #[test]
    fn connections_are_integral_and_track_cpu() {
        let g = generator();
        let start = Timestamp::from_days(700);
        let cpu = g.series(SignalKind::Cpu, start, 5, 288);
        let conn = g.series(SignalKind::Connections, start, 5, 288);
        for v in conn.values() {
            assert_eq!(v.fract(), 0.0, "connection counts are whole");
            assert!(*v >= 3.0);
        }
        // Correlation with CPU should be strongly positive.
        let corr = correlation(cpu.values(), conn.values());
        assert!(corr > 0.8, "corr {corr}");
    }

    #[test]
    fn disk_io_nonnegative_and_correlated() {
        let g = generator();
        let start = Timestamp::from_days(700);
        let cpu = g.series(SignalKind::Cpu, start, 5, 288);
        let io = g.series(SignalKind::DiskIo, start, 5, 288);
        assert!(io.values().iter().all(|v| *v >= 0.0));
        let corr = correlation(cpu.values(), io.values());
        assert!(corr > 0.5, "corr {corr}");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SignalKind::Cpu.label(), "avg_cpu");
        assert_eq!(SignalKind::Memory.label(), "avg_memory");
    }

    fn correlation(a: &[f64], b: &[f64]) -> f64 {
        let ma = seagull_timeseries::mean(a);
        let mb = seagull_timeseries::mean(b);
        let mut num = 0.0;
        let mut da = 0.0;
        let mut db = 0.0;
        for (x, y) in a.iter().zip(b) {
            num += (x - ma) * (y - mb);
            da += (x - ma) * (x - ma);
            db += (y - mb) * (y - mb);
        }
        num / (da.sqrt() * db.sqrt()).max(1e-12)
    }
}
