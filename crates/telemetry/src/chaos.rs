//! Deterministic fault injection for blob storage.
//!
//! The paper's incident catalogue — "missing or invalid input data, errors or
//! exceptions in any step of the pipeline, and failed model deployment"
//! (Section 2.2) — starts at the storage layer. [`ChaosBlobStore`] decorates
//! any [`BlobStore`] with seeded, reproducible faults so the resilience
//! machinery in `seagull-core` can be driven through realistic failure
//! schedules in tests and experiments:
//!
//! * **transient faults** — an op fails with a timeout; the next attempt may
//!   succeed (the retry-policy case),
//! * **torn reads** — a `get` returns a truncated prefix of the blob (the
//!   mid-write-crash case the pipeline must not parse as valid input),
//! * **latency spikes** — an op is charged a simulated delay (and optionally
//!   a real sleep),
//! * **sustained outages** — every op against one `(kind, region)` key-space
//!   slice fails until the slice is healed (the circuit-breaker case).
//!
//! * **crashes** — at an armed [`CrashPoint`] the store simulates process
//!   death: a `put` leaves only a strict prefix of the blob durable, the op
//!   panics with an [`InjectedCrash`] payload, and every later op on the
//!   same store panics too (the process is dead). The recovery harness
//!   catches the unwind, rebuilds the stack over the surviving inner store,
//!   and asserts restart recovery (DESIGN.md §12).
//!
//! Every decision comes from one seeded [`DetRng`] stream consumed in op
//! order, so a fixed seed reproduces a byte-identical fault schedule
//! ([`ChaosBlobStore::schedule_log`]) run after run. Crash checks consume no
//! randomness, so arming a crash never shifts the fault schedule.

use crate::blobstore::{BlobKey, BlobStore};
use bytes::Bytes;
use parking_lot::Mutex;
use seagull_obs::Registry;
use std::collections::BTreeSet;
use std::fmt;
use std::io;
use std::sync::Arc;
use std::time::Duration;

/// A minimal deterministic RNG (SplitMix64). Used instead of the `rand`
/// crate wherever fault schedules must be reproducible and portable across
/// dependency upgrades.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> DetRng {
        DetRng { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Fault-injection parameters. All probabilities are per operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed of the fault schedule.
    pub seed: u64,
    /// Probability an op fails with a retryable timeout.
    pub transient_fault_prob: f64,
    /// Probability a `get` returns a truncated prefix of the blob.
    pub torn_read_prob: f64,
    /// Probability an op is charged a latency spike.
    pub latency_spike_prob: f64,
    /// Duration of one latency spike (always recorded in the stats; only
    /// slept when `real_sleep` is set).
    pub latency_spike: Duration,
    /// Actually sleep on latency spikes (benchmarks); tests keep this off so
    /// simulated months run in milliseconds.
    pub real_sleep: bool,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            seed: 0,
            transient_fault_prob: 0.0,
            torn_read_prob: 0.0,
            latency_spike_prob: 0.0,
            latency_spike: Duration::from_millis(50),
            real_sleep: false,
        }
    }
}

/// Operation and fault counters for assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosStats {
    /// Operations attempted against the store.
    pub ops: u64,
    /// Total injected faults (transient + torn + outage rejections).
    pub faults: u64,
    /// Ops failed with a retryable timeout.
    pub transient_faults: u64,
    /// `get`s that returned a truncated prefix.
    pub torn_reads: u64,
    /// Ops rejected by a sustained outage.
    pub outage_rejections: u64,
    /// Ops charged a latency spike.
    pub latency_spikes: u64,
    /// Crash points fired (0 or 1 per store lifetime).
    pub crashes: u64,
    /// Total simulated latency charged.
    pub simulated_latency: Duration,
}

/// When an armed crash fires, relative to the store's op stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrashSpec {
    /// Die on the op with this 0-based index in the store's op stream.
    AtOp(u64),
    /// Die on the `nth` (1-based) op whose key display contains `fragment`.
    /// Targets semantic boundaries — e.g. `fragment: "journal"` with
    /// `nth: 1` dies on the first journal write of a run.
    OnKey {
        /// Substring matched against the op's key display.
        fragment: String,
        /// Which match fires (1-based).
        nth: u64,
    },
}

/// An armed kill-point: where the simulated process death happens and how
/// much of an in-flight `put` survives.
#[derive(Debug, Clone, PartialEq)]
pub struct CrashPoint {
    /// When to die.
    pub spec: CrashSpec,
    /// For a `put` at the crash point: fraction of the payload made durable
    /// before death, clamped to `[0, 1]`. Values below 1 leave a strict
    /// prefix (a torn write the readers must reject); 1.0 means the write
    /// completed and the process died just after.
    pub torn_frac: f64,
}

impl CrashPoint {
    /// A crash at op index `at` that tears an in-flight `put` at `torn_frac`.
    pub fn at_op(at: u64, torn_frac: f64) -> CrashPoint {
        CrashPoint {
            spec: CrashSpec::AtOp(at),
            torn_frac,
        }
    }

    /// A crash on the `nth` (1-based) op whose key contains `fragment`.
    pub fn on_key(fragment: impl Into<String>, nth: u64, torn_frac: f64) -> CrashPoint {
        CrashPoint {
            spec: CrashSpec::OnKey {
                fragment: fragment.into(),
                nth,
            },
            torn_frac,
        }
    }
}

/// Panic payload carried by a simulated process death, from either a
/// [`ChaosBlobStore`] crash point or a stage kill-point in `seagull-core`.
/// Harnesses `catch_unwind` and downcast to this type to distinguish an
/// injected crash from a genuine bug.
#[derive(Debug, Clone)]
pub struct InjectedCrash {
    /// Where the process died, for logs and assertions.
    pub context: String,
}

impl fmt::Display for InjectedCrash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected crash at {}", self.context)
    }
}

impl InjectedCrash {
    /// Simulates process death by panicking with this payload.
    pub fn die(context: impl Into<String>) -> ! {
        std::panic::panic_any(InjectedCrash {
            context: context.into(),
        })
    }
}

struct ChaosState {
    rng: DetRng,
    stats: ChaosStats,
    /// Sliced sustained outages, keyed by `(kind, region)`.
    outages: BTreeSet<(String, String)>,
    /// One line per injected fault, in op order.
    log: Vec<String>,
    /// Armed kill-point, if any.
    crash: Option<CrashPoint>,
    /// `OnKey` matches seen so far.
    crash_key_matches: u64,
    /// Set once a crash fires; every later op dies too.
    crashed: bool,
}

/// The decision taken for one operation.
enum Injection {
    /// Proceed; `torn_frac` is the truncation point for a torn read.
    Proceed { torn_frac: Option<f64> },
    /// Fail the op with this error.
    Fail(io::Error),
    /// Simulated process death: tear an in-flight `put` at `torn_frac`,
    /// then panic with [`InjectedCrash`].
    Crash { torn_frac: f64 },
}

/// A [`BlobStore`] decorator that injects seeded, reproducible faults.
pub struct ChaosBlobStore {
    inner: Arc<dyn BlobStore>,
    config: ChaosConfig,
    state: Mutex<ChaosState>,
}

impl ChaosBlobStore {
    /// Wraps a store with the given fault configuration.
    pub fn new(inner: Arc<dyn BlobStore>, config: ChaosConfig) -> ChaosBlobStore {
        ChaosBlobStore {
            inner,
            state: Mutex::new(ChaosState {
                rng: DetRng::new(config.seed),
                stats: ChaosStats::default(),
                outages: BTreeSet::new(),
                log: Vec::new(),
                crash: None,
                crash_key_matches: 0,
                crashed: false,
            }),
            config,
        }
    }

    /// Starts a sustained outage: every op touching `(kind, region)` fails
    /// until [`ChaosBlobStore::clear_outage`].
    pub fn set_outage(&self, kind: &str, region: &str) {
        self.state
            .lock()
            .outages
            .insert((kind.to_string(), region.to_string()));
    }

    /// Heals a sustained outage; returns whether one was active.
    pub fn clear_outage(&self, kind: &str, region: &str) -> bool {
        self.state
            .lock()
            .outages
            .remove(&(kind.to_string(), region.to_string()))
    }

    /// True while `(kind, region)` is under a sustained outage.
    pub fn outage_active(&self, kind: &str, region: &str) -> bool {
        self.state
            .lock()
            .outages
            .contains(&(kind.to_string(), region.to_string()))
    }

    /// Arms a kill-point. At most one is armed at a time; arming replaces
    /// any previous point and resets the `OnKey` match counter.
    pub fn arm_crash(&self, point: CrashPoint) {
        let mut st = self.state.lock();
        st.crash = Some(point);
        st.crash_key_matches = 0;
    }

    /// Disarms the kill-point, if one is armed.
    pub fn disarm_crash(&self) {
        self.state.lock().crash = None;
    }

    /// True once a crash point has fired; the store is "dead" and every
    /// further op panics with [`InjectedCrash`].
    pub fn crashed(&self) -> bool {
        self.state.lock().crashed
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ChaosStats {
        self.state.lock().stats
    }

    /// The fault schedule so far: one line per injected fault, in op order.
    /// Byte-identical across runs with the same seed and op sequence.
    pub fn schedule_log(&self) -> String {
        self.state.lock().log.join("\n")
    }

    /// Mirrors the op/fault counters into `registry`. Idempotent: each
    /// counter is overwritten with the current cumulative total, so
    /// exporting after every pipeline run never double-counts. With a fixed
    /// seed and op sequence every exported value is deterministic.
    pub fn export_metrics(&self, registry: &Registry) {
        let stats = self.stats();
        let set = |name: &str, v: u64| registry.counter(name, &[]).store(v);
        set("seagull_chaos_ops_total", stats.ops);
        set("seagull_chaos_faults_total", stats.faults);
        set(
            "seagull_chaos_transient_faults_total",
            stats.transient_faults,
        );
        set("seagull_chaos_torn_reads_total", stats.torn_reads);
        set(
            "seagull_chaos_outage_rejections_total",
            stats.outage_rejections,
        );
        set("seagull_chaos_latency_spikes_total", stats.latency_spikes);
        set("seagull_chaos_crashes_total", stats.crashes);
        registry
            .gauge("seagull_chaos_simulated_latency_seconds", &[])
            .set(stats.simulated_latency.as_secs_f64());
        registry
            .gauge("seagull_chaos_active_outages", &[])
            .set(self.state.lock().outages.len() as f64);
    }

    /// Rolls the fault dice for one op. The roll order per op is fixed
    /// (transient, then torn for reads, then latency) so schedules stay
    /// aligned across runs.
    fn inject(&self, op: &str, kind: &str, region: &str, key: &str, read: bool) -> Injection {
        let mut st = self.state.lock();
        let op_index = st.stats.ops;
        st.stats.ops += 1;
        if st.crashed {
            drop(st);
            InjectedCrash::die(format!("{op} {key} (store already crashed)"));
        }
        let fire = match st.crash.clone() {
            None => false,
            Some(cp) => match cp.spec {
                CrashSpec::AtOp(at) => op_index == at,
                CrashSpec::OnKey { ref fragment, nth } => {
                    if key.contains(fragment.as_str()) {
                        st.crash_key_matches += 1;
                        st.crash_key_matches == nth
                    } else {
                        false
                    }
                }
            },
        };
        if fire {
            let torn_frac = st.crash.as_ref().map(|c| c.torn_frac).unwrap_or(0.0);
            st.crashed = true;
            st.stats.crashes += 1;
            st.log.push(format!("#{op_index} {op} {key}: crash"));
            return Injection::Crash {
                torn_frac: torn_frac.clamp(0.0, 1.0),
            };
        }
        if st.outages.contains(&(kind.to_string(), region.to_string())) {
            st.stats.faults += 1;
            st.stats.outage_rejections += 1;
            st.log.push(format!("#{op_index} {op} {key}: outage"));
            return Injection::Fail(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("injected sustained outage for {kind}/{region}"),
            ));
        }
        if self.config.transient_fault_prob > 0.0
            && st.rng.next_f64() < self.config.transient_fault_prob
        {
            st.stats.faults += 1;
            st.stats.transient_faults += 1;
            st.log.push(format!("#{op_index} {op} {key}: transient"));
            return Injection::Fail(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("injected transient fault on {op} {key}"),
            ));
        }
        let mut torn_frac = None;
        if read
            && self.config.torn_read_prob > 0.0
            && st.rng.next_f64() < self.config.torn_read_prob
        {
            st.stats.faults += 1;
            st.stats.torn_reads += 1;
            let frac = st.rng.next_f64();
            st.log
                .push(format!("#{op_index} {op} {key}: torn({frac:.6})"));
            torn_frac = Some(frac);
        }
        let mut spike = false;
        if self.config.latency_spike_prob > 0.0
            && st.rng.next_f64() < self.config.latency_spike_prob
        {
            st.stats.latency_spikes += 1;
            st.stats.simulated_latency += self.config.latency_spike;
            st.log.push(format!("#{op_index} {op} {key}: latency"));
            spike = true;
        }
        drop(st);
        if spike && self.config.real_sleep {
            std::thread::sleep(self.config.latency_spike);
        }
        Injection::Proceed { torn_frac }
    }
}

impl fmt::Debug for ChaosBlobStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.lock();
        f.debug_struct("ChaosBlobStore")
            .field("config", &self.config)
            .field("stats", &st.stats)
            .field("outages", &st.outages)
            .finish()
    }
}

impl BlobStore for ChaosBlobStore {
    fn put(&self, key: &BlobKey, data: Bytes) -> io::Result<()> {
        match self.inject("put", &key.kind, &key.region, &key.to_string(), false) {
            Injection::Fail(e) => Err(e),
            Injection::Proceed { .. } => self.inner.put(key, data),
            Injection::Crash { torn_frac } => {
                // The process dies mid-write: only a prefix of the payload
                // reaches the inner store (at torn_frac = 1.0, all of it).
                let cut = ((data.len() as f64) * torn_frac) as usize;
                let cut = cut.min(data.len());
                if cut > 0 {
                    let _ = self.inner.put(key, data.slice(0..cut));
                }
                InjectedCrash::die(format!("put {key} ({cut}/{} bytes durable)", data.len()));
            }
        }
    }

    fn get(&self, key: &BlobKey) -> io::Result<Bytes> {
        match self.inject("get", &key.kind, &key.region, &key.to_string(), true) {
            Injection::Fail(e) => Err(e),
            Injection::Crash { .. } => InjectedCrash::die(format!("get {key}")),
            Injection::Proceed { torn_frac } => {
                let data = self.inner.get(key)?;
                match torn_frac {
                    Some(frac) if !data.is_empty() => {
                        // frac < 1, so the prefix is strictly shorter.
                        let cut = (data.len() as f64 * frac) as usize;
                        Ok(data.slice(0..cut))
                    }
                    _ => Ok(data),
                }
            }
        }
    }

    fn size(&self, key: &BlobKey) -> io::Result<u64> {
        match self.inject("size", &key.kind, &key.region, &key.to_string(), false) {
            Injection::Fail(e) => Err(e),
            Injection::Crash { .. } => InjectedCrash::die(format!("size {key}")),
            Injection::Proceed { .. } => self.inner.size(key),
        }
    }

    fn list(&self, kind: &str) -> io::Result<Vec<BlobKey>> {
        // Lists span regions, so only transient faults apply ("*" matches no
        // sliced outage).
        match self.inject("list", kind, "*", kind, false) {
            Injection::Fail(e) => Err(e),
            Injection::Crash { .. } => InjectedCrash::die(format!("list {kind}")),
            Injection::Proceed { .. } => self.inner.list(kind),
        }
    }

    fn delete(&self, key: &BlobKey) -> io::Result<bool> {
        match self.inject("delete", &key.kind, &key.region, &key.to_string(), false) {
            Injection::Fail(e) => Err(e),
            Injection::Crash { .. } => InjectedCrash::die(format!("delete {key}")),
            Injection::Proceed { .. } => self.inner.delete(key),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blobstore::MemoryBlobStore;

    fn chaos(config: ChaosConfig) -> ChaosBlobStore {
        ChaosBlobStore::new(Arc::new(MemoryBlobStore::new()), config)
    }

    #[test]
    fn no_faults_is_a_passthrough() {
        let store = chaos(ChaosConfig::default());
        let k = BlobKey::extracted("west", 100);
        store.put(&k, Bytes::from_static(b"hello")).unwrap();
        assert_eq!(&store.get(&k).unwrap()[..], b"hello");
        assert_eq!(store.size(&k).unwrap(), 5);
        assert_eq!(store.list("extracted").unwrap(), vec![k.clone()]);
        assert!(store.delete(&k).unwrap());
        let stats = store.stats();
        assert_eq!(stats.ops, 5);
        assert_eq!(stats.faults, 0);
        assert!(store.schedule_log().is_empty());
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = || {
            let store = chaos(ChaosConfig {
                seed: 42,
                transient_fault_prob: 0.4,
                torn_read_prob: 0.3,
                latency_spike_prob: 0.2,
                ..ChaosConfig::default()
            });
            let k = BlobKey::extracted("west", 100);
            let _ = store.put(&k, Bytes::from_static(b"0123456789"));
            for _ in 0..50 {
                let _ = store.get(&k);
            }
            (store.schedule_log(), store.stats())
        };
        let (log_a, stats_a) = run();
        let (log_b, stats_b) = run();
        assert_eq!(log_a, log_b);
        assert_eq!(stats_a, stats_b);
        assert!(stats_a.faults > 0, "40% fault rate over 51 ops must fire");
    }

    #[test]
    fn different_seed_different_schedule() {
        let run = |seed| {
            let store = chaos(ChaosConfig {
                seed,
                transient_fault_prob: 0.5,
                ..ChaosConfig::default()
            });
            let k = BlobKey::extracted("west", 100);
            for _ in 0..64 {
                let _ = store.get(&k);
            }
            store.schedule_log()
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn sustained_outage_is_sliced_and_healable() {
        let store = chaos(ChaosConfig::default());
        let west = BlobKey::extracted("west", 100);
        let east = BlobKey::extracted("east", 100);
        store.put(&west, Bytes::from_static(b"w")).unwrap();
        store.put(&east, Bytes::from_static(b"e")).unwrap();

        store.set_outage("extracted", "west");
        assert!(store.outage_active("extracted", "west"));
        let err = store.get(&west).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
        assert!(store.put(&west, Bytes::from_static(b"x")).is_err());
        // The other region's slice is unaffected.
        assert_eq!(&store.get(&east).unwrap()[..], b"e");

        assert!(store.clear_outage("extracted", "west"));
        assert!(!store.clear_outage("extracted", "west"));
        assert_eq!(&store.get(&west).unwrap()[..], b"w");
        assert!(store.stats().outage_rejections >= 2);
    }

    #[test]
    fn torn_reads_truncate_strictly() {
        let store = chaos(ChaosConfig {
            seed: 7,
            torn_read_prob: 1.0,
            ..ChaosConfig::default()
        });
        let k = BlobKey::extracted("west", 100);
        store
            .put(&k, Bytes::from_static(b"full blob contents"))
            .unwrap();
        for _ in 0..10 {
            let got = store.get(&k).unwrap();
            assert!(got.len() < 18, "torn read must be a strict prefix");
            assert_eq!(&got[..], &b"full blob contents"[..got.len()]);
        }
        assert_eq!(store.stats().torn_reads, 10);
    }

    #[test]
    fn latency_spikes_are_charged() {
        let store = chaos(ChaosConfig {
            seed: 3,
            latency_spike_prob: 1.0,
            latency_spike: Duration::from_millis(200),
            ..ChaosConfig::default()
        });
        let k = BlobKey::extracted("west", 100);
        store.put(&k, Bytes::from_static(b"x")).unwrap();
        let _ = store.get(&k);
        let stats = store.stats();
        assert_eq!(stats.latency_spikes, 2);
        assert_eq!(stats.simulated_latency, Duration::from_millis(400));
    }

    #[test]
    fn export_metrics_is_idempotent() {
        let store = chaos(ChaosConfig {
            seed: 7,
            transient_fault_prob: 0.5,
            ..ChaosConfig::default()
        });
        let k = BlobKey::extracted("west", 100);
        for _ in 0..20 {
            let _ = store.get(&k);
        }
        store.set_outage("extracted", "west");
        let registry = Registry::new();
        store.export_metrics(&registry);
        store.export_metrics(&registry);
        let stats = store.stats();
        assert_eq!(
            registry.counter("seagull_chaos_ops_total", &[]).get(),
            stats.ops,
            "repeated export must not double-count"
        );
        assert_eq!(
            registry
                .counter("seagull_chaos_transient_faults_total", &[])
                .get(),
            stats.transient_faults
        );
        assert_eq!(
            registry.gauge("seagull_chaos_active_outages", &[]).get(),
            1.0
        );
    }

    #[test]
    fn crash_at_op_tears_the_put_and_kills_the_store() {
        let inner = Arc::new(MemoryBlobStore::new());
        let store = ChaosBlobStore::new(inner.clone(), ChaosConfig::default());
        let k = BlobKey::extracted("west", 100);
        store.put(&k, Bytes::from_static(b"full")).unwrap();
        // Op #1 is the next put; half the payload survives.
        store.arm_crash(CrashPoint::at_op(1, 0.5));
        let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            store.put(&k, Bytes::from_static(b"replacement"))
        }))
        .unwrap_err();
        let crash = died
            .downcast::<InjectedCrash>()
            .expect("InjectedCrash payload");
        assert!(crash.context.contains("put"), "context: {}", crash.context);
        assert!(store.crashed());
        assert_eq!(store.stats().crashes, 1);
        // The inner store holds a strict prefix of the torn write.
        let durable = inner.get(&k).unwrap();
        assert_eq!(&durable[..], &b"replacement"[..5]);
        // The dead store refuses every further op by dying again.
        let again = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| store.get(&k)));
        assert!(again.is_err());
    }

    #[test]
    fn crash_on_key_targets_the_nth_match() {
        let inner = Arc::new(MemoryBlobStore::new());
        let store = ChaosBlobStore::new(inner.clone(), ChaosConfig::default());
        store.arm_crash(CrashPoint::on_key("journal", 2, 0.0));
        let journal = BlobKey {
            kind: "journal".into(),
            region: "deploys".into(),
            week: 0,
        };
        let other = BlobKey::extracted("west", 100);
        store.put(&other, Bytes::from_static(b"safe")).unwrap();
        store.put(&journal, Bytes::from_static(b"one")).unwrap();
        let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            store.put(&journal, Bytes::from_static(b"two"))
        }));
        assert!(died.is_err());
        // torn_frac 0: nothing of the dying write landed.
        assert_eq!(&inner.get(&journal).unwrap()[..], b"one");
    }

    #[test]
    fn arming_a_crash_does_not_shift_the_fault_schedule() {
        let run = |crash: Option<CrashPoint>| {
            let store = chaos(ChaosConfig {
                seed: 11,
                transient_fault_prob: 0.3,
                ..ChaosConfig::default()
            });
            if let Some(cp) = crash {
                store.arm_crash(cp);
            }
            let k = BlobKey::extracted("west", 100);
            for _ in 0..30 {
                let _ = store.get(&k);
            }
            store.schedule_log()
        };
        // A crash armed far beyond the op count never fires and leaves the
        // transient schedule byte-identical.
        assert_eq!(run(None), run(Some(CrashPoint::at_op(10_000, 0.5))));
    }

    #[test]
    fn det_rng_is_deterministic_and_uniformish() {
        let mut a = DetRng::new(99);
        let mut b = DetRng::new(99);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let x = a.next_f64();
            assert_eq!(x, b.next_f64());
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 1000.0 - 0.5).abs() < 0.05, "mean {}", sum / 1000.0);
    }
}
