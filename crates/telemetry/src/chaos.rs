//! Deterministic fault injection for blob storage.
//!
//! The paper's incident catalogue — "missing or invalid input data, errors or
//! exceptions in any step of the pipeline, and failed model deployment"
//! (Section 2.2) — starts at the storage layer. [`ChaosBlobStore`] decorates
//! any [`BlobStore`] with seeded, reproducible faults so the resilience
//! machinery in `seagull-core` can be driven through realistic failure
//! schedules in tests and experiments:
//!
//! * **transient faults** — an op fails with a timeout; the next attempt may
//!   succeed (the retry-policy case),
//! * **torn reads** — a `get` returns a truncated prefix of the blob (the
//!   mid-write-crash case the pipeline must not parse as valid input),
//! * **latency spikes** — an op is charged a simulated delay (and optionally
//!   a real sleep),
//! * **sustained outages** — every op against one `(kind, region)` key-space
//!   slice fails until the slice is healed (the circuit-breaker case).
//!
//! Every decision comes from one seeded [`DetRng`] stream consumed in op
//! order, so a fixed seed reproduces a byte-identical fault schedule
//! ([`ChaosBlobStore::schedule_log`]) run after run.

use crate::blobstore::{BlobKey, BlobStore};
use bytes::Bytes;
use parking_lot::Mutex;
use seagull_obs::Registry;
use std::collections::BTreeSet;
use std::fmt;
use std::io;
use std::sync::Arc;
use std::time::Duration;

/// A minimal deterministic RNG (SplitMix64). Used instead of the `rand`
/// crate wherever fault schedules must be reproducible and portable across
/// dependency upgrades.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> DetRng {
        DetRng { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Fault-injection parameters. All probabilities are per operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed of the fault schedule.
    pub seed: u64,
    /// Probability an op fails with a retryable timeout.
    pub transient_fault_prob: f64,
    /// Probability a `get` returns a truncated prefix of the blob.
    pub torn_read_prob: f64,
    /// Probability an op is charged a latency spike.
    pub latency_spike_prob: f64,
    /// Duration of one latency spike (always recorded in the stats; only
    /// slept when `real_sleep` is set).
    pub latency_spike: Duration,
    /// Actually sleep on latency spikes (benchmarks); tests keep this off so
    /// simulated months run in milliseconds.
    pub real_sleep: bool,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            seed: 0,
            transient_fault_prob: 0.0,
            torn_read_prob: 0.0,
            latency_spike_prob: 0.0,
            latency_spike: Duration::from_millis(50),
            real_sleep: false,
        }
    }
}

/// Operation and fault counters for assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosStats {
    /// Operations attempted against the store.
    pub ops: u64,
    /// Total injected faults (transient + torn + outage rejections).
    pub faults: u64,
    pub transient_faults: u64,
    pub torn_reads: u64,
    pub outage_rejections: u64,
    pub latency_spikes: u64,
    /// Total simulated latency charged.
    pub simulated_latency: Duration,
}

struct ChaosState {
    rng: DetRng,
    stats: ChaosStats,
    /// Sliced sustained outages, keyed by `(kind, region)`.
    outages: BTreeSet<(String, String)>,
    /// One line per injected fault, in op order.
    log: Vec<String>,
}

/// The decision taken for one operation.
enum Injection {
    /// Proceed; `torn_frac` is the truncation point for a torn read.
    Proceed { torn_frac: Option<f64> },
    /// Fail the op with this error.
    Fail(io::Error),
}

/// A [`BlobStore`] decorator that injects seeded, reproducible faults.
pub struct ChaosBlobStore {
    inner: Arc<dyn BlobStore>,
    config: ChaosConfig,
    state: Mutex<ChaosState>,
}

impl ChaosBlobStore {
    /// Wraps a store with the given fault configuration.
    pub fn new(inner: Arc<dyn BlobStore>, config: ChaosConfig) -> ChaosBlobStore {
        ChaosBlobStore {
            inner,
            state: Mutex::new(ChaosState {
                rng: DetRng::new(config.seed),
                stats: ChaosStats::default(),
                outages: BTreeSet::new(),
                log: Vec::new(),
            }),
            config,
        }
    }

    /// Starts a sustained outage: every op touching `(kind, region)` fails
    /// until [`ChaosBlobStore::clear_outage`].
    pub fn set_outage(&self, kind: &str, region: &str) {
        self.state
            .lock()
            .outages
            .insert((kind.to_string(), region.to_string()));
    }

    /// Heals a sustained outage; returns whether one was active.
    pub fn clear_outage(&self, kind: &str, region: &str) -> bool {
        self.state
            .lock()
            .outages
            .remove(&(kind.to_string(), region.to_string()))
    }

    /// True while `(kind, region)` is under a sustained outage.
    pub fn outage_active(&self, kind: &str, region: &str) -> bool {
        self.state
            .lock()
            .outages
            .contains(&(kind.to_string(), region.to_string()))
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ChaosStats {
        self.state.lock().stats
    }

    /// The fault schedule so far: one line per injected fault, in op order.
    /// Byte-identical across runs with the same seed and op sequence.
    pub fn schedule_log(&self) -> String {
        self.state.lock().log.join("\n")
    }

    /// Mirrors the op/fault counters into `registry`. Idempotent: each
    /// counter is overwritten with the current cumulative total, so
    /// exporting after every pipeline run never double-counts. With a fixed
    /// seed and op sequence every exported value is deterministic.
    pub fn export_metrics(&self, registry: &Registry) {
        let stats = self.stats();
        let set = |name: &str, v: u64| registry.counter(name, &[]).store(v);
        set("seagull_chaos_ops_total", stats.ops);
        set("seagull_chaos_faults_total", stats.faults);
        set(
            "seagull_chaos_transient_faults_total",
            stats.transient_faults,
        );
        set("seagull_chaos_torn_reads_total", stats.torn_reads);
        set(
            "seagull_chaos_outage_rejections_total",
            stats.outage_rejections,
        );
        set("seagull_chaos_latency_spikes_total", stats.latency_spikes);
        registry
            .gauge("seagull_chaos_simulated_latency_seconds", &[])
            .set(stats.simulated_latency.as_secs_f64());
        registry
            .gauge("seagull_chaos_active_outages", &[])
            .set(self.state.lock().outages.len() as f64);
    }

    /// Rolls the fault dice for one op. The roll order per op is fixed
    /// (transient, then torn for reads, then latency) so schedules stay
    /// aligned across runs.
    fn inject(&self, op: &str, kind: &str, region: &str, key: &str, read: bool) -> Injection {
        let mut st = self.state.lock();
        let op_index = st.stats.ops;
        st.stats.ops += 1;
        if st.outages.contains(&(kind.to_string(), region.to_string())) {
            st.stats.faults += 1;
            st.stats.outage_rejections += 1;
            st.log.push(format!("#{op_index} {op} {key}: outage"));
            return Injection::Fail(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("injected sustained outage for {kind}/{region}"),
            ));
        }
        if self.config.transient_fault_prob > 0.0
            && st.rng.next_f64() < self.config.transient_fault_prob
        {
            st.stats.faults += 1;
            st.stats.transient_faults += 1;
            st.log.push(format!("#{op_index} {op} {key}: transient"));
            return Injection::Fail(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("injected transient fault on {op} {key}"),
            ));
        }
        let mut torn_frac = None;
        if read
            && self.config.torn_read_prob > 0.0
            && st.rng.next_f64() < self.config.torn_read_prob
        {
            st.stats.faults += 1;
            st.stats.torn_reads += 1;
            let frac = st.rng.next_f64();
            st.log
                .push(format!("#{op_index} {op} {key}: torn({frac:.6})"));
            torn_frac = Some(frac);
        }
        let mut spike = false;
        if self.config.latency_spike_prob > 0.0
            && st.rng.next_f64() < self.config.latency_spike_prob
        {
            st.stats.latency_spikes += 1;
            st.stats.simulated_latency += self.config.latency_spike;
            st.log.push(format!("#{op_index} {op} {key}: latency"));
            spike = true;
        }
        drop(st);
        if spike && self.config.real_sleep {
            std::thread::sleep(self.config.latency_spike);
        }
        Injection::Proceed { torn_frac }
    }
}

impl fmt::Debug for ChaosBlobStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.lock();
        f.debug_struct("ChaosBlobStore")
            .field("config", &self.config)
            .field("stats", &st.stats)
            .field("outages", &st.outages)
            .finish()
    }
}

impl BlobStore for ChaosBlobStore {
    fn put(&self, key: &BlobKey, data: Bytes) -> io::Result<()> {
        match self.inject("put", &key.kind, &key.region, &key.to_string(), false) {
            Injection::Fail(e) => Err(e),
            Injection::Proceed { .. } => self.inner.put(key, data),
        }
    }

    fn get(&self, key: &BlobKey) -> io::Result<Bytes> {
        match self.inject("get", &key.kind, &key.region, &key.to_string(), true) {
            Injection::Fail(e) => Err(e),
            Injection::Proceed { torn_frac } => {
                let data = self.inner.get(key)?;
                match torn_frac {
                    Some(frac) if !data.is_empty() => {
                        // frac < 1, so the prefix is strictly shorter.
                        let cut = (data.len() as f64 * frac) as usize;
                        Ok(data.slice(0..cut))
                    }
                    _ => Ok(data),
                }
            }
        }
    }

    fn size(&self, key: &BlobKey) -> io::Result<u64> {
        match self.inject("size", &key.kind, &key.region, &key.to_string(), false) {
            Injection::Fail(e) => Err(e),
            Injection::Proceed { .. } => self.inner.size(key),
        }
    }

    fn list(&self, kind: &str) -> io::Result<Vec<BlobKey>> {
        // Lists span regions, so only transient faults apply ("*" matches no
        // sliced outage).
        match self.inject("list", kind, "*", kind, false) {
            Injection::Fail(e) => Err(e),
            Injection::Proceed { .. } => self.inner.list(kind),
        }
    }

    fn delete(&self, key: &BlobKey) -> io::Result<bool> {
        match self.inject("delete", &key.kind, &key.region, &key.to_string(), false) {
            Injection::Fail(e) => Err(e),
            Injection::Proceed { .. } => self.inner.delete(key),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blobstore::MemoryBlobStore;

    fn chaos(config: ChaosConfig) -> ChaosBlobStore {
        ChaosBlobStore::new(Arc::new(MemoryBlobStore::new()), config)
    }

    #[test]
    fn no_faults_is_a_passthrough() {
        let store = chaos(ChaosConfig::default());
        let k = BlobKey::extracted("west", 100);
        store.put(&k, Bytes::from_static(b"hello")).unwrap();
        assert_eq!(&store.get(&k).unwrap()[..], b"hello");
        assert_eq!(store.size(&k).unwrap(), 5);
        assert_eq!(store.list("extracted").unwrap(), vec![k.clone()]);
        assert!(store.delete(&k).unwrap());
        let stats = store.stats();
        assert_eq!(stats.ops, 5);
        assert_eq!(stats.faults, 0);
        assert!(store.schedule_log().is_empty());
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = || {
            let store = chaos(ChaosConfig {
                seed: 42,
                transient_fault_prob: 0.4,
                torn_read_prob: 0.3,
                latency_spike_prob: 0.2,
                ..ChaosConfig::default()
            });
            let k = BlobKey::extracted("west", 100);
            let _ = store.put(&k, Bytes::from_static(b"0123456789"));
            for _ in 0..50 {
                let _ = store.get(&k);
            }
            (store.schedule_log(), store.stats())
        };
        let (log_a, stats_a) = run();
        let (log_b, stats_b) = run();
        assert_eq!(log_a, log_b);
        assert_eq!(stats_a, stats_b);
        assert!(stats_a.faults > 0, "40% fault rate over 51 ops must fire");
    }

    #[test]
    fn different_seed_different_schedule() {
        let run = |seed| {
            let store = chaos(ChaosConfig {
                seed,
                transient_fault_prob: 0.5,
                ..ChaosConfig::default()
            });
            let k = BlobKey::extracted("west", 100);
            for _ in 0..64 {
                let _ = store.get(&k);
            }
            store.schedule_log()
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn sustained_outage_is_sliced_and_healable() {
        let store = chaos(ChaosConfig::default());
        let west = BlobKey::extracted("west", 100);
        let east = BlobKey::extracted("east", 100);
        store.put(&west, Bytes::from_static(b"w")).unwrap();
        store.put(&east, Bytes::from_static(b"e")).unwrap();

        store.set_outage("extracted", "west");
        assert!(store.outage_active("extracted", "west"));
        let err = store.get(&west).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
        assert!(store.put(&west, Bytes::from_static(b"x")).is_err());
        // The other region's slice is unaffected.
        assert_eq!(&store.get(&east).unwrap()[..], b"e");

        assert!(store.clear_outage("extracted", "west"));
        assert!(!store.clear_outage("extracted", "west"));
        assert_eq!(&store.get(&west).unwrap()[..], b"w");
        assert!(store.stats().outage_rejections >= 2);
    }

    #[test]
    fn torn_reads_truncate_strictly() {
        let store = chaos(ChaosConfig {
            seed: 7,
            torn_read_prob: 1.0,
            ..ChaosConfig::default()
        });
        let k = BlobKey::extracted("west", 100);
        store
            .put(&k, Bytes::from_static(b"full blob contents"))
            .unwrap();
        for _ in 0..10 {
            let got = store.get(&k).unwrap();
            assert!(got.len() < 18, "torn read must be a strict prefix");
            assert_eq!(&got[..], &b"full blob contents"[..got.len()]);
        }
        assert_eq!(store.stats().torn_reads, 10);
    }

    #[test]
    fn latency_spikes_are_charged() {
        let store = chaos(ChaosConfig {
            seed: 3,
            latency_spike_prob: 1.0,
            latency_spike: Duration::from_millis(200),
            ..ChaosConfig::default()
        });
        let k = BlobKey::extracted("west", 100);
        store.put(&k, Bytes::from_static(b"x")).unwrap();
        let _ = store.get(&k);
        let stats = store.stats();
        assert_eq!(stats.latency_spikes, 2);
        assert_eq!(stats.simulated_latency, Duration::from_millis(400));
    }

    #[test]
    fn export_metrics_is_idempotent() {
        let store = chaos(ChaosConfig {
            seed: 7,
            transient_fault_prob: 0.5,
            ..ChaosConfig::default()
        });
        let k = BlobKey::extracted("west", 100);
        for _ in 0..20 {
            let _ = store.get(&k);
        }
        store.set_outage("extracted", "west");
        let registry = Registry::new();
        store.export_metrics(&registry);
        store.export_metrics(&registry);
        let stats = store.stats();
        assert_eq!(
            registry.counter("seagull_chaos_ops_total", &[]).get(),
            stats.ops,
            "repeated export must not double-count"
        );
        assert_eq!(
            registry
                .counter("seagull_chaos_transient_faults_total", &[])
                .get(),
            stats.transient_faults
        );
        assert_eq!(
            registry.gauge("seagull_chaos_active_outages", &[]).get(),
            1.0
        );
    }

    #[test]
    fn det_rng_is_deterministic_and_uniformish() {
        let mut a = DetRng::new(99);
        let mut b = DetRng::new(99);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let x = a.next_f64();
            assert_eq!(x, b.next_f64());
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 1000.0 - 0.5).abs() < 0.05, "mean {}", sum / 1000.0);
    }
}
