//! The Azure Data Lake Store substitute.
//!
//! The Load Extraction module "stores this data in Azure Data Lake Store
//! (ADLS). These files are input to the AML pipeline" (Section 2.2). Here the
//! store is a trait with two backends: an in-memory map (tests, examples) and
//! an on-disk directory tree (benchmarks that need realistic file-size-driven
//! I/O behaviour for the Fig. 12 runtime experiments).

use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::PathBuf;

/// A partition key: one blob per `(region, week)` as in production, plus a
/// free-form kind (raw telemetry vs extracted pipeline input).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlobKey {
    /// Free-form namespace: raw telemetry, extracted input, snapshots,
    /// journals, checkpoints.
    pub kind: String,
    /// Region the blob belongs to.
    pub region: String,
    /// Week index: `start_day / 7` of the week the blob covers. Kinds that
    /// are not weekly reuse this slot as a sequence number.
    pub week: i64,
}

impl BlobKey {
    /// Key for extracted pipeline input.
    pub fn extracted(region: &str, week: i64) -> BlobKey {
        BlobKey {
            kind: "extracted".into(),
            region: region.into(),
            week,
        }
    }

    /// Key for raw telemetry.
    pub fn raw(region: &str, week: i64) -> BlobKey {
        BlobKey {
            kind: "raw".into(),
            region: region.into(),
            week,
        }
    }

    fn as_path(&self) -> PathBuf {
        PathBuf::from(&self.kind)
            .join(&self.region)
            .join(format!("week-{}.csv", self.week))
    }
}

impl fmt::Display for BlobKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/week-{}", self.kind, self.region, self.week)
    }
}

/// Blob storage abstraction.
pub trait BlobStore: Send + Sync {
    /// Writes (or replaces) a blob.
    fn put(&self, key: &BlobKey, data: Bytes) -> io::Result<()>;
    /// Reads a blob; `NotFound` if absent.
    fn get(&self, key: &BlobKey) -> io::Result<Bytes>;
    /// Blob size in bytes without reading it; `NotFound` if absent.
    fn size(&self, key: &BlobKey) -> io::Result<u64>;
    /// Lists keys with the given kind, sorted.
    fn list(&self, kind: &str) -> io::Result<Vec<BlobKey>>;
    /// Deletes a blob if present; returns whether it existed.
    fn delete(&self, key: &BlobKey) -> io::Result<bool>;
}

/// In-memory blob store.
#[derive(Debug, Default)]
pub struct MemoryBlobStore {
    blobs: RwLock<BTreeMap<BlobKey, Bytes>>,
}

impl MemoryBlobStore {
    /// Creates an empty store.
    pub fn new() -> MemoryBlobStore {
        MemoryBlobStore::default()
    }

    /// Number of blobs held.
    pub fn len(&self) -> usize {
        self.blobs.read().len()
    }

    /// True when no blobs are held.
    pub fn is_empty(&self) -> bool {
        self.blobs.read().is_empty()
    }
}

impl BlobStore for MemoryBlobStore {
    fn put(&self, key: &BlobKey, data: Bytes) -> io::Result<()> {
        self.blobs.write().insert(key.clone(), data);
        Ok(())
    }

    fn get(&self, key: &BlobKey) -> io::Result<Bytes> {
        self.blobs
            .read()
            .get(key)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no blob {key}")))
    }

    fn size(&self, key: &BlobKey) -> io::Result<u64> {
        self.blobs
            .read()
            .get(key)
            .map(|b| b.len() as u64)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no blob {key}")))
    }

    fn list(&self, kind: &str) -> io::Result<Vec<BlobKey>> {
        Ok(self
            .blobs
            .read()
            .keys()
            .filter(|k| k.kind == kind)
            .cloned()
            .collect())
    }

    fn delete(&self, key: &BlobKey) -> io::Result<bool> {
        Ok(self.blobs.write().remove(key).is_some())
    }
}

/// On-disk blob store rooted at a directory.
#[derive(Debug)]
pub struct DiskBlobStore {
    root: PathBuf,
    durable: bool,
}

impl DiskBlobStore {
    /// Opens (creating if needed) a store rooted at `root`. Writes are
    /// atomic (temp file + rename) but not fsynced; see
    /// [`DiskBlobStore::with_durability`].
    pub fn open(root: impl Into<PathBuf>) -> io::Result<DiskBlobStore> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(DiskBlobStore {
            root,
            durable: false,
        })
    }

    /// Toggles power-loss durability. When on, every `put` calls `sync_all`
    /// on the temp file before the rename and fsyncs the parent directory
    /// after it, so both the blob contents and the directory entry survive
    /// power loss — not just process death. Off by default: tests and
    /// benches that only need crash atomicity skip the two fsyncs, which
    /// dominate small-blob write latency.
    pub fn with_durability(mut self, durable: bool) -> DiskBlobStore {
        self.durable = durable;
        self
    }

    /// True when `put` fsyncs (see [`DiskBlobStore::with_durability`]).
    pub fn durable(&self) -> bool {
        self.durable
    }

    fn path_for(&self, key: &BlobKey) -> PathBuf {
        self.root.join(key.as_path())
    }
}

impl BlobStore for DiskBlobStore {
    fn put(&self, key: &BlobKey, data: Bytes) -> io::Result<()> {
        let path = self.path_for(key);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        // Crash-safe write: stage into a temp file in the same directory,
        // then atomically rename into place. A crash mid-write leaves only a
        // `.tmp` straggler (invisible to `list`/`get`), never a torn
        // `week-N.csv` a later pipeline run would parse as valid input.
        let tmp = path.with_extension(format!("csv.tmp-{}", std::process::id()));
        std::fs::write(&tmp, &data)?;
        if self.durable {
            // Flush the temp file's contents before the rename publishes it,
            // so the rename can never expose an unflushed (torn) blob after
            // power loss.
            std::fs::File::open(&tmp)?.sync_all()?;
        }
        match std::fs::rename(&tmp, &path) {
            Ok(()) => {}
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                return Err(e);
            }
        }
        if self.durable {
            // Persist the directory entry: without this the rename itself
            // can be lost on power loss even though the file data was
            // synced.
            if let Some(parent) = path.parent() {
                std::fs::File::open(parent)?.sync_all()?;
            }
        }
        Ok(())
    }

    fn get(&self, key: &BlobKey) -> io::Result<Bytes> {
        std::fs::read(self.path_for(key)).map(Bytes::from)
    }

    fn size(&self, key: &BlobKey) -> io::Result<u64> {
        Ok(std::fs::metadata(self.path_for(key))?.len())
    }

    fn list(&self, kind: &str) -> io::Result<Vec<BlobKey>> {
        let mut keys = Vec::new();
        let kind_dir = self.root.join(kind);
        if !kind_dir.exists() {
            return Ok(keys);
        }
        for region_entry in std::fs::read_dir(&kind_dir)? {
            let region_entry = region_entry?;
            let region = region_entry.file_name().to_string_lossy().into_owned();
            for file in std::fs::read_dir(region_entry.path())? {
                let name = file?.file_name().to_string_lossy().into_owned();
                if let Some(week) = name
                    .strip_prefix("week-")
                    .and_then(|s| s.strip_suffix(".csv"))
                    .and_then(|s| s.parse::<i64>().ok())
                {
                    keys.push(BlobKey {
                        kind: kind.to_string(),
                        region: region.clone(),
                        week,
                    });
                }
            }
        }
        keys.sort();
        Ok(keys)
    }

    fn delete(&self, key: &BlobKey) -> io::Result<bool> {
        match std::fs::remove_file(self.path_for(key)) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &dyn BlobStore) {
        let k1 = BlobKey::extracted("west", 100);
        let k2 = BlobKey::extracted("east", 100);
        let k3 = BlobKey::raw("west", 100);

        assert!(store.get(&k1).is_err());
        store.put(&k1, Bytes::from_static(b"hello")).unwrap();
        store.put(&k2, Bytes::from_static(b"world!")).unwrap();
        store.put(&k3, Bytes::from_static(b"raw")).unwrap();

        assert_eq!(&store.get(&k1).unwrap()[..], b"hello");
        assert_eq!(store.size(&k2).unwrap(), 6);

        let extracted = store.list("extracted").unwrap();
        assert_eq!(extracted.len(), 2);
        assert!(extracted.contains(&k1) && extracted.contains(&k2));
        assert_eq!(store.list("raw").unwrap(), vec![k3.clone()]);
        assert!(store.list("nothing").unwrap().is_empty());

        // Overwrite.
        store.put(&k1, Bytes::from_static(b"hi")).unwrap();
        assert_eq!(store.size(&k1).unwrap(), 2);

        assert!(store.delete(&k1).unwrap());
        assert!(!store.delete(&k1).unwrap());
        assert!(store.get(&k1).is_err());
    }

    #[test]
    fn memory_store() {
        let store = MemoryBlobStore::new();
        exercise(&store);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn disk_store() {
        let dir = std::env::temp_dir().join(format!(
            "seagull-blob-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DiskBlobStore::open(&dir).unwrap();
        exercise(&store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_put_is_atomic_and_leaves_no_temp_files() {
        let dir = std::env::temp_dir().join(format!(
            "seagull-blob-atomic-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DiskBlobStore::open(&dir).unwrap();
        let k = BlobKey::extracted("west", 42);
        store.put(&k, Bytes::from_static(b"first")).unwrap();
        store.put(&k, Bytes::from_static(b"second")).unwrap();
        assert_eq!(&store.get(&k).unwrap()[..], b"second");

        // Only the final blob exists — no `.tmp` stragglers after put.
        let files: Vec<String> = std::fs::read_dir(dir.join("extracted").join("west"))
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(files, vec!["week-42.csv".to_string()]);

        // A straggler from a simulated mid-write crash is invisible to list.
        std::fs::write(
            dir.join("extracted").join("west").join("week-43.csv.tmp-1"),
            b"torn",
        )
        .unwrap();
        assert_eq!(store.list("extracted").unwrap(), vec![k]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durable_disk_store_round_trips() {
        let dir = std::env::temp_dir().join(format!(
            "seagull-blob-durable-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DiskBlobStore::open(&dir).unwrap().with_durability(true);
        assert!(store.durable());
        exercise(&store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn key_display_and_path() {
        let k = BlobKey::extracted("west-us", 2600);
        assert_eq!(k.to_string(), "extracted/west-us/week-2600");
    }
}
