//! Multi-signal ("wide") extraction — the Section 2.4 adaptation path.
//!
//! "Other forecast signals (CPU, memory, disk, I/O, etc.) and features
//! (subscriber identifier, number of active connections, etc.) may be needed
//! for other scenarios" — adapting Load Extraction to a new scenario means a
//! new schema. This module is that adaptation, fully built: a wide record
//! carrying all four signals of [`crate::signals`], its CSV codec, the
//! extraction query, and the parser back into per-signal series.

use crate::fleet::ServerTelemetry;
use crate::record::CsvError;
use crate::server::ServerId;
use crate::signals::{SignalGenerator, SignalKind};
use bytes::Bytes;
use seagull_timeseries::{TimeSeries, Timestamp};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One wide telemetry row: every signal for one (server, bucket).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WideRecord {
    /// Server the sample belongs to.
    pub server_id: ServerId,
    /// Timestamp in minutes since the epoch.
    pub timestamp_min: i64,
    /// Average customer CPU load percentage over the bucket.
    pub avg_cpu: f64,
    /// Memory utilization percentage.
    pub avg_memory: f64,
    /// Active connection count.
    pub active_connections: f64,
    /// Disk I/O throughput, MB per minute.
    pub disk_io_mb_min: f64,
}

impl WideRecord {
    /// The value of one signal.
    pub fn signal(&self, kind: SignalKind) -> f64 {
        match kind {
            SignalKind::Cpu => self.avg_cpu,
            SignalKind::Memory => self.avg_memory,
            SignalKind::Connections => self.active_connections,
            SignalKind::DiskIo => self.disk_io_mb_min,
        }
    }
}

/// The wide CSV header.
pub const WIDE_CSV_HEADER: &str =
    "server_id,timestamp_min,avg_cpu,avg_memory,active_connections,disk_io_mb_min";

/// A batch of wide rows with its CSV codec.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WideBatch {
    /// The rows, in file order.
    pub records: Vec<WideRecord>,
}

impl WideBatch {
    /// Encodes as CSV.
    pub fn to_csv(&self) -> Bytes {
        let mut out = String::with_capacity(WIDE_CSV_HEADER.len() + 1 + self.records.len() * 64);
        out.push_str(WIDE_CSV_HEADER);
        out.push('\n');
        for r in &self.records {
            let _ = writeln!(
                out,
                "{},{},{:.2},{:.2},{:.0},{:.2}",
                r.server_id.0,
                r.timestamp_min,
                r.avg_cpu,
                r.avg_memory,
                r.active_connections,
                r.disk_io_mb_min
            );
        }
        Bytes::from(out)
    }

    /// Decodes a CSV blob, verifying the header. Failures carry the 1-based
    /// line number, like [`crate::record::RecordBatch::from_csv`].
    pub fn from_csv(blob: &[u8]) -> Result<WideBatch, CsvError> {
        let text = std::str::from_utf8(blob).map_err(|e| CsvError {
            line: 0,
            message: format!("not utf-8: {e}"),
        })?;
        let mut lines = text.lines();
        match lines.next() {
            Some(h) if h.trim() == WIDE_CSV_HEADER => {}
            other => {
                return Err(CsvError {
                    line: 1,
                    message: format!("unexpected header {other:?}"),
                })
            }
        }
        let mut records = Vec::new();
        for (idx, line) in lines.enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let line_no = idx + 2;
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != 6 {
                return Err(CsvError {
                    line: line_no,
                    message: format!("expected 6 fields, got {}", fields.len()),
                });
            }
            let bad = |e: &dyn std::fmt::Display, s: &str| CsvError {
                line: line_no,
                message: format!("bad value {s:?}: {e}"),
            };
            let parse = |s: &str| -> Result<f64, CsvError> { s.parse().map_err(|e| bad(&e, s)) };
            records.push(WideRecord {
                server_id: ServerId(fields[0].parse().map_err(|e| bad(&e, fields[0]))?),
                timestamp_min: fields[1].parse().map_err(|e| bad(&e, fields[1]))?,
                avg_cpu: parse(fields[2])?,
                avg_memory: parse(fields[3])?,
                active_connections: parse(fields[4])?,
                disk_io_mb_min: parse(fields[5])?,
            });
        }
        Ok(WideBatch { records })
    }
}

/// Extracts one region-week of wide telemetry: every signal regenerated from
/// each server's ground-truth shape.
pub fn extract_wide_week(
    fleet: &[ServerTelemetry],
    region: &str,
    week_start_day: i64,
    grid_min: u32,
) -> WideBatch {
    let from = Timestamp::from_days(week_start_day);
    let to = Timestamp::from_days(week_start_day + 7);
    let mut records = Vec::new();
    for server in fleet.iter().filter(|s| s.meta.region == region) {
        let lo = server.series.start().max(from);
        let hi = server.series.end().min(to);
        if lo >= hi {
            continue;
        }
        let generator = SignalGenerator::new(server.shape, server.meta.id.0);
        let step = grid_min as i64;
        let mut t = lo;
        while t < hi {
            records.push(WideRecord {
                server_id: server.meta.id,
                timestamp_min: t.minutes(),
                avg_cpu: generator.value(SignalKind::Cpu, t),
                avg_memory: generator.value(SignalKind::Memory, t),
                active_connections: generator.value(SignalKind::Connections, t),
                disk_io_mb_min: generator.value(SignalKind::DiskIo, t),
            });
            t += step;
        }
    }
    WideBatch { records }
}

/// Reassembles one signal's per-server series from a wide batch.
pub fn parse_wide_signal(
    batch: &WideBatch,
    kind: SignalKind,
    grid_min: u32,
) -> Vec<(ServerId, TimeSeries)> {
    let mut by_server: BTreeMap<ServerId, Vec<(i64, f64)>> = BTreeMap::new();
    let step = grid_min as i64;
    for r in &batch.records {
        if r.timestamp_min.rem_euclid(step) != 0 {
            continue;
        }
        by_server
            .entry(r.server_id)
            .or_default()
            .push((r.timestamp_min, r.signal(kind)));
    }
    by_server
        .into_iter()
        .filter_map(|(id, mut points)| {
            points.sort_by_key(|(t, _)| *t);
            let (min_ts, max_ts) = (points.first()?.0, points.last()?.0);
            let n = ((max_ts - min_ts) / step) as usize + 1;
            let mut values = vec![f64::NAN; n];
            for (t, v) in points {
                values[((t - min_ts) / step) as usize] = v;
            }
            TimeSeries::new(Timestamp::from_minutes(min_ts), grid_min, values)
                .ok()
                .map(|s| (id, s))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{FleetGenerator, FleetSpec};

    fn wide_fixture() -> (Vec<ServerTelemetry>, WideBatch, i64) {
        let mut spec = FleetSpec::small_region(19);
        spec.regions[0].servers = 8;
        let start = spec.start_day;
        let fleet = FleetGenerator::new(spec).generate_weeks(1);
        let batch = extract_wide_week(&fleet, "region-a", start, 5);
        (fleet, batch, start)
    }

    #[test]
    fn wide_extraction_covers_all_signals() {
        let (fleet, batch, _) = wide_fixture();
        assert!(!batch.records.is_empty());
        // Every record carries plausible values for every signal.
        for r in &batch.records {
            assert!((0.0..=100.0).contains(&r.avg_cpu));
            assert!((0.0..=100.0).contains(&r.avg_memory));
            assert!(r.active_connections >= 3.0);
            assert!(r.disk_io_mb_min >= 0.0);
        }
        // CPU matches the stored narrow telemetry.
        let first = &fleet
            .iter()
            .find(|s| !s.series.is_empty())
            .expect("nonempty fleet");
        let rec = batch
            .records
            .iter()
            .find(|r| r.server_id == first.meta.id)
            .expect("server present in batch");
        let expect = first
            .series
            .value_at(Timestamp::from_minutes(rec.timestamp_min))
            .unwrap();
        assert!((rec.avg_cpu - expect).abs() < 1e-9);
    }

    #[test]
    fn wide_csv_round_trips() {
        let (_, batch, _) = wide_fixture();
        let decoded = WideBatch::from_csv(&batch.to_csv()).unwrap();
        assert_eq!(decoded.records.len(), batch.records.len());
        for (a, b) in decoded.records.iter().zip(&batch.records) {
            assert_eq!(a.server_id, b.server_id);
            assert_eq!(a.timestamp_min, b.timestamp_min);
            // Two-decimal codec tolerance.
            assert!((a.avg_cpu - b.avg_cpu).abs() <= 0.005 + 1e-9);
            assert!((a.avg_memory - b.avg_memory).abs() <= 0.005 + 1e-9);
        }
    }

    #[test]
    fn wide_csv_rejects_malformed() {
        let err = WideBatch::from_csv(b"wrong header\n").unwrap_err();
        assert_eq!(err.line, 1);
        let short = format!("{WIDE_CSV_HEADER}\n1,2,3\n");
        let err = WideBatch::from_csv(short.as_bytes()).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("6 fields"));
        let bad = format!("{WIDE_CSV_HEADER}\n1,0,1.0,1.0,5,1.0\n1,2,x,4,5,6\n");
        let err = WideBatch::from_csv(bad.as_bytes()).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains('x'));
    }

    #[test]
    fn per_signal_parse_reassembles_series() {
        let (_, batch, start) = wide_fixture();
        for kind in SignalKind::ALL {
            let series = parse_wide_signal(&batch, kind, 5);
            assert!(!series.is_empty());
            for (_, s) in &series {
                assert_eq!(s.step_min(), 5);
                assert!(s.start() >= Timestamp::from_days(start));
                assert_eq!(s.missing_count(), 0, "contiguous week has no gaps");
            }
        }
        // Memory series differ from CPU series (they are distinct signals).
        let cpu = parse_wide_signal(&batch, SignalKind::Cpu, 5);
        let mem = parse_wide_signal(&batch, SignalKind::Memory, 5);
        assert_ne!(cpu[0].1.values(), mem[0].1.values());
    }

    #[test]
    fn signals_can_feed_forecasters() {
        use seagull_timeseries::fill_gaps;
        let (_, batch, _) = wide_fixture();
        let mem = parse_wide_signal(&batch, SignalKind::Memory, 5);
        let (_, mut series) = mem.into_iter().next().unwrap();
        fill_gaps(&mut series, seagull_timeseries::GapFill::Linear);
        // A memory series is a valid forecasting target on the same grid.
        assert_eq!(series.points_per_day(), 288);
        assert!(series.check_finite().is_ok());
    }
}
