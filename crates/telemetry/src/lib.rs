//! # seagull-telemetry
//!
//! Telemetry substrate for the Seagull reproduction: everything the paper's
//! production deployment obtained from Azure is rebuilt here.
//!
//! * [`server`] — server identities, lifecycle metadata, and per-server
//!   telemetry bundles.
//! * [`shape`] — per-class load-shape models (stable, daily pattern, weekly
//!   pattern, unstable) that generate the average-customer-CPU-per-5-minutes
//!   signal the paper forecasts.
//! * [`fleet`] — the seeded fleet generator. Population mix defaults to the
//!   measured Azure distribution of the paper's Figure 3 (42.1 % short-lived,
//!   53.5 % stable, 0.2 % daily/weekly pattern, 4.2 % unstable).
//! * [`record`] — the raw telemetry record schema and CSV codec (the paper's
//!   per-region input files: `server id, timestamp in minutes, average user
//!   CPU load percentage per five minutes, default backup start and end`).
//! * [`blobstore`] — the Azure Data Lake Store substitute: partitioned blobs
//!   keyed by `(region, week)` with in-memory and on-disk backends.
//! * [`columnar`] — the versioned, checksummed binary region-week codec;
//!   decodes into zero-copy series views over one shared buffer.
//! * [`extract`] — the Load Extraction module: the recurring query that
//!   reduces raw telemetry to per-region weekly input files (CSV or
//!   columnar).
//! * [`chaos`] — deterministic fault injection: a [`BlobStore`] decorator
//!   that replays seeded, reproducible fault schedules (transient errors,
//!   torn reads, latency spikes, sliced sustained outages, and seeded
//!   crash kill-points).
//! * [`journal`] — the append-only checksummed journal codec (`SGJL`) the
//!   durability layer uses to record deploys; replay truncates torn tails
//!   and recovers the longest valid prefix.

#![warn(missing_docs)]

pub mod blobstore;
pub mod chaos;
pub mod columnar;
pub mod extract;
pub mod fleet;
pub mod journal;
pub mod record;
pub mod server;
pub mod shape;
pub mod signals;
pub mod wide;

pub use blobstore::{BlobKey, BlobStore, DiskBlobStore, MemoryBlobStore};
pub use chaos::{
    ChaosBlobStore, ChaosConfig, ChaosStats, CrashPoint, CrashSpec, DetRng, InjectedCrash,
};
pub use columnar::{ColumnarBatch, ColumnarError, ServerBlock};
pub use extract::{
    parse_record_rows, parse_region_week, BlobFormat, LoadExtraction, RegionWeekBatch,
    RegionWeekError,
};
pub use fleet::{FleetGenerator, FleetSpec, RegionSpec, ServerTelemetry};
pub use journal::{replay, Journal, JournalError, JournalReplay};
pub use record::{csv_quantized, CsvError, LoadRecord, RecordBatch};
pub use server::{BackupConfig, GeneratedClass, ServerId, ServerMeta};
pub use shape::{LoadShape, ShapeParams};
pub use signals::{SignalGenerator, SignalKind};
pub use wide::{extract_wide_week, parse_wide_signal, WideBatch, WideRecord};
