//! The Load Extraction module.
//!
//! "Load Extraction Module is implemented as a recurring query that extracts
//! relevant data from raw production telemetry and stores this data in Azure
//! Data Lake Store. These files are input to the AML pipeline. ... the load
//! extraction query runs once a week per region" (Section 2.2).
//!
//! Here the "raw production telemetry" is the simulated fleet; the recurring
//! query reduces one week of one region to a blob in the [`BlobStore`] — CSV
//! or columnar, per [`LoadExtraction::format`] — and [`parse_region_week`]
//! sniffs a blob's format by its magic bytes and turns it back into
//! per-server series for the pipeline.

use crate::blobstore::{BlobKey, BlobStore};
use crate::columnar::{self, ColumnarBatch, ColumnarError};
use crate::fleet::ServerTelemetry;
use crate::record::{CsvError, LoadRecord, RecordBatch};
use crate::server::ServerId;
use seagull_timeseries::{DayOfWeek, TimeSeries, Timestamp};
use std::collections::BTreeMap;
use std::fmt;
use std::io;

/// The on-disk encoding of an extracted region-week blob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BlobFormat {
    /// The paper's row-per-sample text format — slow but inspectable.
    #[default]
    Csv,
    /// The checksummed binary format of [`crate::columnar`] — decodes into
    /// zero-copy series views.
    Columnar,
}

/// Extraction configuration.
#[derive(Debug, Clone, Copy)]
pub struct LoadExtraction {
    /// Telemetry grid in minutes.
    pub grid_min: u32,
    /// Blob encoding written by [`LoadExtraction::run`].
    pub format: BlobFormat,
}

impl Default for LoadExtraction {
    fn default() -> Self {
        LoadExtraction {
            grid_min: 5,
            format: BlobFormat::Csv,
        }
    }
}

impl LoadExtraction {
    /// CSV extraction on the given grid.
    pub fn csv(grid_min: u32) -> LoadExtraction {
        LoadExtraction {
            grid_min,
            format: BlobFormat::Csv,
        }
    }

    /// Columnar extraction on the given grid.
    pub fn columnar(grid_min: u32) -> LoadExtraction {
        LoadExtraction {
            grid_min,
            format: BlobFormat::Columnar,
        }
    }
}

/// One server's extracted week, as consumed by the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractedServer {
    /// Server the series belongs to.
    pub id: ServerId,
    /// The week's load on the grid; missing buckets are NaN.
    pub series: TimeSeries,
    /// Default backup window start for the server's next backup day.
    pub default_backup_start: Timestamp,
    /// Default backup window end.
    pub default_backup_end: Timestamp,
}

impl LoadExtraction {
    /// Builds the record batch for one region-week from fleet telemetry.
    ///
    /// `week_start_day` is the first day of the week (any day index). Only
    /// servers in `region` with data inside the week are emitted.
    pub fn extract_week(
        &self,
        fleet: &[ServerTelemetry],
        region: &str,
        week_start_day: i64,
    ) -> RecordBatch {
        let from = Timestamp::from_days(week_start_day);
        let to = Timestamp::from_days(week_start_day + 7);
        let mut records = Vec::new();
        for server in fleet.iter().filter(|s| s.meta.region == region) {
            // Default backup window on the server's next backup day in/after
            // this week.
            let backup_day = (0..7)
                .map(|o| week_start_day + o)
                .find(|&d| {
                    DayOfWeek::from_day_index(d).index()
                        == server.meta.backup.backup_weekday as usize
                })
                .expect("every weekday occurs within a week");
            let (bstart, bend) = server.meta.backup.default_window_on(backup_day);

            let lo = server.series.start().max(from);
            let hi = server.series.end().min(to);
            if lo >= hi {
                continue;
            }
            let slice = server
                .series
                .slice_values(lo, hi)
                .expect("range intersected with coverage");
            for (i, &v) in slice.iter().enumerate() {
                if v.is_nan() {
                    continue; // Missing raw buckets simply produce no row.
                }
                records.push(LoadRecord {
                    server_id: server.meta.id,
                    timestamp_min: (lo + i as i64 * self.grid_min as i64).minutes(),
                    avg_cpu: v,
                    default_backup_start: bstart.minutes(),
                    default_backup_end: bend.minutes(),
                });
            }
        }
        RecordBatch::new(records)
    }

    /// Runs the recurring query: one blob per region per week, written to the
    /// store under [`BlobKey::extracted`] with `week` set to the week's first
    /// day index. Returns the keys written.
    pub fn run(
        &self,
        fleet: &[ServerTelemetry],
        regions: &[String],
        week_start_days: &[i64],
        store: &dyn BlobStore,
    ) -> io::Result<Vec<BlobKey>> {
        let mut keys = Vec::new();
        for region in regions {
            for &week in week_start_days {
                let batch = self.extract_week(fleet, region, week);
                let key = BlobKey::extracted(region, week);
                let blob = match self.format {
                    BlobFormat::Csv => batch.to_csv(),
                    BlobFormat::Columnar => {
                        ColumnarBatch::from_records(&batch, self.grid_min).encode()
                    }
                };
                store.put(&key, blob)?;
                keys.push(key);
            }
        }
        Ok(keys)
    }
}

/// A decode failure for a region-week blob, tagged by format.
#[derive(Debug, Clone, PartialEq)]
pub enum RegionWeekError {
    /// The blob sniffed as CSV and failed to parse.
    Csv(CsvError),
    /// The blob sniffed as columnar and failed to decode.
    Columnar(ColumnarError),
}

impl fmt::Display for RegionWeekError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegionWeekError::Csv(e) => write!(f, "{e}"),
            RegionWeekError::Columnar(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RegionWeekError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegionWeekError::Csv(e) => Some(e),
            RegionWeekError::Columnar(e) => Some(e),
        }
    }
}

impl From<CsvError> for RegionWeekError {
    fn from(e: CsvError) -> Self {
        RegionWeekError::Csv(e)
    }
}

impl From<ColumnarError> for RegionWeekError {
    fn from(e: ColumnarError) -> Self {
        RegionWeekError::Columnar(e)
    }
}

/// A region-week blob decoded into whichever representation it was stored as.
///
/// Keeping both variants (rather than eagerly converting to rows) lets the
/// validation module inspect the columnar block table directly and lets
/// [`RegionWeekBatch::extract`] hand out zero-copy series views for the
/// columnar case.
#[derive(Debug, Clone, PartialEq)]
pub enum RegionWeekBatch {
    /// Decoded CSV rows.
    Csv(RecordBatch),
    /// Decoded columnar batch (zero-copy series views).
    Columnar(ColumnarBatch),
}

impl RegionWeekBatch {
    /// Decodes a blob, sniffing the format by its magic bytes. Anything that
    /// does not start with the columnar magic is treated as CSV.
    pub fn decode(blob: &[u8]) -> Result<RegionWeekBatch, RegionWeekError> {
        if columnar::is_columnar(blob) {
            Ok(RegionWeekBatch::Columnar(ColumnarBatch::decode(blob)?))
        } else {
            Ok(RegionWeekBatch::Csv(RecordBatch::from_csv(blob)?))
        }
    }

    /// The format this blob was stored as.
    pub fn format(&self) -> BlobFormat {
        match self {
            RegionWeekBatch::Csv(_) => BlobFormat::Csv,
            RegionWeekBatch::Columnar(_) => BlobFormat::Columnar,
        }
    }

    /// Number of decoded rows (CSV) or present samples (columnar).
    pub fn rows(&self) -> usize {
        match self {
            RegionWeekBatch::Csv(batch) => batch.len(),
            RegionWeekBatch::Columnar(batch) => {
                batch.values().iter().filter(|v| !v.is_nan()).count()
            }
        }
    }

    /// Reassembles per-server series. CSV rows are re-gridded; columnar
    /// blocks become views into the shared decode buffer without copying.
    pub fn extract(&self, grid_min: u32) -> Vec<ExtractedServer> {
        match self {
            RegionWeekBatch::Csv(batch) => parse_record_rows(batch, grid_min),
            RegionWeekBatch::Columnar(batch) => batch.extract(),
        }
    }
}

/// Decodes a region-week blob (CSV or columnar, sniffed by magic bytes) and
/// reassembles per-server series.
///
/// For columnar blobs the returned series are zero-copy views into one shared
/// decode buffer; for CSV they are re-gridded copies.
pub fn parse_region_week(
    blob: &[u8],
    grid_min: u32,
) -> Result<Vec<ExtractedServer>, RegionWeekError> {
    Ok(RegionWeekBatch::decode(blob)?.extract(grid_min))
}

/// Reassembles per-server series from decoded CSV rows.
///
/// Rows may arrive in any order; buckets absent from the batch become NaN
/// (missing) so the validation module can count them. Rows that do not lie on
/// the grid are dropped (production telemetry contains stragglers).
pub fn parse_record_rows(batch: &RecordBatch, grid_min: u32) -> Vec<ExtractedServer> {
    struct Acc {
        min_ts: i64,
        max_ts: i64,
        points: Vec<(i64, f64)>,
        backup_start: i64,
        backup_end: i64,
    }
    let mut by_server: BTreeMap<ServerId, Acc> = BTreeMap::new();
    let step = grid_min as i64;
    for r in &batch.records {
        if r.timestamp_min.rem_euclid(step) != 0 {
            continue;
        }
        let acc = by_server.entry(r.server_id).or_insert_with(|| Acc {
            min_ts: r.timestamp_min,
            max_ts: r.timestamp_min,
            points: Vec::new(),
            backup_start: r.default_backup_start,
            backup_end: r.default_backup_end,
        });
        acc.min_ts = acc.min_ts.min(r.timestamp_min);
        acc.max_ts = acc.max_ts.max(r.timestamp_min);
        acc.points.push((r.timestamp_min, r.avg_cpu));
    }
    by_server
        .into_iter()
        .map(|(id, acc)| {
            let n = ((acc.max_ts - acc.min_ts) / step) as usize + 1;
            let mut values = vec![f64::NAN; n];
            for (ts, v) in acc.points {
                values[((ts - acc.min_ts) / step) as usize] = v;
            }
            let series = TimeSeries::new(Timestamp::from_minutes(acc.min_ts), grid_min, values)
                .expect("grid-aligned rows");
            ExtractedServer {
                id,
                series,
                default_backup_start: Timestamp::from_minutes(acc.backup_start),
                default_backup_end: Timestamp::from_minutes(acc.backup_end),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blobstore::MemoryBlobStore;
    use crate::fleet::{FleetGenerator, FleetSpec};

    fn small_fleet() -> (Vec<ServerTelemetry>, i64) {
        let mut spec = FleetSpec::small_region(77);
        spec.regions[0].servers = 20;
        let start = spec.start_day;
        (FleetGenerator::new(spec).generate_weeks(1), start)
    }

    #[test]
    fn extract_then_parse_round_trips_series() {
        let (fleet, start) = small_fleet();
        let ex = LoadExtraction::default();
        let batch = ex.extract_week(&fleet, "region-a", start);
        assert!(!batch.is_empty());
        let servers = parse_record_rows(&batch, 5);
        // Every long-lived generated server appears with its full week.
        for s in &fleet {
            if s.series.is_empty() {
                continue;
            }
            let got = servers.iter().find(|e| e.id == s.meta.id);
            let got = got.unwrap_or_else(|| panic!("server {} missing", s.meta.id));
            // Values round-trip through the two-decimal CSV encoding.
            let lo = got.series.start();
            let expected = s.series.slice_values(lo, got.series.end()).unwrap();
            for (a, b) in got.series.values().iter().zip(expected) {
                assert!((a - b).abs() <= 0.005 + 1e-9, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn backup_window_lands_on_configured_weekday() {
        let (fleet, start) = small_fleet();
        let ex = LoadExtraction::default();
        let batch = ex.extract_week(&fleet, "region-a", start);
        let servers = parse_record_rows(&batch, 5);
        for e in &servers {
            let meta = &fleet.iter().find(|s| s.meta.id == e.id).unwrap().meta;
            let day = e.default_backup_start.day_index();
            assert_eq!(
                DayOfWeek::from_day_index(day).index(),
                meta.backup.backup_weekday as usize
            );
            assert!(day >= start && day < start + 7);
            assert_eq!(
                e.default_backup_end - e.default_backup_start,
                meta.backup.duration_min as i64
            );
        }
    }

    #[test]
    fn run_writes_one_blob_per_region_week() {
        let (fleet, start) = small_fleet();
        let store = MemoryBlobStore::new();
        let ex = LoadExtraction::default();
        let keys = ex
            .run(
                &fleet,
                &["region-a".to_string(), "ghost".to_string()],
                &[start],
                &store,
            )
            .unwrap();
        assert_eq!(keys.len(), 2);
        assert!(store.size(&BlobKey::extracted("region-a", start)).unwrap() > 0);
        // Unknown region still yields a (header-only) blob.
        let ghost = store.get(&BlobKey::extracted("ghost", start)).unwrap();
        let parsed = RecordBatch::from_csv(&ghost).unwrap();
        assert!(parsed.is_empty());
    }

    #[test]
    fn off_grid_rows_dropped_and_gaps_marked() {
        use crate::record::LoadRecord;
        let batch = RecordBatch::new(vec![
            LoadRecord {
                server_id: ServerId(9),
                timestamp_min: 0,
                avg_cpu: 1.0,
                default_backup_start: 0,
                default_backup_end: 60,
            },
            LoadRecord {
                server_id: ServerId(9),
                timestamp_min: 3, // off-grid straggler
                avg_cpu: 99.0,
                default_backup_start: 0,
                default_backup_end: 60,
            },
            LoadRecord {
                server_id: ServerId(9),
                timestamp_min: 10,
                avg_cpu: 2.0,
                default_backup_start: 0,
                default_backup_end: 60,
            },
        ]);
        let servers = parse_record_rows(&batch, 5);
        assert_eq!(servers.len(), 1);
        let s = &servers[0].series;
        assert_eq!(s.len(), 3);
        assert_eq!(s.values()[0], 1.0);
        assert!(s.values()[1].is_nan());
        assert_eq!(s.values()[2], 2.0);
    }

    #[test]
    fn unsorted_rows_are_handled() {
        use crate::record::LoadRecord;
        let mk = |ts, v| LoadRecord {
            server_id: ServerId(1),
            timestamp_min: ts,
            avg_cpu: v,
            default_backup_start: 0,
            default_backup_end: 60,
        };
        let batch = RecordBatch::new(vec![mk(10, 3.0), mk(0, 1.0), mk(5, 2.0)]);
        let servers = parse_record_rows(&batch, 5);
        assert_eq!(servers[0].series.values(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn columnar_run_round_trips_through_sniffing_parse() {
        let (fleet, start) = small_fleet();
        let store = MemoryBlobStore::new();
        let csv_keys = LoadExtraction::csv(5)
            .run(&fleet, &["region-a".to_string()], &[start], &store)
            .unwrap();
        let csv_blob = store.get(&csv_keys[0]).unwrap();

        let col_store = MemoryBlobStore::new();
        let col_keys = LoadExtraction::columnar(5)
            .run(&fleet, &["region-a".to_string()], &[start], &col_store)
            .unwrap();
        let col_blob = col_store.get(&col_keys[0]).unwrap();

        assert!(columnar::is_columnar(&col_blob));
        assert!(!columnar::is_columnar(&csv_blob));
        assert!(col_blob.len() < csv_blob.len(), "columnar should be denser");

        let from_csv = parse_region_week(&csv_blob, 5).unwrap();
        let from_col = parse_region_week(&col_blob, 5).unwrap();
        assert_eq!(from_csv, from_col);
    }

    #[test]
    fn columnar_extract_shares_one_decode_buffer() {
        let (fleet, start) = small_fleet();
        let blob = ColumnarBatch::from_records(
            &LoadExtraction::csv(5).extract_week(&fleet, "region-a", start),
            5,
        )
        .encode();
        let decoded = match RegionWeekBatch::decode(&blob).unwrap() {
            RegionWeekBatch::Columnar(batch) => batch,
            other => panic!("expected columnar, got {:?}", other.format()),
        };
        let servers = decoded.extract();
        assert!(servers.len() > 1);
        for s in &servers {
            assert!(std::sync::Arc::ptr_eq(s.series.storage(), decoded.values()));
        }
    }

    #[test]
    fn decode_errors_carry_format() {
        let torn = {
            let blob = ColumnarBatch::from_records(&RecordBatch::default(), 5).encode();
            blob.slice(0..blob.len() - 1)
        };
        match RegionWeekBatch::decode(&torn) {
            Err(RegionWeekError::Columnar(_)) => {}
            other => panic!("expected columnar error, got {other:?}"),
        }
        match RegionWeekBatch::decode(b"not,a,known,header\n") {
            Err(RegionWeekError::Csv(_)) => {}
            other => panic!("expected csv error, got {other:?}"),
        }
    }
}
