//! The columnar region-week blob codec.
//!
//! The CSV codec in [`crate::record`] spells every 5-minute sample as a text
//! row; a 1k-server region-week is ~2M rows, and decoding them dominates the
//! pipeline's ingestion stage. [`ColumnarBatch`] stores the same region-week
//! as a binary blob: a block table describing each server's grid, followed by
//! one contiguous little-endian `f64` column holding every server's values
//! back to back (missing buckets are NaN, as everywhere else), closed by a
//! checksum footer. Decoding is a bounds-checked `memcpy` into **one** shared
//! buffer, and each server's series becomes a zero-copy
//! [`seagull_timeseries::TimeSeries`] view into it.
//!
//! The checksum exists for the failure mode [`crate::chaos::ChaosBlobStore`]
//! injects: a torn read returns a strict prefix of the blob, which for CSV
//! silently parses as a *shorter valid file*. A torn columnar blob fails the
//! checksum and the pipeline retries the read instead of training on
//! truncated series.
//!
//! ## Wire layout (version 1, all little-endian)
//!
//! ```text
//! [0..4)    magic  b"SGCB"
//! [4..6)    version u16 (= 1)
//! [6..8)    reserved u16 (= 0)
//! [8..12)   server block count u32
//! ...       block table, 40 bytes per server:
//!             server_id u64, default_backup_start i64,
//!             default_backup_end i64, series_start_min i64,
//!             step_min u32, point count u32
//! ...       value column: every server's points, concatenated, f64 bits
//! [-8..)    checksum u64 over all preceding bytes
//! ```

use crate::extract::ExtractedServer;
use crate::record::{csv_quantized, RecordBatch};
use crate::server::ServerId;
use bytes::Bytes;
use seagull_timeseries::{TimeSeries, Timestamp, MINUTES_PER_DAY};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Leading magic bytes of a columnar region-week blob.
pub const COLUMNAR_MAGIC: [u8; 4] = *b"SGCB";
/// Current wire version.
pub const COLUMNAR_VERSION: u16 = 1;

const HEADER_LEN: usize = 12;
const BLOCK_LEN: usize = 40;
const FOOTER_LEN: usize = 8;

/// True if `blob` carries the columnar magic (format sniffing; a CSV blob
/// starts with its text header and can never match).
pub fn is_columnar(blob: &[u8]) -> bool {
    blob.len() >= COLUMNAR_MAGIC.len() && blob[..COLUMNAR_MAGIC.len()] == COLUMNAR_MAGIC
}

/// A decode failure. Every variant means "the blob is not usable as read":
/// the pipeline treats them all as transient (a re-read of a torn blob
/// yields the full bytes), never as silently shorter data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnarError {
    /// The magic bytes are absent — this is not a columnar blob.
    NotColumnar,
    /// The blob is shorter than its declared structure.
    Truncated {
        /// Bytes the header/table said should be present.
        expected: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The footer checksum does not match the bytes (torn or corrupt read).
    ChecksumMismatch {
        /// Checksum recorded in the footer.
        stored: u64,
        /// Checksum recomputed over the payload.
        computed: u64,
    },
    /// A version this build does not read.
    UnsupportedVersion {
        /// The version found in the header.
        version: u16,
    },
    /// A block table entry describing an impossible grid.
    InvalidBlock {
        /// Server whose block entry is invalid.
        server_id: u64,
    },
}

impl fmt::Display for ColumnarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnarError::NotColumnar => write!(f, "blob lacks the columnar magic"),
            ColumnarError::Truncated { expected, got } => {
                write!(
                    f,
                    "columnar blob truncated: expected {expected} bytes, got {got}"
                )
            }
            ColumnarError::ChecksumMismatch { stored, computed } => write!(
                f,
                "columnar checksum mismatch: footer {stored:#018x}, computed {computed:#018x}"
            ),
            ColumnarError::UnsupportedVersion { version } => {
                write!(f, "unsupported columnar version {version}")
            }
            ColumnarError::InvalidBlock { server_id } => {
                write!(f, "invalid block table entry for server {server_id}")
            }
        }
    }
}

impl std::error::Error for ColumnarError {}

/// One server's entry in the block table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerBlock {
    /// Server the block belongs to.
    pub server_id: ServerId,
    /// Default backup window start (minutes since epoch).
    pub default_backup_start: i64,
    /// Default backup window end (minutes since epoch).
    pub default_backup_end: i64,
    /// First grid point of the series (minutes since epoch).
    pub series_start_min: i64,
    /// Grid step in minutes.
    pub step_min: u32,
    /// Start of this server's points inside the shared value column.
    pub offset: usize,
    /// Number of points.
    pub len: usize,
}

impl ServerBlock {
    /// Timestamp (minutes since epoch) of point `i`.
    #[inline]
    pub fn timestamp_at(&self, i: usize) -> i64 {
        self.series_start_min + i as i64 * self.step_min as i64
    }
}

/// A decoded (or to-be-encoded) columnar region-week: the block table plus
/// one shared value column every server's series views into.
#[derive(Debug, Clone)]
pub struct ColumnarBatch {
    blocks: Vec<ServerBlock>,
    values: Arc<[f64]>,
}

/// Bit-wise value equality: NaN buckets (missing samples) compare equal, so a
/// decode of an encode is `==` its source.
impl PartialEq for ColumnarBatch {
    fn eq(&self, other: &ColumnarBatch) -> bool {
        self.blocks == other.blocks
            && self.values.len() == other.values.len()
            && self
                .values
                .iter()
                .zip(other.values.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }
}

impl ColumnarBatch {
    /// Builds a columnar batch from raw telemetry rows, applying exactly the
    /// gridding the CSV ingest path applies when reassembling series: rows
    /// off the `grid_min` grid are dropped, each server spans its own
    /// `min..=max` timestamp range with absent buckets as NaN, later
    /// duplicates overwrite earlier ones, and values are quantized through
    /// [`csv_quantized`]. Both formats therefore produce bit-identical
    /// [`ExtractedServer`]s from the same rows.
    pub fn from_records(batch: &RecordBatch, grid_min: u32) -> ColumnarBatch {
        struct Acc {
            min_ts: i64,
            max_ts: i64,
            points: Vec<(i64, f64)>,
            backup_start: i64,
            backup_end: i64,
        }
        let step = grid_min as i64;
        let mut by_server: BTreeMap<ServerId, Acc> = BTreeMap::new();
        for r in &batch.records {
            if r.timestamp_min.rem_euclid(step) != 0 {
                continue;
            }
            let acc = by_server.entry(r.server_id).or_insert_with(|| Acc {
                min_ts: r.timestamp_min,
                max_ts: r.timestamp_min,
                points: Vec::new(),
                backup_start: r.default_backup_start,
                backup_end: r.default_backup_end,
            });
            acc.min_ts = acc.min_ts.min(r.timestamp_min);
            acc.max_ts = acc.max_ts.max(r.timestamp_min);
            acc.points.push((r.timestamp_min, r.avg_cpu));
        }
        let mut blocks = Vec::with_capacity(by_server.len());
        let mut values: Vec<f64> = Vec::new();
        for (id, acc) in by_server {
            let n = ((acc.max_ts - acc.min_ts) / step) as usize + 1;
            let offset = values.len();
            values.resize(offset + n, f64::NAN);
            for (ts, v) in acc.points {
                values[offset + ((ts - acc.min_ts) / step) as usize] = csv_quantized(v);
            }
            blocks.push(ServerBlock {
                server_id: id,
                default_backup_start: acc.backup_start,
                default_backup_end: acc.backup_end,
                series_start_min: acc.min_ts,
                step_min: grid_min,
                offset,
                len: n,
            });
        }
        ColumnarBatch {
            blocks,
            values: values.into(),
        }
    }

    /// The block table, sorted by server id.
    pub fn blocks(&self) -> &[ServerBlock] {
        &self.blocks
    }

    /// The shared value column.
    pub fn values(&self) -> &Arc<[f64]> {
        &self.values
    }

    /// One server's slice of the value column.
    pub fn block_values(&self, block: &ServerBlock) -> &[f64] {
        &self.values[block.offset..block.offset + block.len]
    }

    /// Number of server blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if no server has any data.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Total points in the value column.
    pub fn total_points(&self) -> usize {
        self.values.len()
    }

    /// Encodes to the versioned wire layout with a trailing checksum.
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::with_capacity(
            HEADER_LEN + self.blocks.len() * BLOCK_LEN + self.values.len() * 8 + FOOTER_LEN,
        );
        out.extend_from_slice(&COLUMNAR_MAGIC);
        out.extend_from_slice(&COLUMNAR_VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes());
        out.extend_from_slice(&(self.blocks.len() as u32).to_le_bytes());
        for b in &self.blocks {
            out.extend_from_slice(&b.server_id.0.to_le_bytes());
            out.extend_from_slice(&b.default_backup_start.to_le_bytes());
            out.extend_from_slice(&b.default_backup_end.to_le_bytes());
            out.extend_from_slice(&b.series_start_min.to_le_bytes());
            out.extend_from_slice(&b.step_min.to_le_bytes());
            out.extend_from_slice(&(b.len as u32).to_le_bytes());
        }
        for v in self.values.iter() {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        let sum = checksum64(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        Bytes::from(out)
    }

    /// Decodes a blob, verifying the checksum *before* trusting any of the
    /// structure so a torn read (a strict byte prefix) is reported as
    /// [`ColumnarError::ChecksumMismatch`] rather than parsed as shorter
    /// data.
    pub fn decode(blob: &[u8]) -> Result<ColumnarBatch, ColumnarError> {
        if !is_columnar(blob) {
            return Err(ColumnarError::NotColumnar);
        }
        if blob.len() < HEADER_LEN + FOOTER_LEN {
            return Err(ColumnarError::Truncated {
                expected: HEADER_LEN + FOOTER_LEN,
                got: blob.len(),
            });
        }
        let body = &blob[..blob.len() - FOOTER_LEN];
        let stored = u64::from_le_bytes(blob[blob.len() - FOOTER_LEN..].try_into().unwrap());
        let computed = checksum64(body);
        if stored != computed {
            return Err(ColumnarError::ChecksumMismatch { stored, computed });
        }
        let version = u16::from_le_bytes(blob[4..6].try_into().unwrap());
        if version != COLUMNAR_VERSION {
            return Err(ColumnarError::UnsupportedVersion { version });
        }
        let count = u32::from_le_bytes(blob[8..12].try_into().unwrap()) as usize;
        let table_end = HEADER_LEN + count * BLOCK_LEN;
        if body.len() < table_end {
            return Err(ColumnarError::Truncated {
                expected: table_end + FOOTER_LEN,
                got: blob.len(),
            });
        }
        let mut blocks = Vec::with_capacity(count);
        let mut offset = 0usize;
        for i in 0..count {
            let at = HEADER_LEN + i * BLOCK_LEN;
            let f = &blob[at..at + BLOCK_LEN];
            let block = ServerBlock {
                server_id: ServerId(u64::from_le_bytes(f[0..8].try_into().unwrap())),
                default_backup_start: i64::from_le_bytes(f[8..16].try_into().unwrap()),
                default_backup_end: i64::from_le_bytes(f[16..24].try_into().unwrap()),
                series_start_min: i64::from_le_bytes(f[24..32].try_into().unwrap()),
                step_min: u32::from_le_bytes(f[32..36].try_into().unwrap()),
                offset,
                len: u32::from_le_bytes(f[36..40].try_into().unwrap()) as usize,
            };
            let step = block.step_min;
            if step == 0
                || MINUTES_PER_DAY % step as i64 != 0
                || block.series_start_min.rem_euclid(step as i64) != 0
            {
                return Err(ColumnarError::InvalidBlock {
                    server_id: block.server_id.0,
                });
            }
            offset += block.len;
            blocks.push(block);
        }
        let expected = table_end + offset * 8 + FOOTER_LEN;
        if blob.len() != expected {
            return Err(ColumnarError::Truncated {
                expected,
                got: blob.len(),
            });
        }
        let mut values = Vec::with_capacity(offset);
        for chunk in body[table_end..].chunks_exact(8) {
            values.push(f64::from_bits(u64::from_le_bytes(
                chunk.try_into().unwrap(),
            )));
        }
        Ok(ColumnarBatch {
            blocks,
            values: values.into(),
        })
    }

    /// Reassembles per-server series as zero-copy views into the shared
    /// value column — every returned series' storage is the same `Arc`
    /// buffer.
    pub fn extract(&self) -> Vec<ExtractedServer> {
        self.blocks
            .iter()
            .map(|b| ExtractedServer {
                id: b.server_id,
                series: TimeSeries::from_shared(
                    Timestamp::from_minutes(b.series_start_min),
                    b.step_min,
                    Arc::clone(&self.values),
                    b.offset,
                    b.len,
                )
                .expect("block table validated at decode"),
                default_backup_start: Timestamp::from_minutes(b.default_backup_start),
                default_backup_end: Timestamp::from_minutes(b.default_backup_end),
            })
            .collect()
    }
}

/// FNV-1a folded over 8-byte little-endian words (with the tail length mixed
/// into the last word). Order-sensitive and cheap — this is an integrity
/// check against torn/corrupt reads, not an adversarial hash.
pub fn checksum64(data: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        h ^= u64::from_le_bytes(c.try_into().unwrap());
        h = h.wrapping_mul(PRIME);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut last = [0u8; 8];
        last[..rem.len()].copy_from_slice(rem);
        h ^= u64::from_le_bytes(last) ^ ((rem.len() as u64) << 56);
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::LoadRecord;

    fn rec(server: u64, ts: i64, cpu: f64) -> LoadRecord {
        LoadRecord {
            server_id: ServerId(server),
            timestamp_min: ts,
            avg_cpu: cpu,
            default_backup_start: 1440,
            default_backup_end: 1500,
        }
    }

    fn sample() -> ColumnarBatch {
        ColumnarBatch::from_records(
            &RecordBatch::new(vec![
                rec(2, 10, 30.0),
                rec(1, 0, 12.345),
                rec(1, 10, 20.0),
                rec(2, 5, 25.0),
            ]),
            5,
        )
    }

    #[test]
    fn encode_decode_round_trips() {
        let batch = sample();
        let blob = batch.encode();
        assert!(is_columnar(&blob));
        let back = ColumnarBatch::decode(&blob).unwrap();
        assert_eq!(back, batch);
    }

    #[test]
    fn encode_is_byte_stable() {
        assert_eq!(sample().encode(), sample().encode());
    }

    #[test]
    fn gridding_matches_csv_reassembly() {
        let batch = sample();
        // Server 1 spans 0..=10 with a NaN gap at 5.
        let b1 = &batch.blocks()[0];
        assert_eq!(b1.server_id, ServerId(1));
        assert_eq!(b1.len, 3);
        let vals = batch.block_values(b1);
        assert_eq!(vals[0], csv_quantized(12.345));
        assert!(vals[1].is_nan());
        assert_eq!(vals[2], 20.0);
    }

    #[test]
    fn off_grid_rows_dropped() {
        let batch =
            ColumnarBatch::from_records(&RecordBatch::new(vec![rec(1, 0, 1.0), rec(1, 3, 9.0)]), 5);
        assert_eq!(batch.blocks()[0].len, 1);
    }

    #[test]
    fn torn_prefix_fails_checksum() {
        let blob = sample().encode();
        for cut in 5..blob.len() {
            let torn = &blob[..cut];
            match ColumnarBatch::decode(torn) {
                Err(ColumnarError::ChecksumMismatch { .. })
                | Err(ColumnarError::Truncated { .. }) => {}
                other => panic!("torn read at {cut} must fail decode, got {other:?}"),
            }
        }
    }

    #[test]
    fn corrupt_byte_fails_checksum() {
        let blob = sample().encode().to_vec();
        for i in [4, HEADER_LEN + 1, blob.len() / 2, blob.len() - 9] {
            let mut bad = blob.clone();
            bad[i] ^= 0x40;
            assert!(
                matches!(
                    ColumnarBatch::decode(&bad),
                    Err(ColumnarError::ChecksumMismatch { .. })
                ),
                "flip at {i} must fail the checksum"
            );
        }
    }

    #[test]
    fn csv_blob_is_not_columnar() {
        let csv = RecordBatch::new(vec![rec(1, 0, 1.0)]).to_csv();
        assert!(!is_columnar(&csv));
        assert_eq!(ColumnarBatch::decode(&csv), Err(ColumnarError::NotColumnar));
    }

    #[test]
    fn unsupported_version_rejected() {
        let mut blob = sample().encode().to_vec();
        blob[4] = 9; // bump version…
        let sum = checksum64(&blob[..blob.len() - FOOTER_LEN]);
        let at = blob.len() - FOOTER_LEN;
        blob[at..].copy_from_slice(&sum.to_le_bytes()); // …with a valid checksum
        assert_eq!(
            ColumnarBatch::decode(&blob),
            Err(ColumnarError::UnsupportedVersion { version: 9 })
        );
    }

    #[test]
    fn extract_yields_views_into_one_buffer() {
        let batch = sample();
        let servers = batch.extract();
        assert_eq!(servers.len(), 2);
        for s in &servers {
            assert!(
                Arc::ptr_eq(s.series.storage(), batch.values()),
                "server {} series must view the shared decode buffer",
                s.id
            );
        }
        assert_eq!(
            servers[0].default_backup_start,
            Timestamp::from_minutes(1440)
        );
        assert_eq!(servers[0].default_backup_end, Timestamp::from_minutes(1500));
    }

    #[test]
    fn empty_batch_round_trips() {
        let empty = ColumnarBatch::from_records(&RecordBatch::default(), 5);
        assert!(empty.is_empty());
        let back = ColumnarBatch::decode(&empty.encode()).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.total_points(), 0);
    }

    #[test]
    fn nan_payloads_survive_the_wire() {
        let batch = sample();
        let back = ColumnarBatch::decode(&batch.encode()).unwrap();
        let b1 = &back.blocks()[0];
        assert!(back.block_values(b1)[1].is_nan());
    }
}
