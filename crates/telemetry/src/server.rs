//! Server identity, lifecycle, and backup configuration.

use seagull_timeseries::Timestamp;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A fleet-unique server identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ServerId(pub u64);

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "srv-{:08}", self.0)
    }
}

/// Which load archetype a server was *generated* as.
///
/// This is ground truth known only to the simulator. Seagull's classifier
/// (Definitions 3–6 of the paper, implemented in `seagull-core::classify`)
/// must *recover* this structure from the load alone; experiments compare the
/// recovered classes against these labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GeneratedClass {
    /// Near-constant load.
    Stable,
    /// Strong pattern repeating every day (e.g. an automated recurring job).
    DailyPattern,
    /// Weekday/weekend structure repeating every week.
    WeeklyPattern,
    /// Regime switches and bursts; conforms to no recognizable pattern.
    Unstable,
}

impl GeneratedClass {
    /// Short label used by experiment output.
    pub fn label(self) -> &'static str {
        match self {
            GeneratedClass::Stable => "stable",
            GeneratedClass::DailyPattern => "daily",
            GeneratedClass::WeeklyPattern => "weekly",
            GeneratedClass::Unstable => "unstable",
        }
    }
}

/// Default backup window configuration for a server.
///
/// The paper's motivation: backups are scheduled "by an automated workflow
/// that does not take typical customer activity patterns into account", so
/// the default start time is arbitrary relative to load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BackupConfig {
    /// Minute-of-day when the default full backup begins (0..1440).
    pub default_start_minute: u32,
    /// Expected duration of a full backup, in minutes (multiple of the grid).
    pub duration_min: u32,
    /// Day of the week the server is due for its full backup, as a
    /// Monday-based index 0..7. Servers are due "at least once a week".
    pub backup_weekday: u8,
}

impl BackupConfig {
    /// Default backup window `[start, end)` on the given day.
    pub fn default_window_on(&self, day_index: i64) -> (Timestamp, Timestamp) {
        let start = Timestamp::from_days(day_index) + self.default_start_minute as i64;
        (start, start + self.duration_min as i64)
    }
}

/// Static metadata for one server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerMeta {
    /// Fleet-unique identifier.
    pub id: ServerId,
    /// Region the server lives in (pipelines run per region).
    pub region: String,
    /// First day (inclusive) the server existed.
    pub created_day: i64,
    /// First day (exclusive) the server no longer exists; `None` = still alive.
    pub deleted_day: Option<i64>,
    /// Ground-truth generated load class.
    pub class: GeneratedClass,
    /// Backup window configuration.
    pub backup: BackupConfig,
}

impl ServerMeta {
    /// Lifespan in whole days as of `as_of_day` (exclusive).
    pub fn lifespan_days(&self, as_of_day: i64) -> i64 {
        let end = self.deleted_day.unwrap_or(as_of_day).min(as_of_day);
        (end - self.created_day).max(0)
    }

    /// True if the server exists on the given day.
    pub fn alive_on(&self, day_index: i64) -> bool {
        day_index >= self.created_day && self.deleted_day.is_none_or(|d| day_index < d)
    }

    /// Paper Definition 3: long-lived iff it existed more than three weeks.
    pub fn is_long_lived(&self, as_of_day: i64) -> bool {
        self.lifespan_days(as_of_day) > 21
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(created: i64, deleted: Option<i64>) -> ServerMeta {
        ServerMeta {
            id: ServerId(1),
            region: "test".into(),
            created_day: created,
            deleted_day: deleted,
            class: GeneratedClass::Stable,
            backup: BackupConfig {
                default_start_minute: 600,
                duration_min: 60,
                backup_weekday: 2,
            },
        }
    }

    #[test]
    fn lifespan_and_longevity() {
        let m = meta(0, None);
        assert_eq!(m.lifespan_days(10), 10);
        assert!(!m.is_long_lived(21));
        assert!(!m.is_long_lived(21));
        assert!(m.is_long_lived(22));
        let gone = meta(0, Some(5));
        assert_eq!(gone.lifespan_days(10), 5);
        assert!(!gone.is_long_lived(100));
    }

    #[test]
    fn alive_on_respects_bounds() {
        let m = meta(3, Some(7));
        assert!(!m.alive_on(2));
        assert!(m.alive_on(3));
        assert!(m.alive_on(6));
        assert!(!m.alive_on(7));
        let forever = meta(3, None);
        assert!(forever.alive_on(1_000_000));
    }

    #[test]
    fn default_window() {
        let m = meta(0, None);
        let (s, e) = m.backup.default_window_on(4);
        assert_eq!(s, Timestamp::from_days(4) + 600);
        assert_eq!(e - s, 60);
    }

    #[test]
    fn display_id() {
        assert_eq!(ServerId(42).to_string(), "srv-00000042");
    }
}
