//! The Section 5 model bake-off on a single unstable server: every model
//! family forecasts the same backup day, scored with the paper's low-load
//! metrics and timed.
//!
//! Run with `cargo run --release --example model_bakeoff`.

use seagull::core::metrics::{evaluate_low_load, AccuracyConfig};
use seagull::forecast::additive::FitMethod;
use seagull::forecast::{
    AdditiveConfig, AdditiveForecaster, ArimaConfig, ArimaForecaster, FeedForwardForecaster,
    Forecaster, PersistentForecast, PersistentVariant, SsaForecaster,
};
use seagull::telemetry::fleet::{ClassMix, FleetGenerator, FleetSpec, RegionSpec};
use seagull::timeseries::Timestamp;
use std::time::Instant;

fn main() {
    // One unstable server with two weeks of history.
    let spec = FleetSpec {
        seed: 99,
        regions: vec![RegionSpec {
            name: "bakeoff".into(),
            servers: 1,
        }],
        start_day: 17_997,
        grid_min: 5,
        mix: ClassMix {
            short_lived: 0.0,
            stable: 0.0,
            daily: 0.0,
            weekly: 0.0,
            unstable: 1.0,
        },
        capacity_reaching: 0.0,
    };
    let start = spec.start_day;
    let server = FleetGenerator::new(spec).generate_weeks(2).remove(0);
    let backup_day = start + 8;
    let history = server
        .series
        .slice(
            Timestamp::from_days(backup_day - 7),
            Timestamp::from_days(backup_day),
        )
        .expect("a week of history");
    let truth = server.series.day(backup_day).expect("truth");
    let duration = server.meta.backup.duration_min;
    let cfg = AccuracyConfig::default();

    let pf_day = PersistentForecast::previous_day();
    let pf_week = PersistentForecast::new(PersistentVariant::PreviousWeekAverage);
    let pf_eq = PersistentForecast::new(PersistentVariant::PreviousEquivalentDay);
    let ssa = SsaForecaster::default();
    let ff = FeedForwardForecaster::default();
    let additive = AdditiveForecaster::new(AdditiveConfig {
        fit: FitMethod::Exact,
        ..AdditiveConfig::default()
    });
    let arima = ArimaForecaster::new(ArimaConfig {
        max_p: 1,
        max_d: 1,
        max_q: 1,
        max_sp: 1,
        max_sd: 1,
        max_sq: 0,
        period: 288,
        refine_iterations: 10,
        prescreen: false,
    });
    let models: Vec<(&str, &dyn Forecaster)> = vec![
        ("persistent (prev day)", &pf_day),
        ("persistent (week avg)", &pf_week),
        ("persistent (prev eq day)", &pf_eq),
        ("ssa (NimbusML substitute)", &ssa),
        ("feed-forward (GluonTS substitute)", &ff),
        ("additive (Prophet substitute)", &additive),
        ("auto-ARIMA (pmdarima substitute)", &arima),
    ];

    println!(
        "model bake-off: unstable server {}, backup day {backup_day}, \
         {duration}-minute backup\n",
        server.meta.id
    );
    println!(
        "{:<36} {:>9} {:>9} {:>8} {:>8} {:>10}",
        "model", "fit (ms)", "inf (ms)", "window", "accurate", "bucket %"
    );
    for (name, model) in models {
        let t = Instant::now();
        let fitted = match model.fit(&history) {
            Ok(f) => f,
            Err(e) => {
                println!("{name:<36} failed: {e}");
                continue;
            }
        };
        let fit_ms = t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        let predicted = match fitted.predict(truth.len()) {
            Ok(p) => p,
            Err(e) => {
                println!("{name:<36} inference failed: {e}");
                continue;
            }
        };
        let inf_ms = t.elapsed().as_secs_f64() * 1e3;
        match evaluate_low_load(&truth, &predicted, duration, &cfg) {
            Some(eval) => println!(
                "{name:<36} {fit_ms:>9.2} {inf_ms:>9.2} {:>8} {:>8} {:>10.1}",
                if eval.window_correct {
                    "correct"
                } else {
                    "WRONG"
                },
                if eval.load_accurate { "yes" } else { "no" },
                eval.window_bucket_ratio
            ),
            None => println!("{name:<36} not evaluable"),
        }
    }
    println!(
        "\nthe paper's takeaway: on unstable servers no model is reliably better \
         than persistent forecast — which costs nothing to train (Section 5.4)"
    );
}
