//! End-to-end backup scheduling: telemetry → load extraction → AML pipeline
//! → backup scheduler → runner service → impact analysis.
//!
//! This is the paper's production deployment in miniature (Sections 2, 2.3,
//! 6.2). Run with `cargo run --release --example backup_scheduling`.

use seagull::backup::{
    analyze_impact, BackupScheduler, FabricPropertyStore, RunnerService, SchedulerConfig,
};
use seagull::core::metrics::ErrorBound;
use seagull::core::pipeline::{AmlPipeline, PipelineConfig};
use seagull::forecast::PersistentForecast;
use seagull::telemetry::blobstore::MemoryBlobStore;
use seagull::telemetry::extract::LoadExtraction;
use seagull::telemetry::fleet::{FleetGenerator, FleetSpec};
use std::sync::Arc;

fn main() {
    // --- Telemetry: five weeks for one region -----------------------------
    let mut spec = FleetSpec::small_region(11);
    spec.regions[0].servers = 200;
    let region = spec.regions[0].name.clone();
    let start = spec.start_day;
    let fleet = FleetGenerator::new(spec).generate_weeks(5);
    println!("fleet: {} servers in {region}", fleet.len());

    // --- Load extraction: the recurring query into the blob store ----------
    let store = Arc::new(MemoryBlobStore::new());
    let weeks: Vec<i64> = (0..5).map(|w| start + 7 * w).collect();
    let keys = LoadExtraction::default()
        .run(
            &fleet,
            std::slice::from_ref(&region),
            &weeks,
            store.as_ref(),
        )
        .expect("extraction succeeds");
    println!("extracted {} weekly blobs", keys.len());

    // --- The weekly AML pipeline -------------------------------------------
    let pipeline = AmlPipeline::new(PipelineConfig::production(), store);
    let reports = pipeline.run_schedule(std::slice::from_ref(&region), &weeks);
    for r in &reports {
        println!(
            "pipeline week {}: {} servers, {} predictions, {} evaluations{}",
            r.week_start_day,
            r.servers,
            r.predictions_written,
            r.evaluations,
            r.accuracy
                .map(|a| format!(
                    " (LL correct {:.1}%, accurate {:.1}%)",
                    a.window_correct_pct, a.load_accurate_pct
                ))
                .unwrap_or_default()
        );
    }
    println!(
        "deployed model: {:?} v{}",
        pipeline.config.forecaster.name(),
        pipeline
            .registry
            .deployed(&region)
            .map(|v| v.version)
            .unwrap_or(0)
    );

    // --- The runner service schedules the next week's backups --------------
    let runner = RunnerService::new(
        BackupScheduler::new(SchedulerConfig::default()),
        4, // clusters
    );
    let fabric = FabricPropertyStore::new();
    let model = PersistentForecast::previous_day();
    let mut all_backups = Vec::new();
    for offset in 0..7 {
        let report = runner.run_day(&fleet, start + 28 + offset, &model, &fabric);
        println!(
            "runner day {}: {} due, availability {:.1}%",
            report.day,
            report.backups.len(),
            report.availability() * 100.0
        );
        all_backups.extend(report.backups);
    }

    // --- Impact (Figure 13(a)) ----------------------------------------------
    let impact = analyze_impact(&fleet, &all_backups, &ErrorBound::default(), 60.0);
    println!(
        "\nimpact: {} backups | moved {:.1}% | already-optimal {:.1}% | \
         incorrect {:.1}% | kept default {:.1}% | {:.1} hours improved",
        impact.overall.total,
        impact.overall.moved_pct(),
        impact.overall.already_optimal_pct(),
        impact.overall.incorrect_pct(),
        impact.overall.kept_default_pct(),
        impact.hours_improved,
    );
}
