//! Quickstart: generate a fleet, classify it, forecast a server's backup
//! day, and find its lowest-load window.
//!
//! Run with `cargo run --release --example quickstart`.

use seagull::core::classify::{classify_fleet_with, ClassifyConfig, ServerClass};
use seagull::core::metrics::{evaluate_low_load, lowest_load_window, AccuracyConfig};
use seagull::forecast::{Forecaster, PersistentForecast};
use seagull::telemetry::fleet::{FleetGenerator, FleetSpec};
use seagull::timeseries::Timestamp;

fn main() {
    // 1. A month of 5-minute telemetry for a small region. Everything is
    //    seeded: rerunning reproduces the same fleet bit-for-bit.
    let spec = FleetSpec::small_region(7);
    let start = spec.start_day;
    let fleet = FleetGenerator::new(spec).generate_weeks(4);
    println!("generated {} servers over 4 weeks", fleet.len());

    // 2. Classify the fleet per the paper's Definitions 3-6 (Figure 3).
    let report = classify_fleet_with(&fleet, start + 28, &ClassifyConfig::default());
    println!("\nclassification:");
    for class in [
        ServerClass::ShortLived,
        ServerClass::Stable,
        ServerClass::DailyPattern,
        ServerClass::WeeklyPattern,
        ServerClass::NoPattern,
    ] {
        println!("  {:<14} {:>6.2}%", class.label(), report.percentage(class));
    }

    // 3. Pick a long-lived server and predict its next day with the
    //    production model (persistent forecast, previous day).
    let server = fleet
        .iter()
        .find(|s| s.meta.deleted_day.is_none())
        .expect("a long-lived server exists");
    let backup_day = start + 21;
    let history = server
        .series
        .slice(
            Timestamp::from_days(backup_day - 7),
            Timestamp::from_days(backup_day),
        )
        .expect("one week of history");
    let model = PersistentForecast::previous_day();
    let predicted = model
        .fit_predict(&history, history.points_per_day())
        .expect("forecast succeeds");

    // 4. Find the predicted lowest-load window for this server's backup.
    let duration = server.meta.backup.duration_min;
    let window = lowest_load_window(&predicted, duration).expect("window fits in a day");
    println!(
        "\nserver {}: predicted lowest-load window on day {backup_day} \
         starts at {} ({} min, predicted mean load {:.1}%)",
        server.meta.id, window.start, duration, window.mean_load
    );

    // 5. Score the prediction against the true load (Definitions 2 and 8).
    let truth = server.series.day(backup_day).expect("truth available");
    let eval = evaluate_low_load(&truth, &predicted, duration, &AccuracyConfig::default())
        .expect("evaluable");
    println!(
        "window chosen correctly: {} | in-window load accurate: {} \
         (bucket ratio {:.1}%)",
        eval.window_correct, eval.load_accurate, eval.window_bucket_ratio
    );
}
