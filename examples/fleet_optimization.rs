//! The Section 6 optimization extensions working together: cross-day backup
//! moves (§6.1), customer-window advice (§6.2), and preemptive auto-scale
//! sizing (Appendix A / Fig. 13(b) headroom).
//!
//! Run with `cargo run --release --example fleet_optimization`.

use seagull::autoscale::{evaluate_policy, sql_fleet_spec, AutoscalePolicy, SizingMode, SkuLadder};
use seagull::backup::{
    Advice, BackupScheduler, CustomerWindow, SchedulerConfig, WeekdayConfig, WeekdayOptimizer,
    WindowAdvisor,
};
use seagull::forecast::PersistentForecast;
use seagull::telemetry::fleet::{ClassMix, FleetGenerator, FleetSpec, RegionSpec};

fn main() {
    // A pattern-heavy fleet: the population where optimization pays.
    let spec = FleetSpec {
        seed: 2024,
        regions: vec![RegionSpec {
            name: "opt".into(),
            servers: 120,
        }],
        start_day: 17_997,
        grid_min: 5,
        mix: ClassMix {
            short_lived: 0.0,
            stable: 0.4,
            daily: 0.3,
            weekly: 0.2,
            unstable: 0.1,
        },
        capacity_reaching: 0.03,
    };
    let start = spec.start_day;
    let fleet = FleetGenerator::new(spec).generate_weeks(6);
    let model = PersistentForecast::previous_day();
    let scheduler = BackupScheduler::new(SchedulerConfig {
        threads: 2,
        ..SchedulerConfig::default()
    });

    // --- §6.1: move backups to a better weekday -----------------------------
    let optimizer = WeekdayOptimizer::new(scheduler, WeekdayConfig::default());
    let plans = optimizer.plan_week(&fleet, start + 35, &model, 2);
    let moved: Vec<_> = plans.iter().filter(|p| p.moved()).collect();
    println!(
        "weekday optimizer: {} of {} backups moved to a quieter day",
        moved.len(),
        plans.len()
    );
    let improvement: f64 = moved
        .iter()
        .filter_map(|p| Some(p.due_window_load? - p.chosen_window_load?))
        .sum::<f64>()
        / moved.len().max(1) as f64;
    println!("  mean predicted window-load improvement: {improvement:.1} CPU points");

    // --- §6.2: advise customers who picked their own windows ----------------
    let advisor = WindowAdvisor::new(scheduler);
    let mut suggested = 0;
    let mut kept = 0;
    let mut skipped = 0;
    for server in &fleet {
        // Every customer picked 10:00 — right in most diurnal ramps.
        let advice = advisor.advise(
            server,
            CustomerWindow {
                server_id: server.meta.id.0,
                start_minute: 600,
            },
            start + 36,
            &model,
        );
        match advice.advice {
            Advice::Suggest {
                predicted_improvement,
                window,
                ..
            } => {
                suggested += 1;
                if suggested <= 3 {
                    println!(
                        "  suggest server {}: move 10:00 window to {} \
                         (predicted {predicted_improvement:.1} points lower)",
                        server.meta.id, window.start
                    );
                }
            }
            Advice::KeepCurrent { .. } => kept += 1,
            _ => skipped += 1,
        }
    }
    println!(
        "window advisor: {suggested} suggestions, {kept} already fine, \
         {skipped} not advisable"
    );

    // --- Appendix A: preemptive auto-scale ----------------------------------
    let sql_spec = sql_fleet_spec(9, 150);
    let sql_start = sql_spec.start_day;
    let sql_fleet = FleetGenerator::new(sql_spec).generate_weeks(2);
    let policy = AutoscalePolicy::default();
    let ladder = SkuLadder::default();
    println!("\npreemptive auto-scale (150 SQL databases, 24h ahead):");
    for (label, mode) in [
        ("static max SKU", SizingMode::StaticMax),
        ("reactive (yesterday)", SizingMode::Reactive),
        ("preemptive (forecast)", SizingMode::Preemptive),
    ] {
        let s = evaluate_policy(
            &sql_fleet,
            sql_start + 8,
            mode,
            &policy,
            &ladder,
            &model,
            7,
            2,
        );
        println!(
            "  {label:<22} mean capacity {:>5.1} | throttled DBs {:>5.1}% | \
             wasted {:>7.1} %·h/day",
            s.mean_capacity, s.violation_rate_pct, s.mean_waste_pct_hours
        );
    }
    println!(
        "\nFig. 13(b) said 96.3% of servers never reach capacity — the preemptive \
         sizer turns that headroom into reclaimed capacity at bounded risk"
    );
}
