//! Monitoring and self-healing: the dashboard, incident management, and the
//! last-known-good model fallback — including injected failures.
//!
//! Demonstrates Section 1's "SEAGULL continually re-evaluates accuracy of
//! predictions, fallback to previously known good models and triggers alerts
//! as appropriate". Run with `cargo run --release --example fleet_monitoring`.

use bytes::Bytes;
use seagull::core::dashboard::Dashboard;
use seagull::core::pipeline::{AmlPipeline, PipelineConfig};
use seagull::core::registry::ModelAccuracy;
use seagull::core::Severity;
use seagull::telemetry::blobstore::{BlobKey, BlobStore, MemoryBlobStore};
use seagull::telemetry::extract::LoadExtraction;
use seagull::telemetry::fleet::{FleetGenerator, FleetSpec};
use std::sync::Arc;

fn main() {
    let mut spec = FleetSpec::small_region(23);
    spec.regions[0].servers = 60;
    let region = spec.regions[0].name.clone();
    let start = spec.start_day;
    let fleet = FleetGenerator::new(spec).generate_weeks(3);

    let store = Arc::new(MemoryBlobStore::new());
    let weeks: Vec<i64> = (0..3).map(|w| start + 7 * w).collect();
    LoadExtraction::default()
        .run(
            &fleet,
            std::slice::from_ref(&region),
            &weeks,
            store.as_ref(),
        )
        .expect("extraction succeeds");

    // Corrupt week 3's blob: schema drift that ingestion must catch.
    store
        .put(
            &BlobKey::extracted(&region, weeks[2]),
            Bytes::from_static(b"totally,not,the,expected,schema\n1,2,3,4,5\n"),
        )
        .expect("store accepts the bad blob");

    let pipeline = AmlPipeline::new(PipelineConfig::production(), store);
    let dashboard = Dashboard::new();

    for &week in &weeks {
        let report = pipeline.run_region_week(&region, week);
        println!(
            "week {week}: blocked={} servers={} anomalies={} predictions={}",
            report.blocked, report.servers, report.anomalies, report.predictions_written
        );
        dashboard.record(report);
    }
    // A pipeline run over a region with no data at all.
    dashboard.record(pipeline.run_region_week("ghost-region", weeks[0]));

    // Inject an accuracy regression to exercise the fallback rule: pretend a
    // freshly deployed model scored far below the last known good one.
    let v_bad = pipeline
        .registry
        .deploy(&region, "experimental-model", weeks[2]);
    pipeline.registry.record_accuracy(
        &region,
        v_bad,
        ModelAccuracy {
            window_correct_pct: 41.0,
            load_accurate_pct: 38.0,
            predictable_pct: 12.0,
        },
    );
    if let Some(v) = pipeline
        .registry
        .maybe_fallback(&region, 10.0, &pipeline.incidents)
    {
        println!("\nfallback fired: rolled back to version {v}");
    }

    // The operator view.
    println!("\n{}", dashboard.render(&pipeline.incidents));
    println!("open critical incidents:");
    for i in pipeline.incidents.open() {
        if i.severity == Severity::Critical {
            println!("  #{} [{}] {}: {}", i.id, i.region, i.source, i.message);
        }
    }
}
